//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) subset of the `rand 0.8` API the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a fast,
//! high-quality, fully deterministic PRNG. Streams do **not** match the
//! upstream `rand` crate's ChaCha-based `StdRng` bit for bit; within this
//! repository the streams themselves are the reproducibility contract
//! (every seed-dependent artefact is regenerated from source).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (from the high half of
    /// [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator, mirroring
/// `rand::distributions::Standard` coverage for the primitives we need.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges (and other shapes) that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integers with unbiased bounded sampling.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi]` (inclusive).
    fn uniform_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn uniform_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty sampling range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full 64-bit domain: every raw draw is in range.
                    return ((lo as i128) + rng.next_u64() as i128) as $t;
                }
                // Rejection sampling on the top 64 bits keeps the draw
                // unbiased for any span that fits in u64.
                let span = span as u64;
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return ((lo as i128) + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: UniformInt + One> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty sampling range");
        T::uniform_inclusive(self.start, T::dec(self.end), rng)
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::uniform_inclusive(*self.start(), *self.end(), rng)
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty sampling range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Helper for exclusive integer ranges: `x - 1`.
pub trait One {
    /// Returns `v - 1`.
    fn dec(v: Self) -> Self;
}

macro_rules! impl_one {
    ($($t:ty),*) => {$(
        impl One for $t {
            fn dec(v: Self) -> Self { v - 1 }
        }
    )*};
}
impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and sampling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(1..=11u32);
            assert!((1..=11).contains(&v));
            let u: usize = rng.gen_range(0..5usize);
            assert!(u < 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4500..5500).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
        assert!(v.choose(&mut rng).is_some());
    }
}
