//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its model types so
//! that a future JSON/TOML surface can light up without touching every
//! struct, but no code path in the repository performs serialisation yet
//! and the build environment cannot reach crates.io. This stub keeps the
//! derive attribute (and its `#[serde(...)]` helper attributes) compiling
//! as inert markers: the derive macros expand to nothing.
//!
//! When real serialisation lands, swap this vendored crate for the
//! upstream one in `[workspace.dependencies]` — call sites need no change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker trait mirroring `serde::Serialize` (no methods in the stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stub).
pub trait Deserialize<'de>: Sized {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
