//! Offline stand-in for `criterion`.
//!
//! Implements the harness surface this workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Criterion::bench_function`], [`BenchmarkId`], [`Bencher::iter`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros — over a plain
//! wall-clock measurement loop. There is no statistical analysis, outlier
//! rejection or HTML report; each benchmark prints its mean and best
//! iteration time to stdout.
//!
//! Measurement: each benchmark runs a short warm-up, then `sample_size`
//! samples (default 100). A sample times a batch of iterations sized so
//! the batch takes at least ~1ms, to keep timer overhead out of the
//! per-iteration figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Identifies one benchmark within a group: a function name plus an
/// optional parameter rendered as `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    #[must_use]
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter, for groups whose name already says what runs.
    #[must_use]
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    /// Filled in by [`Bencher::iter`]; read by the caller for reporting.
    result: Option<Measurement>,
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    mean: Duration,
    best: Duration,
    iterations: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration timing.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch sizing: grow the batch until it runs ≥ ~1ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch = batch.saturating_mul(2);
        }

        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        let mut iterations = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            total += elapsed;
            best = best.min(elapsed / u32::try_from(batch.min(u64::from(u32::MAX))).unwrap_or(1));
            iterations += batch;
        }
        self.result = Some(Measurement {
            mean: total / u32::try_from(iterations.min(u64::from(u32::MAX))).unwrap_or(1),
            best,
            iterations,
        });
    }
}

fn run_one(id: &str, body: impl FnOnce(&mut Bencher), sample_size: usize) {
    let mut bencher = Bencher {
        sample_size,
        result: None,
    };
    body(&mut bencher);
    match bencher.result {
        Some(m) => println!(
            "bench {id:<48} mean {:>12?}  best {:>12?}  ({} iters)",
            m.mean, m.best, m.iterations
        ),
        None => println!("bench {id:<48} (no measurement: Bencher::iter never called)"),
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        routine: R,
    ) -> &mut Self
    where
        R: FnOnce(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            |b| routine(b, input),
            self.sample_size,
        );
        self
    }

    /// Benchmarks `routine` with no external input.
    pub fn bench_function<R: FnOnce(&mut Bencher)>(&mut self, id: &str, routine: R) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), routine, self.sample_size);
        self
    }

    /// Ends the group (prints nothing extra in the stub).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    fn new() -> Self {
        Self { sample_size: 100 }
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<R: FnOnce(&mut Bencher)>(&mut self, id: &str, routine: R) -> &mut Self {
        run_one(id, routine, self.sample_size);
        self
    }

    /// Entry point used by [`criterion_main!`]; not public API upstream,
    /// but harmless to expose from the stub.
    #[doc(hidden)]
    #[must_use]
    pub fn default_for_main() -> Self {
        Self::new()
    }
}

/// Mirrors `criterion::black_box` (re-export of the std hint).
pub use std::hint::black_box;

/// Declares a group of benchmark functions, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default_for_main();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, as upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("add", 3), &3u64, |b, &n| {
            b.iter(|| n + 1);
        });
        group.finish();
        c.bench_function("stub/free", |b| b.iter(|| 2 + 2));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_measures() {
        benches();
    }

    #[test]
    fn ids_render_like_upstream() {
        assert_eq!(BenchmarkId::new("sor", 64).to_string(), "sor/64");
        assert_eq!(BenchmarkId::from_parameter(112).to_string(), "112");
    }
}
