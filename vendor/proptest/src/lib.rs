//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`strategy::Strategy`] trait over numeric ranges, tuples,
//! collections and regex-like string patterns, plus the [`proptest!`],
//! [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`] macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   debug representation instead of a minimised counterexample.
//! * **Deterministic seeding.** Each test's RNG is seeded from a hash of
//!   the test function's name, so failures reproduce across runs without a
//!   `proptest-regressions` file (existing regression files are ignored).
//! * **`PROPTEST_CASES`.** Like upstream, a positive integer in the
//!   `PROPTEST_CASES` environment variable overrides every test's case
//!   count (including explicit `with_cases` configs) — CI release runs
//!   set it high while the debug tier keeps the fast defaults.
//! * **Regex strategies** support the subset `[...]` classes (with `a-z`
//!   ranges), literals, and `{m,n}` / `{n}` / `?` / `*` / `+` quantifiers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Test-case plumbing: configuration, RNG and case-level errors.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Run configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` successful cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }

        /// The case count after applying the `PROPTEST_CASES` environment
        /// override. Like upstream proptest, a positive integer in that
        /// variable wins over both [`Config::with_cases`] and the default
        /// — CI can crank release-mode runs up without slowing the debug
        /// tier. Unset, empty, zero, or unparsable values are ignored.
        #[must_use]
        pub fn resolved_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.trim().parse::<u32>().ok())
                .filter(|&n| n > 0)
                .unwrap_or(self.cases)
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
        /// A `prop_assert!` failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure error.
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }

        /// Builds a rejection error.
        #[must_use]
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }
    }

    /// The deterministic per-test RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// Seeds from a stable FNV-1a hash of the test name, so every run
        /// of a given test sees the same case sequence.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self(StdRng::seed_from_u64(h))
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking: a
    /// strategy is just a deterministic sampler over a [`TestRng`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates with `self`, then with the strategy `f` returns.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Always yields a clone of the wrapped value (`proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// String strategy from a regex-like pattern (see the crate docs for
    /// the supported subset).
    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            crate::pattern::generate(self, rng)
        }
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait behind [`crate::prelude::any`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for `Self`.
        type Strategy: Strategy<Value = Self>;

        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-domain strategy for primitives.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

    impl<T> AnyPrimitive<T> {
        /// Creates the strategy.
        #[must_use]
        pub fn new() -> Self {
            Self(core::marker::PhantomData)
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation)]
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen::<u64>(rng) as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy { AnyPrimitive::new() }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyPrimitive<bool> {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rand::Rng::gen::<bool>(rng)
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrimitive<bool>;

        fn arbitrary() -> Self::Strategy {
            AnyPrimitive::new()
        }
    }

    impl Strategy for AnyPrimitive<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            rand::Rng::gen::<f64>(rng)
        }
    }

    impl Arbitrary for f64 {
        type Strategy = AnyPrimitive<f64>;

        fn arbitrary() -> Self::Strategy {
            AnyPrimitive::new()
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Sizes a generated collection: a fixed count or a range of counts.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

pub(crate) mod pattern {
    //! Tiny regex-subset generator backing string strategies.

    use crate::test_runner::TestRng;
    use rand::Rng as _;

    enum Piece {
        Literal(char),
        Class(Vec<char>),
    }

    struct Quantified {
        piece: Piece,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Quantified> {
        let mut chars = pattern.chars().peekable();
        let mut out = Vec::new();
        while let Some(c) = chars.next() {
            let piece = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let Some(c) = chars.next() else {
                            panic!("unterminated character class in pattern {pattern:?}");
                        };
                        match c {
                            ']' => break,
                            '-' => {
                                // A range if between two chars, else literal.
                                match (prev, chars.peek()) {
                                    (Some(lo), Some(&hi)) if hi != ']' => {
                                        chars.next();
                                        assert!(lo <= hi, "bad class range in {pattern:?}");
                                        for v in (lo as u32 + 1)..=(hi as u32) {
                                            set.push(char::from_u32(v).expect("valid scalar"));
                                        }
                                        prev = None;
                                    }
                                    _ => {
                                        set.push('-');
                                        prev = Some('-');
                                    }
                                }
                            }
                            c => {
                                set.push(c);
                                prev = Some(c);
                            }
                        }
                    }
                    assert!(!set.is_empty(), "empty character class in {pattern:?}");
                    Piece::Class(set)
                }
                '\\' => Piece::Literal(chars.next().expect("dangling escape")),
                c => Piece::Literal(c),
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut body = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        body.push(c);
                    }
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad {m,n} bound"),
                            hi.trim().parse().expect("bad {m,n} bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("bad {n} bound");
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            out.push(Quantified { piece, min, max });
        }
        out
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for q in parse(pattern) {
            let count = rng.gen_range(q.min..=q.max);
            for _ in 0..count {
                match &q.piece {
                    Piece::Literal(c) => out.push(*c),
                    Piece::Class(set) => out.push(set[rng.gen_range(0..set.len())]),
                }
            }
        }
        out
    }
}

pub mod prop {
    //! The `prop::` namespace mirrored from upstream.

    pub use crate::collection;
}

pub mod prelude {
    //! Everything a property test usually imports.

    pub use crate::arbitrary::Arbitrary;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The canonical strategy for `T` (`any::<u64>()` and friends).
    #[must_use]
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Declares deterministic property tests. See the crate docs for the
/// differences from upstream `proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let cases = config.resolved_cases();
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = cases.saturating_mul(20).max(1000);
                while passed < cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest: too many rejected cases ({} of {} attempts)",
                        attempts - passed,
                        attempts,
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                        $(&$arg),+
                    );
                    let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match result {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case #{} failed: {}\ninputs:{}",
                                passed + 1,
                                msg,
                                inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        // `{}` keeps stringified conditions containing braces out of the
        // format-string position.
        $crate::prop_assert!($cond, "{}", concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that fails the current proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b,
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// `assert_ne!` that fails the current proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a,
        );
    }};
}

/// Rejects the current case (retried without counting towards the total).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1usize..=8, y in 0.0f64..1.0, z in any::<u64>()) {
            prop_assert!((1..=8).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            let _ = z;
        }

        #[test]
        fn vec_strategy_honours_size(v in prop::collection::vec(0u8..=9, 2..=5)) {
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b <= 9));
        }

        #[test]
        fn tuple_and_map_compose(p in (1u32..=4, 1u32..=4).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..=16).contains(&p));
        }

        #[test]
        fn string_pattern_generates_matching_text(s in "[a-z][a-z0-9 _-]{0,20}") {
            prop_assert!(!s.is_empty() && s.len() <= 21);
            let mut chars = s.chars();
            let first = chars.next().unwrap();
            prop_assert!(first.is_ascii_lowercase());
            prop_assert!(chars.all(|c| {
                c.is_ascii_lowercase() || c.is_ascii_digit() || c == ' ' || c == '_' || c == '-'
            }));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn proptest_cases_env_var_overrides_config() {
        let config = crate::test_runner::Config::with_cases(7);
        let prior = std::env::var("PROPTEST_CASES").ok();
        std::env::set_var("PROPTEST_CASES", "3");
        assert_eq!(config.resolved_cases(), 3);
        std::env::set_var("PROPTEST_CASES", "0");
        assert_eq!(config.resolved_cases(), 7, "zero is ignored");
        std::env::set_var("PROPTEST_CASES", "many");
        assert_eq!(config.resolved_cases(), 7, "junk is ignored");
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(config.resolved_cases(), 7, "unset falls back to config");
        match prior {
            Some(v) => std::env::set_var("PROPTEST_CASES", v),
            None => std::env::remove_var("PROPTEST_CASES"),
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        let s = 0u64..=u64::MAX;
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
