//! No-op `Serialize`/`Deserialize` derive macros for the vendored serde
//! stub: they accept the `#[serde(...)]` helper attributes and expand to
//! nothing, keeping the workspace's derive annotations compiling without
//! crates.io access.

use proc_macro::TokenStream;

/// Expands to nothing; registered so `#[serde(...)]` helpers stay inert.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; registered so `#[serde(...)]` helpers stay inert.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
