//! Offline stand-in for a readiness-polling crate (`mio`-style, but tiny).
//!
//! The build environment has no access to crates.io and the workspace
//! vendors every external dependency as a std-only stand-in. This crate
//! provides the one primitive an event-driven server needs that `std`
//! does not expose: *readiness polling* over a set of file descriptors.
//!
//! On Linux it invokes the `poll(2)` / `ppoll(2)` system call directly
//! through an inline-assembly shim — no `libc` crate, no FFI headers.
//! The [`PollFd`] struct is `#[repr(C)]`-compatible with the kernel's
//! `struct pollfd` (`int fd; short events; short revents;`), so the
//! syscall writes readiness bits straight into the caller's slice.
//!
//! On any other platform [`poll`] degrades to a *conservative readiness*
//! fallback: it sleeps briefly and then reports every descriptor as
//! ready for whatever was requested. That is correct (if inefficient)
//! for callers that only ever issue **nonblocking** I/O afterwards —
//! a spurious wakeup costs one `EWOULDBLOCK` syscall, never a stall.
//! The event loop in `copack-serve` is written against exactly that
//! contract.
//!
//! Unsafe code is confined to the two `cfg`-gated syscall shims below;
//! everything downstream of this crate stays `#![forbid(unsafe_code)]`.

#![warn(missing_docs)]

use std::io;
use std::time::Duration;

/// Readiness: data is available to read (or a peer hung up — accept and
/// read paths must treat `POLLHUP`/`POLLERR` as readable so they observe
/// the EOF/error through the normal nonblocking read).
pub const POLLIN: i16 = 0x001;
/// Readiness: the descriptor accepts writes without blocking.
pub const POLLOUT: i16 = 0x004;
/// Condition: an error occurred on the descriptor (always reported).
pub const POLLERR: i16 = 0x008;
/// Condition: the peer closed its end (always reported).
pub const POLLHUP: i16 = 0x010;
/// Condition: the descriptor is not open (always reported).
pub const POLLNVAL: i16 = 0x020;

/// One entry in a [`poll`] set — layout-identical to the kernel's
/// `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PollFd {
    /// The file descriptor to watch (from `AsRawFd::as_raw_fd`).
    pub fd: i32,
    /// Requested readiness bits ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Readiness bits reported by the kernel; cleared on entry.
    pub revents: i16,
}

impl PollFd {
    /// Builds an entry watching `fd` for `events`.
    pub fn new(fd: i32, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// True when the descriptor has data, an EOF, or an error pending —
    /// i.e. a nonblocking read will make progress (possibly returning 0
    /// or an error, both of which the caller must handle anyway).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0
    }

    /// True when a nonblocking write will make progress (or surface a
    /// pending error).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLHUP | POLLERR | POLLNVAL) != 0
    }
}

/// Blocks until at least one descriptor in `fds` is ready, or `timeout`
/// elapses. Returns the number of entries with nonzero `revents`.
///
/// An `EINTR` from the kernel is reported as `Ok(0)` — callers treat it
/// exactly like a timeout and re-enter their event loop, which is the
/// only sane response to a signal here.
pub fn poll(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    for fd in fds.iter_mut() {
        fd.revents = 0;
    }
    let millis = clamp_millis(timeout);
    poll_impl(fds, millis)
}

/// Converts a duration to whole milliseconds for the syscall, clamping
/// into `i32` range and rounding sub-millisecond waits up to 1 ms so a
/// nonzero timeout never busy-spins.
fn clamp_millis(timeout: Duration) -> i32 {
    let ms = timeout.as_millis();
    if ms == 0 && !timeout.is_zero() {
        return 1;
    }
    if ms > i32::MAX as u128 {
        i32::MAX
    } else {
        ms as i32
    }
}

const EINTR: i32 = 4;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn poll_impl(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    // Linux x86_64 syscall 7 = poll(struct pollfd *fds, nfds_t nfds,
    // int timeout). The kernel reads `fd`/`events` and writes `revents`
    // for each of the `nfds` entries; `PollFd` is `#[repr(C)]` with the
    // same 8-byte layout, and the slice guarantees the pointer is valid
    // for `len` entries, so the only clobbers are rcx/r11 (consumed by
    // the `syscall` instruction itself).
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") 7isize => ret,
            in("rdi") fds.as_mut_ptr(),
            in("rsi") fds.len(),
            in("rdx") timeout_ms as isize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    syscall_result(ret)
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
fn poll_impl(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    // aarch64 Linux has no plain poll; syscall 73 = ppoll(fds, nfds,
    // const struct timespec *tmo, const sigset_t *mask, size_t masksz).
    // A null sigmask keeps the signal disposition unchanged, matching
    // poll(2) semantics.
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    let tmo = Timespec {
        tv_sec: i64::from(timeout_ms / 1000),
        tv_nsec: i64::from(timeout_ms % 1000) * 1_000_000,
    };
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "svc 0",
            inlateout("x0") fds.as_mut_ptr() as isize => ret,
            in("x1") fds.len(),
            in("x2") &tmo as *const Timespec,
            in("x3") 0usize,
            in("x4") 0usize,
            in("x8") 73isize,
            options(nostack),
        );
    }
    syscall_result(ret)
}

#[cfg(any(
    all(target_os = "linux", target_arch = "x86_64"),
    all(target_os = "linux", target_arch = "aarch64")
))]
fn syscall_result(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        let errno = -(ret as i32);
        if errno == EINTR {
            return Ok(0);
        }
        return Err(io::Error::from_raw_os_error(errno));
    }
    Ok(ret as usize)
}

#[cfg(not(any(
    all(target_os = "linux", target_arch = "x86_64"),
    all(target_os = "linux", target_arch = "aarch64")
)))]
fn poll_impl(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    // Conservative-readiness fallback: nap briefly, then claim every
    // descriptor is ready for whatever was requested. Callers perform
    // only nonblocking I/O, so a wrong claim costs one EWOULDBLOCK.
    let nap = Duration::from_millis(u64::from(timeout_ms.clamp(0, 2) as u32));
    if !nap.is_zero() {
        std::thread::sleep(nap);
    }
    for fd in fds.iter_mut() {
        fd.revents = fd.events;
    }
    Ok(fds.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    fn local_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    #[test]
    fn a_pending_connection_makes_the_listener_readable() {
        use std::os::fd::AsRawFd;
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let _client = TcpStream::connect(addr).expect("connect");
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN)];
        let ready = poll(&mut fds, Duration::from_secs(5)).expect("poll");
        assert!(ready >= 1);
        assert!(fds[0].readable());
    }

    #[test]
    fn a_written_byte_makes_the_peer_readable_and_sockets_stay_writable() {
        use std::os::fd::AsRawFd;
        let (mut a, b) = local_pair();
        a.write_all(&[1]).expect("write");
        a.flush().expect("flush");
        let mut fds = [
            PollFd::new(b.as_raw_fd(), POLLIN),
            PollFd::new(a.as_raw_fd(), POLLOUT),
        ];
        let ready = poll(&mut fds, Duration::from_secs(5)).expect("poll");
        assert!(ready >= 1);
        assert!(fds[0].readable(), "peer should see the pending byte");
        assert!(fds[1].writable(), "an idle socket accepts writes");
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[test]
    fn an_idle_listener_times_out_with_zero_events() {
        use std::os::fd::AsRawFd;
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let started = std::time::Instant::now();
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN)];
        let ready = poll(&mut fds, Duration::from_millis(50)).expect("poll");
        assert_eq!(ready, 0);
        assert_eq!(fds[0].revents, 0);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "timeout must be honoured, not blocked forever"
        );
    }

    #[test]
    fn sub_millisecond_timeouts_round_up_rather_than_spin() {
        assert_eq!(clamp_millis(Duration::from_nanos(10)), 1);
        assert_eq!(clamp_millis(Duration::ZERO), 0);
        assert_eq!(clamp_millis(Duration::from_millis(25)), 25);
        assert_eq!(clamp_millis(Duration::from_secs(u64::MAX)), i32::MAX);
    }
}
