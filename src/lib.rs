//! `copack` — package routability- and IR-drop-aware finger/pad planning
//! for single-chip and stacking IC designs.
//!
//! This is the facade crate of the workspace: it re-exports every
//! subsystem so applications can depend on one crate. It reproduces
//! *"Package routability- and IR-drop-aware finger/pad assignment in
//! chip-package co-design"* (Lu, Chen, Liu, Shih; DATE 2009, extended in
//! INTEGRATION 2012) end to end:
//!
//! * [`geom`] — the two-layer BGA package model (quadrants, fingers, bump
//!   balls, assignments, stacking tiers);
//! * [`route`] — the monotonic package router: legality, wire density,
//!   wirelength, paths;
//! * [`power`] — the compact finite-difference IR-drop model and solvers;
//! * [`core`] — the paper's algorithms: IFA, DFA, the random baseline,
//!   and the simulated-annealing finger/pad exchange;
//! * [`gen`] — synthetic test circuits (including the paper's Table 1
//!   five);
//! * [`tune`] — the deterministic auto-tuner: seeded trials over SA
//!   schedules, Eq. 3 weights, and portfolio knobs, distilled into a
//!   reusable `.tune` profile keyed by instance class;
//! * [`viz`] — SVG/ASCII rendering of routings and IR maps.
//!
//! # Quickstart
//!
//! ```
//! use copack::core::{Codesign, ExchangeConfig, Schedule};
//! use copack::gen::circuit;
//! use copack::power::GridSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let quadrant = circuit(1).build_quadrant()?;
//! let flow = Codesign {
//!     grid: GridSpec::default_chip(16),
//!     exchange: ExchangeConfig {
//!         schedule: Schedule { moves_per_temp_per_finger: 1, ..Schedule::default() },
//!         ..ExchangeConfig::default()
//!     },
//!     ..Codesign::default()
//! };
//! let report = flow.run(&quadrant)?;
//! assert!(report.routing_after.max_density > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

pub use copack_core as core;
pub use copack_gen as gen;
pub use copack_geom as geom;
pub use copack_io as io;
pub use copack_obs as obs;
pub use copack_power as power;
pub use copack_route as route;
pub use copack_tune as tune;
pub use copack_verify as verify;
pub use copack_viz as viz;
