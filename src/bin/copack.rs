//! The `copack` command-line tool; see `copack --help`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match copack::cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
