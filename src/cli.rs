//! The `copack` command-line interface.
//!
//! The binary in `src/bin/copack.rs` is a thin wrapper around [`run`]; the
//! logic lives here so integration tests can drive it without spawning
//! processes.
//!
//! ```text
//! copack gen <1..=5>                       write a Table 1 circuit file
//! copack plan <circuit> [options]          assign (and optionally exchange)
//! copack replan <circuit> --prev PLAN --delta EDITS
//!                                          incrementally re-plan after an ECO
//! copack route <circuit> <assignment>      analyse a routing
//! copack ir <circuit> <assignment>         solve the IR-drop map
//! copack check <circuit>                   run the seven invariant oracles
//! copack fuzz [--budget-secs N]            fuzz the oracles over generated
//!                                          instances, shrinking failures
//! copack tune [circuits...]                auto-tune schedules/weights into
//!                                          a reusable .tune profile
//! copack serve [--addr HOST:PORT]          run the resident planning daemon
//! copack submit <circuit>                  plan one circuit via the daemon
//! copack batch <dir>                       plan every circuit in a directory
//! copack shutdown                          drain and stop the daemon
//! ```

use std::fmt::Write as _;
use std::fs;
use std::fs::File;
use std::io::BufWriter;
use std::path::Path;

use copack_core::{
    apply_delta, assign, exchange, exchange_portfolio_traced, exchange_traced, exchange_warm,
    plan_package, plan_package_traced, AssignMethod, CancelToken, Codesign, CostWeights,
    ExchangeConfig, PortfolioConfig, PortfolioMode,
};
use copack_gen::circuit;
use copack_geom::{Package, StackConfig};
use copack_io::{
    classify_quadrant, parse_assignment, parse_delta, parse_quadrant, parse_tune, write_assignment,
    write_quadrant, write_tune, TuneProfile,
};
use copack_obs::{Event, JsonlSink, NoopRecorder, Recorder, TraceBuffer, TraceSummary};
use copack_power::GridSpec;
use copack_route::{analyze, balanced_density_map, DensityModel};
use copack_serve::{
    pool_metrics_text, Client, JobClass, JobSpec, PlanResponse, ServeConfig, Server,
};
use copack_tune::{tune, TrialSpace, TuneOptions};
use copack_viz::{density_histogram, routing_ascii, routing_svg, trace_sparklines};

/// Usage text printed for `--help` or argument errors.
pub const USAGE: &str = "\
copack - package routability- and IR-drop-aware finger/pad planning

USAGE:
  copack gen <1..=5> [--out FILE]
      Write circuit N of the paper's Table 1 in the circuit format.

  copack gen --family large [--size 1k|4k|10k] [--seed N] [--out FILE]
      Write an industrial-scale instance (1k/4k/10k nets per quadrant,
      hundreds of ball rows, stacked tiers up to psi = 8). Generation is
      byte-identical for a fixed --size/--seed on every platform.

  copack plan <circuit-file> [--method dfa|ifa|random] [--seed N]
              [--slack N] [--exchange] [--psi N] [--starts K]
              [--prune-margin F] [--portfolio-mode race|coop|temper]
              [--kick-size N] [--ladder-ratio F] [--margin-weight F]
              [--profile FILE] [--out FILE] [--svg FILE] [--package]
              [--threads N] [--trace FILE] [--metrics]
      Run the congestion-driven assignment (default: dfa) and optionally
      the IR-drop-aware exchange step; print the routing report.
      With --starts K > 1 the exchange runs as a multi-start portfolio:
      K independently-seeded anneals race, starts trailing the global
      best by --prune-margin (relative, default 0.25) are pruned and
      re-seeded at sync points, and the best final cost wins (ties to
      the lowest start index). The winner is byte-identical for every
      --threads value. --portfolio-mode picks the cooperation policy:
      `race` (the default) keeps the starts independent; `coop` respawns
      pruned starts from the current leader's plan perturbed by a seeded
      --kick-size swap kick and adapts the prune margin to the observed
      cross-start spread; `temper` runs a parallel-tempering ladder
      (rung temperatures scale by --ladder-ratio, default 1.5) with
      deterministic Metropolis swaps at epoch boundaries and no pruning.
      Every mode honours the same determinism contract: byte-identical
      output for every --threads value and across reruns. With --package, plan all four quadrants of a
      uniform package and report the package-level IR-drop and cut-line
      congestion; --threads caps the worker threads (0 = available
      parallelism, 1 = serial; the result is identical for every thread
      count). --margin-weight adds the weighted net-separation margin
      term to the exchange cost (0, the default, leaves it off).
      --profile loads a `copack tune` profile and plans the exchange
      under the tuned configuration for the circuit's instance class
      (unknown classes fall back to the defaults); explicitly-given
      flags (--starts, --prune-margin, --margin-weight, --xseed) still
      win over the profile.

  copack replan <circuit-file> --prev ASSIGNMENT --delta EDITS
                [--psi N] [--xseed N] [--margin-weight F]
                [--profile FILE] [--out FILE] [--trace FILE] [--metrics]
      Incrementally re-plan after an ECO. <circuit-file> is the base
      (pre-edit) circuit, --prev its planned assignment (`copack plan
      --out` format), --delta the edit list (`.edits` format). When the
      delta does not touch this quadrant — or lists edits that cancel
      out to a no-op — the previous plan is reused verbatim: the --out
      file is byte-identical to --prev and no annealing work runs (the
      trace proves it: `replan_start` with dirty 0 plus one
      `quadrant_reused`). A dirty quadrant applies its edits, repairs
      the previous assignment onto the edited netlist, and re-anneals
      from that warm start; the result lands in the same feasibility
      class as a from-scratch plan, with its cost inside the
      `replan_vs_scratch` oracle's band. --profile applies a tuned
      configuration, as in plan.

  copack route <circuit-file> <assignment-file> [--svg FILE]
      Check legality and print density/wirelength analysis.

  copack ir <circuit-file> <assignment-file> [--grid N] [--trace FILE]
            [--metrics]
      Solve the finite-difference IR-drop model for the power pads.

  copack check <circuit-file> [--psi N] [--trace FILE] [--metrics]
      Run the seven invariant oracles (monotonicity, density,
      ir-cross-check, determinism, cost-ledger, replan_vs_scratch,
      tune-determinism) on the circuit and print the verdict table;
      exits non-zero if any oracle fails.

  copack tune [circuit-files...] [--quick] [--rounds N] [--seed N]
              [--threads N] [--psi N] [--out FILE]
      Auto-tune the SA schedule, Eq. 3 weights, and portfolio knobs
      over a circuit family (default: the built-in 8-member tuning
      family; pass circuit files to tune your own) and distil one
      winning configuration per instance class into a reusable .tune
      profile (written with --out; loaded by plan/replan/serve via
      --profile). Trials are seeded and journaled: early
      successive-halving rounds run bit-exact schedule prefixes, cheap
      trace signals rank the candidates (the per-class Spearman
      correlation in the report says how predictive they were), and
      survivors run full-length. The default configuration always
      competes in the final round and a candidate only wins by beating
      it on every family member, so a profile can never regress a
      family instance. The emitted profile is byte-identical for every
      --threads value and across reruns. --quick sweeps a 4-point
      space (CI smoke); the default space has 16 points.

  copack fuzz [--budget-secs N] [--cases N] [--seed S] [--corpus DIR]
              [--trace FILE] [--metrics]
      Drive the oracles over a seeded stream of generated instances
      (default: seed 1, 10 s budget). The first violation is shrunk to a
      minimal reproducer — written to DIR with --corpus — and the run
      exits non-zero.

  copack serve [--addr HOST:PORT] [--workers N] [--queue N]
               [--timeout-secs N] [--cache-dir DIR] [--cache-mem-limit B]
               [--profile FILE] [--port-file FILE] [--trace FILE]
               [--metrics]
      Run the resident planning daemon: jobs arrive as JSON lines over a
      local TCP socket, a single event loop owns every connection (idle
      clients cost no threads), jobs run on a bounded worker pool, and
      identical submissions are answered from a content-addressed result
      cache. Prints `listening on ADDR` once bound (use --addr with port
      0 and --port-file to discover an ephemeral port), then blocks
      until a client sends shutdown. --queue bounds each class's job
      queue (a full queue rejects with a typed backpressure error);
      --timeout-secs is the default per-job wall-clock budget (0 =
      unlimited). --cache-dir persists results (checksummed, atomically
      written; corrupt entries are quarantined, and a restarted daemon
      answers from the warm store); --cache-mem-limit bounds the
      in-memory tier in bytes (LRU eviction; 0 = unbounded; default
      64 MiB). --profile loads a `copack tune` profile: jobs submitted
      with --use-profile plan under its tuned per-class configuration
      (the profile fingerprint and class key join the cache key, so
      tuned and untuned results never collide); without a loaded
      profile such jobs are refused with a typed bad-request error.
      The daemon also keeps the frozen move journals of recent
      portfolio winners, so a replan against one warm-starts from the
      journal instead of re-parsing the previous plan (same bytes,
      less work; the trace records `quadrant_warmed` with its source).

  copack submit <circuit-file> [--addr HOST:PORT] [--method dfa|ifa|random]
                [--seed N] [--slack N] [--exchange] [--psi N] [--xseed N]
                [--starts K] [--prune-margin F]
                [--portfolio-mode race|coop|temper] [--kick-size N]
                [--ladder-ratio F] [--margin-weight F]
                [--prev FILE] [--use-profile] [--timeout-ms N]
                [--class interactive|bulk] [--out FILE]
      Submit one planning job to a running daemon and print its report.
      The planning flags mirror `copack plan`; --xseed seeds the exchange
      pass, --starts/--prune-margin select the portfolio (part of the
      daemon's cache key, as are --portfolio-mode/--kick-size/
      --ladder-ratio when a non-default mode is chosen),
      --timeout-ms overrides the daemon's default
      budget, --class picks the admission class (interactive jobs are
      prioritised, bulk jobs never starve; the result is identical
      either way). --prev FILE ships a previous assignment so the
      daemon warm-starts the exchange from it (an incremental replan of
      one quadrant); --margin-weight sets the net-separation margin
      term. Both join the cache key only when they can change the
      result. --use-profile plans under the daemon's loaded tuning
      profile (see serve --profile). --out writes the assignment file
      (byte-identical to `copack plan --out`).

  copack batch <dir> [--addr HOST:PORT] [--class interactive|bulk]
               [--stream] [planning flags as submit]
      Submit every `*.copack` file in <dir> to the daemon as one
      streamed batch and print a per-job verdict table (directory
      order); exits non-zero if any job fails or times out. --stream
      also prints one live line per job as its result arrives
      (completion order). --class classes the whole batch (default
      interactive; use bulk for sweeps that should yield to interactive
      traffic).

  copack shutdown [--addr HOST:PORT]
      Ask the daemon to drain its queue and stop.

  Telemetry (plan, ir, check, fuzz, serve): --trace FILE streams the
  run's events as JSON lines; --metrics appends a summary block (for
  serve: queue depth, cache hit rate, p50/p99 latency; for portfolio
  plans: one cost sparkline per start, pruned starts flagged). Neither
  flag changes the computed result.
";

/// Where the daemon listens (and clients connect) unless `--addr` says
/// otherwise.
const DEFAULT_ADDR: &str = "127.0.0.1:46071";

/// Runs the CLI on pre-split arguments (without the program name) and
/// returns the text to print.
///
/// # Errors
///
/// Returns a human-readable message (file, parse, or model error) suitable
/// for printing to stderr with a non-zero exit code.
pub fn run(args: &[String]) -> Result<String, String> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("gen") => cmd_gen(&args[1..]),
        Some("plan") => cmd_plan(&args[1..]),
        Some("replan") => cmd_replan(&args[1..]),
        Some("route") => cmd_route(&args[1..]),
        Some("ir") => cmd_ir(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("tune") => cmd_tune(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("shutdown") => cmd_shutdown(&args[1..]),
        Some("--help" | "-h" | "help") | None => Ok(USAGE.to_owned()),
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

struct Options {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

/// Flags that take a value; everything else `--x` is boolean.
const VALUED: [&str; 35] = [
    "--portfolio-mode",
    "--kick-size",
    "--ladder-ratio",
    "--prev",
    "--profile",
    "--rounds",
    "--delta",
    "--margin-weight",
    "--family",
    "--size",
    "--starts",
    "--prune-margin",
    "--out",
    "--svg",
    "--method",
    "--seed",
    "--slack",
    "--psi",
    "--grid",
    "--threads",
    "--trace",
    "--budget-secs",
    "--cases",
    "--corpus",
    "--addr",
    "--workers",
    "--queue",
    "--timeout-secs",
    "--port-file",
    "--xseed",
    "--timeout-ms",
    "--cache-dir",
    "--cache-mem-limit",
    "--worker-stall-ms",
    "--class",
];

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(flag) = arg.strip_prefix("--") {
            if VALUED.contains(&arg.as_str()) {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{flag} needs a value"))?;
                flags.push((flag.to_owned(), Some(value.clone())));
            } else {
                flags.push((flag.to_owned(), None));
            }
        } else {
            positional.push(arg.clone());
        }
    }
    Ok(Options { positional, flags })
}

impl Options {
    fn flag(&self, name: &str) -> Option<&Option<String>> {
        self.flags.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flag(name).and_then(|v| v.as_deref())
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects a number, got `{v}`")),
        }
    }
}

/// Telemetry wiring shared by `plan` and `ir`: events are buffered in
/// memory during the run and drained afterwards, so the hot paths never
/// touch the filesystem. The trace file is opened *before* the run — an
/// unwritable `--trace` path fails loudly up front — while write errors
/// during the drain degrade to a warning line (the run's result is
/// already computed and is still printed).
struct Telemetry {
    buffer: TraceBuffer,
    sink: Option<(String, JsonlSink<BufWriter<File>>)>,
    metrics: bool,
}

impl Telemetry {
    /// Builds the telemetry state from `--trace`/`--metrics`, or `None`
    /// when neither flag is present (the untraced paths stay untouched).
    fn from_options(opts: &Options) -> Result<Option<Self>, String> {
        let metrics = opts.flag("metrics").is_some();
        let trace = opts.value("trace");
        if !metrics && trace.is_none() {
            return Ok(None);
        }
        let sink = match trace {
            Some(path) => {
                let sink = JsonlSink::create(Path::new(path)).map_err(|e| e.to_string())?;
                Some((path.to_owned(), sink))
            }
            None => None,
        };
        Ok(Some(Self {
            buffer: TraceBuffer::new(),
            sink,
            metrics,
        }))
    }

    /// Drains the buffered events into the trace file and renders the
    /// `--metrics` block into `out`.
    fn finish(self, out: &mut String) {
        let events = self.buffer.into_events();
        if let Some((path, mut sink)) = self.sink {
            for event in &events {
                sink.record(event);
            }
            match sink.finish() {
                Ok(_) => {
                    let _ = writeln!(out, "wrote {path} ({} events)", events.len());
                }
                Err(e) => {
                    let _ = writeln!(out, "warning: trace file {path} is incomplete: {e}");
                }
            }
        }
        if self.metrics {
            let summary = TraceSummary::from_events(&events);
            out.push_str(&summary.to_text());
            out.push_str(&trace_sparklines(&events, 60));
        }
    }
}

fn load_quadrant(path: &str) -> Result<(String, copack_geom::Quadrant), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_quadrant(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_assignment(path: &str) -> Result<copack_geom::Assignment, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Ok(parse_assignment(&text)
        .map_err(|e| format!("{path}: {e}"))?
        .1)
}

/// Parses `--margin-weight`, the weight of the net-separation margin
/// term in the exchange cost. Zero — the default — leaves the term off,
/// so every pre-existing invocation is unchanged.
fn margin_weight(opts: &Options) -> Result<f64, String> {
    let weight: f64 = opts.num("margin-weight", 0.0)?;
    if weight.is_nan() || weight < 0.0 {
        return Err("--margin-weight expects a non-negative number".to_owned());
    }
    Ok(weight)
}

/// Builds the exchange configuration shared by `plan` and `replan`:
/// defaults plus the `--xseed` seed and `--margin-weight` cost term.
fn exchange_config(opts: &Options) -> Result<ExchangeConfig, String> {
    let weights = CostWeights {
        margin: margin_weight(opts)?,
        ..CostWeights::default()
    };
    Ok(ExchangeConfig {
        seed: opts.num("xseed", ExchangeConfig::default().seed)?,
        weights,
        ..ExchangeConfig::default()
    })
}

/// Loads `--profile` (a `copack tune` output file), or `None` when the
/// flag is absent. Parse failures — truncation, checksum mismatch,
/// version skew — surface as typed errors with the file name attached.
fn load_profile(opts: &Options) -> Result<Option<TuneProfile>, String> {
    match opts.value("profile") {
        None => Ok(None),
        Some(path) => {
            let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            Ok(Some(parse_tune(&text).map_err(|e| format!("{path}: {e}"))?))
        }
    }
}

fn maybe_write(path: Option<&str>, content: &str, out: &mut String) -> Result<(), String> {
    if let Some(path) = path {
        fs::write(path, content).map_err(|e| format!("{path}: {e}"))?;
        let _ = writeln!(out, "wrote {path}");
    }
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<String, String> {
    let opts = parse_options(args)?;
    let (name, q) = match opts.value("family").unwrap_or("table1") {
        "table1" => {
            let [index] = opts.positional.as_slice() else {
                return Err(format!("gen expects one circuit index\n\n{USAGE}"));
            };
            let n: usize = index
                .parse()
                .map_err(|_| format!("`{index}` is not a circuit index"))?;
            if !(1..=5).contains(&n) {
                return Err("Table 1 has circuits 1..=5".to_owned());
            }
            let c = circuit(n);
            let q = c.build_quadrant().map_err(|e| e.to_string())?;
            (c.name.replace(' ', ""), q)
        }
        "large" => {
            if !opts.positional.is_empty() {
                return Err("gen --family large takes --size, not an index".to_owned());
            }
            let size = opts.value("size").unwrap_or("1k");
            let seed = opts.num("seed", 42u64)?;
            let spec = copack_gen::large_circuit(size, seed).ok_or_else(|| {
                format!(
                    "unknown large size `{size}` (sizes: {})",
                    copack_gen::LARGE_SIZES.join(", ")
                )
            })?;
            let q = spec.build_quadrant().map_err(|e| e.to_string())?;
            (spec.name, q)
        }
        other => {
            return Err(format!(
                "unknown family `{other}` (families: table1, large)"
            ));
        }
    };
    let text = write_quadrant(&name, &q);
    let mut out = String::new();
    match opts.value("out") {
        Some(_) => maybe_write(opts.value("out"), &text, &mut out)?,
        None => out = text,
    }
    Ok(out)
}

fn cmd_plan(args: &[String]) -> Result<String, String> {
    let opts = parse_options(args)?;
    let [path] = opts.positional.as_slice() else {
        return Err(format!("plan expects one circuit file\n\n{USAGE}"));
    };
    let (name, quadrant) = load_quadrant(path)?;
    let mut telemetry = Telemetry::from_options(&opts)?;

    let seed = opts.num("seed", 42u64)?;
    let slack = opts.num("slack", 1u32)?;
    let method = match opts.value("method").unwrap_or("dfa") {
        "dfa" => AssignMethod::Dfa { slack },
        "ifa" => AssignMethod::Ifa,
        "random" => AssignMethod::Random { seed },
        other => return Err(format!("unknown method `{other}` (dfa|ifa|random)")),
    };
    let profile = load_profile(&opts)?;
    if profile.is_some() && (opts.flag("exchange").is_none() || opts.flag("package").is_some()) {
        return Err("--profile tunes the exchange pass: it requires --exchange and does not apply to --package".to_owned());
    }

    if opts.flag("package").is_some() {
        let psi = opts.num("psi", 1u8)?;
        let stack = if psi <= 1 {
            StackConfig::planar()
        } else {
            StackConfig::stacked(psi).map_err(|e| e.to_string())?
        };
        let threads = opts.num("threads", 0usize)?;
        let config = Codesign {
            method,
            stack,
            threads,
            ..Codesign::default()
        };
        let package = Package::uniform(quadrant);
        let report = match telemetry.as_mut() {
            Some(t) => plan_package_traced(&package, &config, &mut t.buffer),
            None => plan_package(&package, &config),
        }
        .map_err(|e| e.to_string())?;
        let mut out = String::new();
        let _ = writeln!(out, "{name}: package plan ({method})");
        for (i, r) in report.routing.iter().enumerate() {
            let _ = writeln!(out, "  side {i}: {r}");
        }
        if let (Some(before), Some(after)) = (report.ir_before, report.ir_after) {
            let _ = writeln!(
                out,
                "  package IR-drop: {:.3} mV -> {:.3} mV",
                before * 1000.0,
                after * 1000.0
            );
        }
        let _ = writeln!(
            out,
            "  worst cut-line congestion: {}",
            report.cutlines.max()
        );
        for (i, a) in report.assignments.iter().enumerate() {
            let _ = writeln!(out, "  order[{i}]: {a}");
        }
        if let Some(t) = telemetry {
            t.finish(&mut out);
        }
        return Ok(out);
    }

    let mut assignment = assign(&quadrant, method).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let report =
        analyze(&quadrant, &assignment, DensityModel::Geometric).map_err(|e| e.to_string())?;
    if let Some(t) = telemetry.as_mut() {
        t.buffer.record(&Event::RoutingEvaluated {
            max_density: report.max_density,
            total_wirelength: report.total_wirelength,
        });
    }
    let _ = writeln!(out, "{name}: {method} -> {report}");

    if opts.flag("exchange").is_some() {
        let psi = opts.num("psi", 1u8)?;
        let stack = if psi <= 1 {
            StackConfig::planar()
        } else {
            StackConfig::stacked(psi).map_err(|e| e.to_string())?
        };
        let starts = opts.num("starts", 1u32)?;
        if starts == 0 {
            return Err("--starts expects at least 1 start".to_owned());
        }
        let mut xconfig = exchange_config(&opts)?;
        let (mode, kick_size, ladder_ratio) = portfolio_mode_options(&opts)?;
        let mut portfolio = PortfolioConfig {
            starts,
            prune_margin: opts.num("prune-margin", PortfolioConfig::default().prune_margin)?,
            threads: opts.num("threads", 0usize)?,
            mode,
            kick_size,
            ladder_ratio,
            ..PortfolioConfig::default()
        };
        if let Some(p) = &profile {
            // The tuned class config replaces schedule, weights, and
            // portfolio shape; the seed and worker threads stay the
            // flags' (`apply` never touches them), and explicitly-given
            // flags still win over the profile.
            p.config_for(&quadrant).apply(&mut xconfig, &mut portfolio);
            if opts.value("starts").is_some() {
                portfolio.starts = starts;
            }
            if opts.value("prune-margin").is_some() {
                portfolio.prune_margin =
                    opts.num("prune-margin", PortfolioConfig::default().prune_margin)?;
            }
            if opts.value("portfolio-mode").is_some() {
                portfolio.mode = mode;
            }
            if opts.value("kick-size").is_some() {
                portfolio.kick_size = kick_size;
            }
            if opts.value("ladder-ratio").is_some() {
                portfolio.ladder_ratio = ladder_ratio;
            }
            if opts.value("margin-weight").is_some() {
                xconfig.weights.margin = margin_weight(&opts)?;
            }
            let _ = writeln!(
                out,
                "{name}: tuned profile applied (class {})",
                classify_quadrant(&quadrant)
            );
        }
        let starts = portfolio.starts;
        let result = if starts > 1 {
            let won = match telemetry.as_mut() {
                Some(t) => exchange_portfolio_traced(
                    &quadrant,
                    &assignment,
                    &stack,
                    &xconfig,
                    &portfolio,
                    &mut t.buffer,
                ),
                None => exchange_portfolio_traced(
                    &quadrant,
                    &assignment,
                    &stack,
                    &xconfig,
                    &portfolio,
                    &mut NoopRecorder,
                ),
            }
            .map_err(|e| e.to_string())?;
            // Same line the daemon's executor prints, so served reports
            // stay byte-identical to local ones.
            let _ = writeln!(
                out,
                "{name}: portfolio K={starts} winner start {} seed {} pruned {}",
                won.winner_start,
                won.winner_seed,
                won.pruned()
            );
            won.result
        } else {
            match telemetry.as_mut() {
                Some(t) => exchange_traced(&quadrant, &assignment, &stack, &xconfig, &mut t.buffer),
                None => exchange(&quadrant, &assignment, &stack, &xconfig),
            }
            .map_err(|e| e.to_string())?
        };
        assignment = result.assignment;
        let report =
            analyze(&quadrant, &assignment, DensityModel::Geometric).map_err(|e| e.to_string())?;
        if let Some(t) = telemetry.as_mut() {
            t.buffer.record(&Event::RoutingEvaluated {
                max_density: report.max_density,
                total_wirelength: report.total_wirelength,
            });
        }
        let _ = writeln!(
            out,
            "{name}: after exchange (cost {:.4} -> {:.4}) -> {report}",
            result.stats.initial_cost, result.stats.final_cost
        );
    }

    let _ = writeln!(out, "order: {assignment}");
    maybe_write(
        opts.value("out"),
        &write_assignment(&name, &assignment),
        &mut out,
    )?;
    if let Some(svg_path) = opts.value("svg") {
        let svg = routing_svg(&quadrant, &assignment).map_err(|e| e.to_string())?;
        maybe_write(Some(svg_path), &svg, &mut out)?;
    }
    if let Some(t) = telemetry {
        t.finish(&mut out);
    }
    Ok(out)
}

fn cmd_replan(args: &[String]) -> Result<String, String> {
    let opts = parse_options(args)?;
    let [path] = opts.positional.as_slice() else {
        return Err(format!("replan expects one circuit file\n\n{USAGE}"));
    };
    let prev_path = opts
        .value("prev")
        .ok_or_else(|| format!("replan needs --prev ASSIGNMENT-FILE\n\n{USAGE}"))?;
    let delta_path = opts
        .value("delta")
        .ok_or_else(|| format!("replan needs --delta EDITS-FILE\n\n{USAGE}"))?;
    let (name, base) = load_quadrant(path)?;
    let prev_text = fs::read_to_string(prev_path).map_err(|e| format!("{prev_path}: {e}"))?;
    let (_, previous) = parse_assignment(&prev_text).map_err(|e| format!("{prev_path}: {e}"))?;
    let delta_text = fs::read_to_string(delta_path).map_err(|e| format!("{delta_path}: {e}"))?;
    let (_, delta) = parse_delta(&delta_text).map_err(|e| format!("{delta_path}: {e}"))?;
    let profile = load_profile(&opts)?;
    let mut telemetry = Telemetry::from_options(&opts)?;

    let mut out = String::new();
    // A quadrant is clean when the delta does not list it — or when it
    // does but the listed edits cancel out to a no-op (an ECO that was
    // made and reverted, then resubmitted). Either way the edited
    // netlist equals the base, so the previous plan is still exactly
    // valid and repair + re-anneal would be pure waste.
    // (An *invalid* delta is not a no-op: it falls through to the dirty
    // path, where `apply_delta` reports the real error.)
    let noop_resubmission = delta
        .get(&name)
        .is_some_and(|d| d.is_noop_for(&base).unwrap_or(false));
    if delta.is_clean(&name) || noop_resubmission {
        // Untouched quadrant: reuse the previous plan verbatim. Nothing
        // is re-annealed — the only trace is the replan bookkeeping —
        // and --out gets the previous file's bytes, not a re-render, so
        // reuse is bit-for-bit.
        if let Some(t) = telemetry.as_mut() {
            t.buffer.record(&Event::ReplanStart {
                quadrants: 1,
                dirty: 0,
            });
            t.buffer.record(&Event::QuadrantReused {
                name: name.clone(),
                tier: "previous".to_owned(),
            });
        }
        let _ = writeln!(
            out,
            "{name}: replan 0/1 quadrants dirty; previous plan reused"
        );
        let _ = writeln!(out, "order: {previous}");
        maybe_write(opts.value("out"), &prev_text, &mut out)?;
        if let Some(t) = telemetry {
            t.finish(&mut out);
        }
        return Ok(out);
    }

    let quadrant_delta = delta
        .get(&name)
        .expect("a dirty instance lists this quadrant");
    let edited = apply_delta(&base, quadrant_delta).map_err(|e| format!("{delta_path}: {e}"))?;
    let psi = opts.num("psi", 1u8)?;
    let stack = if psi <= 1 {
        StackConfig::planar()
    } else {
        StackConfig::stacked(psi).map_err(|e| e.to_string())?
    };
    let mut config = exchange_config(&opts)?;
    if let Some(p) = &profile {
        // The warm path is single-start, so only the tuned schedule and
        // weights matter; explicit flags still win, as in plan.
        let mut portfolio = PortfolioConfig::default();
        p.config_for(&edited).apply(&mut config, &mut portfolio);
        if opts.value("margin-weight").is_some() {
            config.weights.margin = margin_weight(&opts)?;
        }
        let _ = writeln!(
            out,
            "{name}: tuned profile applied (class {})",
            classify_quadrant(&edited)
        );
    }
    if let Some(t) = telemetry.as_mut() {
        t.buffer.record(&Event::ReplanStart {
            quadrants: 1,
            dirty: 1,
        });
    }
    let mut noop = NoopRecorder;
    let recorder: &mut dyn Recorder = match telemetry.as_mut() {
        Some(t) => &mut t.buffer,
        None => &mut noop,
    };
    let result = exchange_warm(
        &edited,
        &previous,
        &stack,
        &config,
        recorder,
        &CancelToken::new(),
    )
    .map_err(|e| e.to_string())?;
    let assignment = result.assignment;
    let report =
        analyze(&edited, &assignment, DensityModel::Geometric).map_err(|e| e.to_string())?;
    if let Some(t) = telemetry.as_mut() {
        t.buffer.record(&Event::RoutingEvaluated {
            max_density: report.max_density,
            total_wirelength: report.total_wirelength,
        });
    }
    // Same verb line the daemon's replan executor prints, so served
    // replans stay byte-identical to local ones.
    let _ = writeln!(out, "{name}: replan 1/1 quadrants dirty");
    let _ = writeln!(
        out,
        "{name}: after replan (cost {:.4} -> {:.4}) -> {report}",
        result.stats.initial_cost, result.stats.final_cost
    );
    let _ = writeln!(out, "order: {assignment}");
    maybe_write(
        opts.value("out"),
        &write_assignment(&name, &assignment),
        &mut out,
    )?;
    if let Some(t) = telemetry {
        t.finish(&mut out);
    }
    Ok(out)
}

fn cmd_route(args: &[String]) -> Result<String, String> {
    let opts = parse_options(args)?;
    let [circuit_path, assignment_path] = opts.positional.as_slice() else {
        return Err(format!(
            "route expects a circuit and an assignment\n\n{USAGE}"
        ));
    };
    let (name, quadrant) = load_quadrant(circuit_path)?;
    let assignment = load_assignment(assignment_path)?;
    let report =
        analyze(&quadrant, &assignment, DensityModel::Geometric).map_err(|e| e.to_string())?;
    let balanced = balanced_density_map(&quadrant, &assignment)
        .map_err(|e| e.to_string())?
        .max_density();
    let mut out = String::new();
    let _ = writeln!(out, "{name}: {report}");
    let _ = writeln!(
        out,
        "{name}: best-achievable (balanced) max density {balanced}"
    );
    let _ = write!(
        out,
        "{}",
        routing_ascii(&quadrant, &assignment).map_err(|e| e.to_string())?
    );
    let _ = write!(
        out,
        "{}",
        density_histogram(&quadrant, &assignment, DensityModel::Geometric)
            .map_err(|e| e.to_string())?
    );
    if let Some(svg_path) = opts.value("svg") {
        let svg = routing_svg(&quadrant, &assignment).map_err(|e| e.to_string())?;
        maybe_write(Some(svg_path), &svg, &mut out)?;
    }
    Ok(out)
}

fn cmd_ir(args: &[String]) -> Result<String, String> {
    let opts = parse_options(args)?;
    let [circuit_path, assignment_path] = opts.positional.as_slice() else {
        return Err(format!("ir expects a circuit and an assignment\n\n{USAGE}"));
    };
    let (name, quadrant) = load_quadrant(circuit_path)?;
    let assignment = load_assignment(assignment_path)?;
    let n = opts.num("grid", 48usize)?;
    let grid = GridSpec::default_chip(n);
    let mut telemetry = Telemetry::from_options(&opts)?;
    let mut noop = NoopRecorder;
    let recorder: &mut dyn Recorder = match telemetry.as_mut() {
        Some(t) => &mut t.buffer,
        None => &mut noop,
    };
    let drop = copack_core::evaluate_ir_map_traced(&quadrant, &assignment, &grid, None, recorder)
        .map_err(|e| e.to_string())?
        .map(|map| map.max_drop());
    let mut out = match drop {
        Some(v) => format!(
            "{name}: max IR-drop {:.3} mV ({n}x{n} grid, pads replicated on 4 sides)\n",
            v * 1000.0
        ),
        None => format!("{name}: no power nets, nothing to solve\n"),
    };
    if let Some(t) = telemetry {
        t.finish(&mut out);
    }
    Ok(out)
}

fn cmd_check(args: &[String]) -> Result<String, String> {
    let opts = parse_options(args)?;
    let [path] = opts.positional.as_slice() else {
        return Err(format!("check expects one circuit file\n\n{USAGE}"));
    };
    let (name, quadrant) = load_quadrant(path)?;
    let psi = opts.num("psi", 1u8)?;
    let mut telemetry = Telemetry::from_options(&opts)?;
    let mut noop = NoopRecorder;
    let recorder: &mut dyn Recorder = match telemetry.as_mut() {
        Some(t) => &mut t.buffer,
        None => &mut noop,
    };
    let config = copack_verify::VerifyConfig::quick(psi);
    let reports = copack_verify::check_quadrant(&quadrant, &config, recorder);
    let mut out = copack_verify::verdict_table(&name, &reports);
    if let Some(t) = telemetry {
        t.finish(&mut out);
    }
    if reports.iter().all(|r| r.passed) {
        Ok(out)
    } else {
        Err(out)
    }
}

fn cmd_fuzz(args: &[String]) -> Result<String, String> {
    let opts = parse_options(args)?;
    if !opts.positional.is_empty() {
        return Err(format!("fuzz takes only flags\n\n{USAGE}"));
    }
    let seed = opts.num("seed", 1u64)?;
    let cases = match opts.value("cases") {
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("--cases expects a number, got `{v}`"))?,
        ),
        None => None,
    };
    // Without an explicit case count the run is wall-clock bounded;
    // 10 s of the quick profile covers a few hundred instances.
    let default_budget = if cases.is_none() { 10 } else { 0 };
    let budget_secs = opts.num("budget-secs", default_budget)?;
    let config = copack_verify::FuzzConfig {
        seed,
        budget: (budget_secs > 0).then(|| std::time::Duration::from_secs(budget_secs)),
        max_cases: cases,
        corpus_dir: opts.value("corpus").map(std::path::PathBuf::from),
    };
    let mut telemetry = Telemetry::from_options(&opts)?;
    let mut noop = NoopRecorder;
    let recorder: &mut dyn Recorder = match telemetry.as_mut() {
        Some(t) => &mut t.buffer,
        None => &mut noop,
    };
    let outcome = copack_verify::run_fuzz(&config, recorder);
    let mut out = String::new();
    match &outcome.failure {
        None => {
            let _ = writeln!(
                out,
                "fuzz: {} cases, seed {seed}, 0 violations",
                outcome.cases
            );
        }
        Some(f) => {
            let _ = writeln!(
                out,
                "fuzz: VIOLATION in case {} (seed {seed}, {} generator)",
                f.case_index, f.variant
            );
            let _ = writeln!(out, "  oracle: {}", f.oracle);
            let _ = writeln!(out, "  detail: {}", f.detail);
            let _ = writeln!(
                out,
                "  shrunk: {} nets, {} rows, exchange seed {}",
                f.quadrant.net_count(),
                f.quadrant.row_count(),
                f.config.exchange_seed
            );
            if let Some(delta) = &f.delta {
                let _ = writeln!(
                    out,
                    "  delta: {} edits (replan reproducer)",
                    delta.edits.len()
                );
            }
            match &f.reproducer {
                Some(p) => {
                    let _ = writeln!(out, "  reproducer: {}", p.display());
                }
                None => {
                    let _ = writeln!(out, "  reproducer: not written (pass --corpus DIR)");
                }
            }
            if let Some(p) = &f.edits_file {
                let _ = writeln!(out, "  edits: {}", p.display());
            }
        }
    }
    if let Some(t) = telemetry {
        t.finish(&mut out);
    }
    if outcome.failure.is_none() {
        Ok(out)
    } else {
        Err(out)
    }
}

fn cmd_tune(args: &[String]) -> Result<String, String> {
    let opts = parse_options(args)?;
    let psi = opts.num("psi", 1u8)?;
    let mut instances: Vec<(String, copack_geom::Quadrant, StackConfig)> = Vec::new();
    if opts.positional.is_empty() {
        // The built-in tuning family: Table 1 plus stacked and deep-row
        // variants, chosen to cover the instance classes the other
        // verbs see.
        for c in copack_gen::tune_family() {
            let quadrant = c.build_quadrant().map_err(|e| e.to_string())?;
            let stack = c.stack().map_err(|e| e.to_string())?;
            instances.push((c.name.replace(' ', ""), quadrant, stack));
        }
    } else {
        let stack = if psi <= 1 {
            StackConfig::planar()
        } else {
            StackConfig::stacked(psi).map_err(|e| e.to_string())?
        };
        for path in &opts.positional {
            let (name, quadrant) = load_quadrant(path)?;
            instances.push((name, quadrant, stack));
        }
    }
    let space = if opts.flag("quick").is_some() {
        TrialSpace::quick()
    } else {
        TrialSpace::standard()
    };
    let options = TuneOptions {
        seed: opts.num("seed", TuneOptions::default().seed)?,
        threads: opts.num("threads", 0usize)?,
        rounds: opts.num("rounds", TuneOptions::default().rounds)?,
    };
    let report = tune(&instances, &space, &options).map_err(|e| e.to_string())?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "tuned {} instances over {} points ({} trials, seed {})",
        instances.len(),
        space.len(),
        report.trials,
        options.seed
    );
    for class in &report.classes {
        let _ = writeln!(
            out,
            "  {}: winner point {} cost {:.4} -> {:.4} (corr {:+.2}, {} pruned; members {})",
            class.key,
            class.winner,
            class.default_cost,
            class.winner_cost,
            class.correlation,
            class.pruned_points,
            class.members.join(", ")
        );
    }
    maybe_write(opts.value("out"), &write_tune(&report.profile), &mut out)?;
    Ok(out)
}

/// Parses the cooperative-portfolio flags shared by `plan` and
/// `submit`/`batch`: `--portfolio-mode` (default `race`), `--kick-size`
/// (default 4, `coop` only) and `--ladder-ratio` (default 1.5, `temper`
/// only). Validation mirrors [`PortfolioConfig::is_valid`] so a bad
/// flag fails at the CLI boundary with a readable message instead of a
/// core error.
fn portfolio_mode_options(opts: &Options) -> Result<(PortfolioMode, u32, f64), String> {
    let mode = match opts.value("portfolio-mode") {
        None => PortfolioMode::Race,
        Some(tag) => PortfolioMode::parse(tag)
            .ok_or_else(|| format!("unknown portfolio mode `{tag}` (race|coop|temper)"))?,
    };
    let kick_size = opts.num("kick-size", PortfolioConfig::default().kick_size)?;
    if kick_size == 0 {
        return Err("--kick-size expects at least 1 swap".to_owned());
    }
    let ladder_ratio: f64 = opts.num("ladder-ratio", PortfolioConfig::default().ladder_ratio)?;
    if !ladder_ratio.is_finite() || ladder_ratio < 1.0 {
        return Err("--ladder-ratio expects a finite ratio >= 1.0".to_owned());
    }
    Ok((mode, kick_size, ladder_ratio))
}

/// Builds a daemon job spec from `submit`/`batch`'s planning flags (the
/// same vocabulary as `copack plan`).
fn job_spec_from_options(opts: &Options, circuit: String) -> Result<JobSpec, String> {
    let seed = opts.num("seed", 42u64)?;
    let slack = opts.num("slack", 1u32)?;
    let method = match opts.value("method").unwrap_or("dfa") {
        "dfa" => AssignMethod::Dfa { slack },
        "ifa" => AssignMethod::Ifa,
        "random" => AssignMethod::Random { seed },
        other => return Err(format!("unknown method `{other}` (dfa|ifa|random)")),
    };
    let psi = opts.num("psi", 1u8)?;
    if psi == 0 {
        return Err("--psi expects at least 1 tier".to_owned());
    }
    let timeout_ms = match opts.value("timeout-ms") {
        None => None,
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("--timeout-ms expects a number, got `{v}`"))?,
        ),
    };
    let starts = opts.num("starts", 1u32)?;
    if starts == 0 {
        return Err("--starts expects at least 1 start".to_owned());
    }
    let prune_margin: f64 = opts.num("prune-margin", PortfolioConfig::default().prune_margin)?;
    if prune_margin.is_nan() || prune_margin < 0.0 {
        return Err("--prune-margin expects a non-negative number".to_owned());
    }
    let (mode, kick_size, ladder_ratio) = portfolio_mode_options(opts)?;
    let prev = match opts.value("prev") {
        None => None,
        Some(p) => Some(fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?),
    };
    Ok(JobSpec {
        circuit,
        method,
        exchange: opts.flag("exchange").is_some(),
        psi,
        exchange_seed: opts.num("xseed", ExchangeConfig::default().seed)?,
        starts,
        prune_margin_bits: prune_margin.to_bits(),
        mode,
        kick_size,
        ladder_ratio_bits: ladder_ratio.to_bits(),
        prev,
        margin_bits: margin_weight(opts)?.to_bits(),
        profile: opts.flag("use-profile").is_some(),
        timeout_ms,
        class: job_class_from_options(opts)?,
    })
}

/// Parses `--class` (default: interactive).
fn job_class_from_options(opts: &Options) -> Result<JobClass, String> {
    match opts.value("class") {
        None => Ok(JobClass::Interactive),
        Some(tag) => JobClass::parse_tag(tag)
            .ok_or_else(|| format!("unknown class `{tag}` (interactive|bulk)")),
    }
}

fn connect_daemon(opts: &Options) -> Result<(String, Client), String> {
    let addr = opts.value("addr").unwrap_or(DEFAULT_ADDR).to_owned();
    let client = Client::connect(&addr)
        .map_err(|e| format!("no daemon at {addr} ({e}); start one with `copack serve`"))?;
    Ok((addr, client))
}

fn cmd_serve(args: &[String]) -> Result<String, String> {
    let opts = parse_options(args)?;
    if !opts.positional.is_empty() {
        return Err(format!("serve takes only flags\n\n{USAGE}"));
    }
    let addr = opts.value("addr").unwrap_or(DEFAULT_ADDR);
    let timeout_secs = opts.num("timeout-secs", 30u64)?;
    let stall_ms = opts.num("worker-stall-ms", 0u64)?;
    let config = ServeConfig {
        workers: opts.num("workers", 0usize)?,
        queue_capacity: opts.num("queue", 64usize)?,
        default_timeout: (timeout_secs > 0).then(|| std::time::Duration::from_secs(timeout_secs)),
        // Test hook (undocumented): slows every worker down so harness
        // tests can observe queues and in-flight batches.
        worker_stall: (stall_ms > 0).then(|| std::time::Duration::from_millis(stall_ms)),
        cache_dir: opts.value("cache-dir").map(std::path::PathBuf::from),
        cache_mem_limit: opts.num("cache-mem-limit", ServeConfig::default().cache_mem_limit)?,
        profile: load_profile(&opts)?,
    };
    let trace = opts.value("trace").map(str::to_owned);
    let metrics = opts.flag("metrics").is_some();

    let server = Server::bind(addr, config).map_err(|e| format!("{addr}: {e}"))?;
    let local = server.local_addr().map_err(|e| e.to_string())?;
    // Announce the bound address *before* blocking in the accept loop,
    // so scripts (and the CI smoke test) can connect; `run` only
    // returns after a client sends shutdown.
    println!("listening on {local}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    maybe_write(
        opts.value("port-file"),
        &format!("{}\n", local.port()),
        &mut String::new(),
    )?;

    let summary = server.run().map_err(|e| e.to_string())?;
    let mut out = String::new();
    let s = &summary.status;
    let _ = writeln!(
        out,
        "served {} jobs: {} completed, {} cache hits, {} coalesced, {} rejected, {} timeouts",
        s.submitted, s.completed, s.cache_hits, s.coalesced, s.rejected, s.timeouts
    );
    let c = &summary.cache;
    let _ = writeln!(
        out,
        "cache disk {} entries ({} disk hits, {} evictions, {} quarantined)",
        c.disk_entries, c.disk_hits, c.evictions, c.quarantined
    );
    if let Some(path) = trace {
        let mut sink = JsonlSink::create(Path::new(&path)).map_err(|e| format!("{path}: {e}"))?;
        for event in &summary.events {
            sink.record(event);
        }
        match sink.finish() {
            Ok(_) => {
                let _ = writeln!(out, "wrote {path} ({} events)", summary.events.len());
            }
            Err(e) => {
                let _ = writeln!(out, "warning: trace file {path} is incomplete: {e}");
            }
        }
    }
    if metrics {
        out.push_str(&pool_metrics_text(&summary.events));
    }
    Ok(out)
}

fn cmd_submit(args: &[String]) -> Result<String, String> {
    let opts = parse_options(args)?;
    let [path] = opts.positional.as_slice() else {
        return Err(format!("submit expects one circuit file\n\n{USAGE}"));
    };
    let circuit = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let spec = job_spec_from_options(&opts, circuit)?;
    let (_, mut client) = connect_daemon(&opts)?;
    let plan = client.plan(&spec).map_err(|e| format!("{path}: {e}"))?;

    let mut out = String::new();
    let _ = writeln!(out, "{path}: cache {} (key {:016x})", plan.cache, plan.key);
    out.push_str(&plan.report);
    maybe_write(opts.value("out"), &plan.assignment, &mut out)?;
    Ok(out)
}

fn cmd_batch(args: &[String]) -> Result<String, String> {
    let opts = parse_options(args)?;
    let [dir] = opts.positional.as_slice() else {
        return Err(format!("batch expects one directory\n\n{USAGE}"));
    };
    let mut files: Vec<String> = fs::read_dir(dir)
        .map_err(|e| format!("{dir}: {e}"))?
        .filter_map(Result::ok)
        .filter(|entry| entry.path().extension().is_some_and(|ext| ext == "copack"))
        .filter_map(|entry| entry.file_name().into_string().ok())
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("{dir}: no .copack files to plan"));
    }

    // One connection, one batch frame: the daemon streams per-item
    // frames back in completion order (tagged with each job's
    // submission index) and closes with a summary frame. --stream
    // prints a live line per arriving item before the final table.
    let class = job_class_from_options(&opts)?;
    let stream = opts.flag("stream").is_some();
    let mut rows: Vec<(String, Result<PlanResponse, String>)> = files
        .iter()
        .map(|file| (file.clone(), Err("no response from daemon".to_owned())))
        .collect();
    let mut specs: Vec<JobSpec> = Vec::new();
    let mut submitted: Vec<usize> = Vec::new();
    for (index, file) in files.iter().enumerate() {
        let path = Path::new(dir).join(file);
        match fs::read_to_string(&path)
            .map_err(|e| format!("{}: {e}", path.display()))
            .and_then(|text| job_spec_from_options(&opts, text))
        {
            Ok(spec) => {
                specs.push(spec);
                submitted.push(index);
            }
            Err(message) => rows[index].1 = Err(message),
        }
    }
    if !specs.is_empty() {
        let (addr, mut client) = connect_daemon(&opts)?;
        let total = specs.len();
        let mut done = 0usize;
        let outcome = client
            .batch(&specs, class, |seq, result| {
                done += 1;
                if stream {
                    let file = submitted
                        .get(seq as usize)
                        .map_or("?", |&index| files[index].as_str());
                    match result {
                        Ok(plan) => {
                            println!("[{done}/{total}] {file}: PASS (cache {})", plan.cache)
                        }
                        Err(error) => println!("[{done}/{total}] {file}: FAIL ({error})"),
                    }
                }
            })
            .map_err(|e| format!("{addr}: {e}"))?;
        for (seq, result) in outcome.items {
            if let Some(&index) = submitted.get(seq as usize) {
                rows[index].1 = result.map_err(|e| e.to_string());
            }
        }
    }

    // Render the same verdict-table shape `copack check` prints, in
    // directory order regardless of completion order.
    let results = rows;
    let passed = results.iter().filter(|(_, r)| r.is_ok()).count();
    let width = results
        .iter()
        .map(|(file, _)| file.len())
        .max()
        .unwrap_or(0)
        .max("job".len());
    let mut out = String::new();
    let _ = writeln!(out, "{dir}: {passed}/{} jobs passed", results.len());
    let _ = writeln!(out, "  {:width$}  verdict  detail", "job");
    for (file, result) in &results {
        match result {
            Ok(plan) => {
                let detail = plan.report.lines().next().unwrap_or("").to_owned();
                let _ = writeln!(
                    out,
                    "  {file:width$}  {:7}  cache {}; {detail}",
                    "PASS", plan.cache
                );
            }
            Err(message) => {
                let _ = writeln!(out, "  {file:width$}  {:7}  {message}", "FAIL");
            }
        }
    }
    if passed == results.len() {
        Ok(out)
    } else {
        Err(out)
    }
}

fn cmd_shutdown(args: &[String]) -> Result<String, String> {
    let opts = parse_options(args)?;
    if !opts.positional.is_empty() {
        return Err(format!("shutdown takes only flags\n\n{USAGE}"));
    }
    let (addr, mut client) = connect_daemon(&opts)?;
    client.shutdown().map_err(|e| format!("{addr}: {e}"))?;
    Ok(format!("daemon at {addr} is draining\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| (*a).to_owned()).collect()
    }

    /// A per-test scratch directory, unique across concurrently running
    /// test binaries (pid) and across tests within one binary (tag), and
    /// removed when the test ends — tests must not share fixed paths or
    /// leak into the system temp dir.
    struct TestDir(std::path::PathBuf);

    impl TestDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!("copack_cli_{tag}_{}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).unwrap();
            Self(dir)
        }

        fn path(&self, name: &str) -> std::path::PathBuf {
            self.0.join(name)
        }
    }

    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run(&s(&["--help"])).unwrap().contains("USAGE"));
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run(&s(&["frob"])).unwrap_err().contains("unknown command"));
    }

    #[test]
    fn serving_verbs_validate_their_arguments() {
        assert!(run(&s(&["serve", "stray"]))
            .unwrap_err()
            .contains("serve takes only flags"));
        assert!(run(&s(&["submit"]))
            .unwrap_err()
            .contains("submit expects one circuit file"));
        assert!(run(&s(&["batch"]))
            .unwrap_err()
            .contains("batch expects one directory"));
        assert!(run(&s(&["shutdown", "stray"]))
            .unwrap_err()
            .contains("shutdown takes only flags"));

        // A directory without circuits is an error, not an empty table.
        let dir = TestDir::new("empty_batch");
        let err = run(&s(&["batch", dir.0.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("no .copack files"), "error: {err}");

        // Planning-flag validation happens before any connection.
        let circuit = dir.path("c.copack");
        fs::write(&circuit, run(&s(&["gen", "1"])).unwrap()).unwrap();
        let err = run(&s(&[
            "submit",
            circuit.to_str().unwrap(),
            "--method",
            "magic",
        ]))
        .unwrap_err();
        assert!(err.contains("unknown method"), "error: {err}");
    }

    #[test]
    fn gen_emits_a_parsable_circuit() {
        let text = run(&s(&["gen", "2"])).unwrap();
        let (name, q) = copack_io::parse_quadrant(&text).unwrap();
        assert_eq!(name, "circuit2");
        assert_eq!(q.net_count(), 40);
    }

    #[test]
    fn gen_validates_the_index() {
        assert!(run(&s(&["gen", "0"])).is_err());
        assert!(run(&s(&["gen", "9"])).is_err());
        assert!(run(&s(&["gen", "two"])).is_err());
        assert!(run(&s(&["gen"])).is_err());
    }

    #[test]
    fn gen_large_family_emits_a_parsable_circuit() {
        let text = run(&s(&["gen", "--family", "large", "--size", "1k"])).unwrap();
        let (name, q) = parse_quadrant(&text).unwrap();
        assert_eq!(name, "large-1k");
        assert_eq!(q.net_count(), 1_000);
        assert_eq!(q.row_count(), 100);
    }

    #[test]
    fn gen_large_family_is_byte_deterministic() {
        let args = s(&["gen", "--family", "large", "--size", "1k", "--seed", "7"]);
        assert_eq!(run(&args).unwrap(), run(&args).unwrap());
        let other = run(&s(&[
            "gen", "--family", "large", "--size", "1k", "--seed", "8",
        ]))
        .unwrap();
        assert_ne!(run(&args).unwrap(), other);
    }

    #[test]
    fn gen_validates_family_and_size() {
        assert!(run(&s(&["gen", "--family", "huge"])).is_err());
        assert!(run(&s(&["gen", "--family", "large", "--size", "3k"])).is_err());
        assert!(run(&s(&["gen", "--family", "large", "1"])).is_err());
    }

    #[test]
    fn plan_route_ir_round_trip_through_files() {
        let dir = TestDir::new("roundtrip");
        let circuit_path = dir.path("c1.copack");
        let assignment_path = dir.path("c1.order");

        let text = run(&s(&["gen", "1"])).unwrap();
        fs::write(&circuit_path, text).unwrap();

        let out = run(&s(&[
            "plan",
            circuit_path.to_str().unwrap(),
            "--method",
            "dfa",
            "--out",
            assignment_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("dfa"), "{out}");
        assert!(out.contains("max density"));

        let out = run(&s(&[
            "route",
            circuit_path.to_str().unwrap(),
            assignment_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("fingers:"));
        assert!(out.contains("balanced"));

        let out = run(&s(&[
            "ir",
            circuit_path.to_str().unwrap(),
            assignment_path.to_str().unwrap(),
            "--grid",
            "12",
        ]))
        .unwrap();
        assert!(out.contains("mV"), "{out}");
    }

    #[test]
    fn plan_supports_exchange_and_methods() {
        let dir = TestDir::new("methods");
        let circuit_path = dir.path("c1.copack");
        fs::write(&circuit_path, run(&s(&["gen", "1"])).unwrap()).unwrap();
        for method in ["ifa", "random"] {
            let out = run(&s(&[
                "plan",
                circuit_path.to_str().unwrap(),
                "--method",
                method,
            ]))
            .unwrap();
            assert!(out.contains("max density"), "{method}: {out}");
        }
        let out = run(&s(&["plan", circuit_path.to_str().unwrap(), "--exchange"])).unwrap();
        assert!(out.contains("after exchange"), "{out}");
        assert!(run(&s(&[
            "plan",
            circuit_path.to_str().unwrap(),
            "--method",
            "magic"
        ]))
        .is_err());
    }

    #[test]
    fn package_planning_is_thread_count_invariant() {
        let dir = TestDir::new("threads");
        let circuit_path = dir.path("c1.copack");
        fs::write(&circuit_path, run(&s(&["gen", "1"])).unwrap()).unwrap();
        let plan_with = |threads: &str| {
            run(&s(&[
                "plan",
                circuit_path.to_str().unwrap(),
                "--package",
                "--threads",
                threads,
            ]))
            .unwrap()
        };
        let serial = plan_with("1");
        assert!(serial.contains("package plan"), "{serial}");
        assert!(serial.contains("package IR-drop"), "{serial}");
        assert!(serial.contains("order[3]"), "{serial}");
        for threads in ["0", "4"] {
            assert_eq!(serial, plan_with(threads), "--threads {threads}");
        }
    }

    #[test]
    fn portfolio_plans_are_thread_count_invariant() {
        let dir = TestDir::new("portfolio");
        let circuit_path = dir.path("c1.copack");
        fs::write(&circuit_path, run(&s(&["gen", "1"])).unwrap()).unwrap();
        let plan_with = |threads: &str| {
            run(&s(&[
                "plan",
                circuit_path.to_str().unwrap(),
                "--exchange",
                "--starts",
                "4",
                "--threads",
                threads,
            ]))
            .unwrap()
        };
        let serial = plan_with("1");
        assert!(serial.contains("portfolio K=4 winner start "), "{serial}");
        assert!(serial.contains("after exchange"), "{serial}");
        for threads in ["0", "8"] {
            assert_eq!(serial, plan_with(threads), "--threads {threads}");
        }

        // One start takes the plain exchange path: no portfolio line,
        // byte-identical to omitting --starts entirely.
        let single = run(&s(&[
            "plan",
            circuit_path.to_str().unwrap(),
            "--exchange",
            "--starts",
            "1",
        ]))
        .unwrap();
        assert!(!single.contains("portfolio"), "{single}");
        assert_eq!(
            single,
            run(&s(&["plan", circuit_path.to_str().unwrap(), "--exchange"])).unwrap()
        );

        assert!(run(&s(&[
            "plan",
            circuit_path.to_str().unwrap(),
            "--exchange",
            "--starts",
            "0",
        ]))
        .unwrap_err()
        .contains("--starts"));
    }

    #[test]
    fn portfolio_metrics_render_per_start_sparklines() {
        let dir = TestDir::new("portfolio_metrics");
        let circuit_path = dir.path("c1.copack");
        fs::write(&circuit_path, run(&s(&["gen", "1"])).unwrap()).unwrap();
        let out = run(&s(&[
            "plan",
            circuit_path.to_str().unwrap(),
            "--exchange",
            "--starts",
            "3",
            "--metrics",
        ]))
        .unwrap();
        assert!(out.contains("portfolio K=3"), "{out}");
        for start in ["start 0", "start 1", "start 2"] {
            assert!(out.contains(start), "missing {start}: {out}");
        }
    }

    #[test]
    fn telemetry_flags_do_not_change_the_report() {
        let dir = TestDir::new("telemetry");
        let circuit_path = dir.path("c1.copack");
        fs::write(&circuit_path, run(&s(&["gen", "1"])).unwrap()).unwrap();
        let trace_path = dir.path("c1.trace.jsonl");

        let plain = run(&s(&["plan", circuit_path.to_str().unwrap(), "--exchange"])).unwrap();
        let traced = run(&s(&[
            "plan",
            circuit_path.to_str().unwrap(),
            "--exchange",
            "--trace",
            trace_path.to_str().unwrap(),
            "--metrics",
        ]))
        .unwrap();

        // The telemetry block is strictly appended: the report itself is
        // byte-identical.
        assert!(traced.starts_with(&plain), "{traced}");
        assert!(traced.contains("proposed"), "{traced}");
        assert!(traced.contains("acceptance "), "{traced}");

        // The trace file holds one JSON object per line and brackets the
        // exchange with run_start/run_end.
        let text = fs::read_to_string(&trace_path).unwrap();
        assert!(text.lines().count() > 2, "{text}");
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(text.contains(r#""ev":"run_start""#), "{text}");
        assert!(text.contains(r#""ev":"run_end""#), "{text}");
    }

    #[test]
    fn package_metrics_summary_is_thread_count_invariant() {
        let dir = TestDir::new("metrics");
        let circuit_path = dir.path("c1.copack");
        fs::write(&circuit_path, run(&s(&["gen", "1"])).unwrap()).unwrap();
        let plan_with = |threads: &str| {
            run(&s(&[
                "plan",
                circuit_path.to_str().unwrap(),
                "--package",
                "--metrics",
                "--threads",
                threads,
            ]))
            .unwrap()
        };
        let serial = plan_with("1");
        assert!(serial.contains("runs"), "{serial}");
        assert_eq!(serial, plan_with("4"));
    }

    #[test]
    fn unwritable_trace_path_fails_before_the_run() {
        let dir = TestDir::new("badtrace");
        let circuit_path = dir.path("c1.copack");
        fs::write(&circuit_path, run(&s(&["gen", "1"])).unwrap()).unwrap();
        let err = run(&s(&[
            "plan",
            circuit_path.to_str().unwrap(),
            "--trace",
            "/nonexistent-dir-for-copack-cli/t.jsonl",
        ]))
        .unwrap_err();
        assert!(err.contains("cannot open trace file"), "{err}");
        assert!(err.contains("t.jsonl"), "{err}");
    }

    #[test]
    fn missing_files_are_reported() {
        let err = run(&s(&["plan", "/nonexistent/file.copack"])).unwrap_err();
        assert!(err.contains("/nonexistent/file.copack"));
    }

    #[test]
    fn valued_flags_require_values() {
        let err = run(&s(&["gen", "1", "--out"])).unwrap_err();
        assert!(err.contains("needs a value"));
    }

    #[test]
    fn check_prints_an_all_pass_verdict_table() {
        let dir = TestDir::new("check");
        let circuit_path = dir.path("c1.copack");
        fs::write(&circuit_path, run(&s(&["gen", "1"])).unwrap()).unwrap();
        let out = run(&s(&["check", circuit_path.to_str().unwrap()])).unwrap();
        assert!(out.contains("7/7 oracles passed"), "{out}");
        for oracle in copack_verify::ORACLE_NAMES {
            assert!(out.contains(oracle), "{oracle} missing from {out}");
        }
        assert!(!out.contains("FAIL"), "{out}");
        assert!(run(&s(&["check"])).is_err());
        assert!(run(&s(&["check", "/nonexistent/f.copack"])).is_err());
    }

    #[test]
    fn check_emits_oracle_events_into_the_trace() {
        let dir = TestDir::new("checktrace");
        let circuit_path = dir.path("c1.copack");
        fs::write(&circuit_path, run(&s(&["gen", "1"])).unwrap()).unwrap();
        let trace_path = dir.path("check.jsonl");
        let out = run(&s(&[
            "check",
            circuit_path.to_str().unwrap(),
            "--trace",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("7/7"), "{out}");
        let text = fs::read_to_string(&trace_path).unwrap();
        assert_eq!(
            text.matches(r#""ev":"oracle""#).count(),
            copack_verify::ORACLE_NAMES.len(),
            "{text}"
        );
        assert!(text.contains(r#""passed":true"#), "{text}");
    }

    /// Plans circuit 1 into `prev`, returning the written bytes.
    fn plan_previous(dir: &TestDir) -> (std::path::PathBuf, std::path::PathBuf, String) {
        let circuit = dir.path("c1.copack");
        fs::write(&circuit, run(&s(&["gen", "1"])).unwrap()).unwrap();
        let prev = dir.path("c1.order");
        run(&s(&[
            "plan",
            circuit.to_str().unwrap(),
            "--exchange",
            "--out",
            prev.to_str().unwrap(),
        ]))
        .unwrap();
        let prev_bytes = fs::read_to_string(&prev).unwrap();
        (circuit, prev, prev_bytes)
    }

    #[test]
    fn replan_validates_its_arguments() {
        let dir = TestDir::new("replan_args");
        let (circuit, prev, _) = plan_previous(&dir);
        assert!(run(&s(&["replan"]))
            .unwrap_err()
            .contains("replan expects one circuit file"));
        assert!(run(&s(&["replan", circuit.to_str().unwrap()]))
            .unwrap_err()
            .contains("--prev"));
        assert!(run(&s(&[
            "replan",
            circuit.to_str().unwrap(),
            "--prev",
            prev.to_str().unwrap(),
        ]))
        .unwrap_err()
        .contains("--delta"));
    }

    #[test]
    fn replan_reuses_the_previous_plan_bit_for_bit_on_a_clean_delta() {
        let dir = TestDir::new("replan_clean");
        let (circuit, prev, prev_bytes) = plan_previous(&dir);
        let edits = dir.path("noop.edits");
        fs::write(
            &edits,
            copack_io::write_delta("circuit1", &copack_core::InstanceDelta::default()),
        )
        .unwrap();
        let out_path = dir.path("replanned.order");
        let trace_path = dir.path("replan.jsonl");
        let out = run(&s(&[
            "replan",
            circuit.to_str().unwrap(),
            "--prev",
            prev.to_str().unwrap(),
            "--delta",
            edits.to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
            "--trace",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("0/1 quadrants dirty"), "{out}");
        assert!(out.contains("previous plan reused"), "{out}");
        // Bit-for-bit reuse of the previous plan file.
        assert_eq!(fs::read_to_string(&out_path).unwrap(), prev_bytes);
        // The trace proves zero annealing work happened: only the
        // replan bookkeeping, no exchange run events.
        let text = fs::read_to_string(&trace_path).unwrap();
        assert!(text.contains(r#""ev":"replan_start""#), "{text}");
        assert!(text.contains(r#""dirty":0"#), "{text}");
        assert!(text.contains(r#""ev":"quadrant_reused""#), "{text}");
        assert!(text.contains(r#""tier":"previous""#), "{text}");
        assert!(!text.contains(r#""ev":"run_start""#), "{text}");
    }

    #[test]
    fn replan_reanneals_a_dirty_quadrant_deterministically() {
        let dir = TestDir::new("replan_dirty");
        let (circuit, prev, _) = plan_previous(&dir);
        // A standard-churn ECO expressed as a diffed delta file.
        let (_, base) = parse_quadrant(&fs::read_to_string(&circuit).unwrap()).unwrap();
        let churned = copack_gen::churn(&base, 7, copack_gen::STANDARD_CHURN).unwrap();
        let qdelta = copack_core::diff_quadrant(&base, &churned);
        assert!(!qdelta.is_empty());
        let delta = copack_core::InstanceDelta {
            quadrants: vec![("circuit1".to_owned(), qdelta)],
        };
        let edits = dir.path("eco.edits");
        fs::write(&edits, copack_io::write_delta("circuit1", &delta)).unwrap();
        let out_path = dir.path("replanned.order");
        let args = s(&[
            "replan",
            circuit.to_str().unwrap(),
            "--prev",
            prev.to_str().unwrap(),
            "--delta",
            edits.to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
        ]);
        let out = run(&args).unwrap();
        assert!(out.contains("1/1 quadrants dirty"), "{out}");
        assert!(out.contains("after replan (cost "), "{out}");
        // The written assignment is for the *edited* netlist.
        let replanned = load_assignment(out_path.to_str().unwrap()).unwrap();
        assert_eq!(replanned.finger_count(), churned.finger_count());
        // Deterministic: a second run is byte-identical.
        assert_eq!(run(&args).unwrap(), out);
    }

    #[test]
    fn replan_skips_repair_for_a_delta_whose_edits_cancel_out() {
        let dir = TestDir::new("replan_noop");
        let (circuit, prev, prev_bytes) = plan_previous(&dir);
        // A non-empty edit list that lands back on the base netlist:
        // forward churn edits immediately undone by their reverses.
        let (_, base) = parse_quadrant(&fs::read_to_string(&circuit).unwrap()).unwrap();
        let churned = copack_gen::churn(&base, 7, copack_gen::STANDARD_CHURN).unwrap();
        let qdelta = copack_core::cancelling_delta(&base, &churned);
        assert!(!qdelta.is_empty());
        let delta = copack_core::InstanceDelta {
            quadrants: vec![("circuit1".to_owned(), qdelta)],
        };
        let edits = dir.path("noop.edits");
        fs::write(&edits, copack_io::write_delta("circuit1", &delta)).unwrap();
        let out_path = dir.path("replanned.order");
        let trace_path = dir.path("replan.jsonl");
        let out = run(&s(&[
            "replan",
            circuit.to_str().unwrap(),
            "--prev",
            prev.to_str().unwrap(),
            "--delta",
            edits.to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
            "--trace",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("0/1 quadrants dirty"), "{out}");
        assert!(out.contains("previous plan reused"), "{out}");
        assert_eq!(fs::read_to_string(&out_path).unwrap(), prev_bytes);
        let text = fs::read_to_string(&trace_path).unwrap();
        assert!(!text.contains(r#""ev":"run_start""#), "{text}");
    }

    /// The final cost of an `after exchange (cost a -> b)` verb line.
    fn final_cost(out: &str) -> f64 {
        let (_, tail) = out.split_once("after exchange (cost ").unwrap();
        let (_, tail) = tail.split_once("-> ").unwrap();
        let (cost, _) = tail.split_once(')').unwrap();
        cost.trim().parse().unwrap()
    }

    #[test]
    fn a_tuned_profile_never_loses_to_the_default_plan() {
        let dir = TestDir::new("plan_profile");
        let circuit = dir.path("c1.copack");
        fs::write(&circuit, run(&s(&["gen", "1"])).unwrap()).unwrap();
        let profile = dir.path("c1.tune");
        let out = run(&s(&[
            "tune",
            circuit.to_str().unwrap(),
            "--quick",
            "--out",
            profile.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("tuned 1 instances"), "{out}");

        // --profile is an exchange-pass knob.
        let err = run(&s(&[
            "plan",
            circuit.to_str().unwrap(),
            "--profile",
            profile.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("requires --exchange"), "{err}");

        let default = run(&s(&["plan", circuit.to_str().unwrap(), "--exchange"])).unwrap();
        let tuned = run(&s(&[
            "plan",
            circuit.to_str().unwrap(),
            "--exchange",
            "--profile",
            profile.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(tuned.contains("tuned profile applied (class "), "{tuned}");
        // Never-worse guarantee on a family member: the winner carries
        // the default point through the final round, and the default
        // point's portfolio subsumes the single-start run.
        assert!(
            final_cost(&tuned) <= final_cost(&default),
            "tuned {tuned} vs default {default}"
        );
    }

    #[test]
    fn tune_emits_byte_identical_profiles_across_threads_and_reruns() {
        let dir = TestDir::new("tune_threads");
        let circuit = dir.path("c1.copack");
        fs::write(&circuit, run(&s(&["gen", "1"])).unwrap()).unwrap();
        let emit = |tag: &str, threads: &str| {
            let path = dir.path(tag);
            run(&s(&[
                "tune",
                circuit.to_str().unwrap(),
                "--quick",
                "--seed",
                "5",
                "--threads",
                threads,
                "--out",
                path.to_str().unwrap(),
            ]))
            .unwrap();
            fs::read_to_string(&path).unwrap()
        };
        let one = emit("a.tune", "1");
        assert_eq!(one, emit("b.tune", "2"));
        assert_eq!(one, emit("c.tune", "1"));
        // The emitted profile is a valid, loadable `.tune` document.
        copack_io::parse_tune(&one).unwrap();
    }

    #[test]
    fn margin_weight_is_validated_and_changes_the_cost_ledger() {
        let dir = TestDir::new("margin");
        let circuit_path = dir.path("c1.copack");
        fs::write(&circuit_path, run(&s(&["gen", "1"])).unwrap()).unwrap();
        assert!(run(&s(&[
            "plan",
            circuit_path.to_str().unwrap(),
            "--exchange",
            "--margin-weight",
            "-1",
        ]))
        .unwrap_err()
        .contains("--margin-weight"));
        // Weight 0 (default) is byte-identical to omitting the flag.
        let plain = run(&s(&["plan", circuit_path.to_str().unwrap(), "--exchange"])).unwrap();
        let zero = run(&s(&[
            "plan",
            circuit_path.to_str().unwrap(),
            "--exchange",
            "--margin-weight",
            "0",
        ]))
        .unwrap();
        assert_eq!(plain, zero);
        // A non-zero weight changes the annealer's cost surface.
        let weighted = run(&s(&[
            "plan",
            circuit_path.to_str().unwrap(),
            "--exchange",
            "--margin-weight",
            "5.0",
        ]))
        .unwrap();
        assert_ne!(plain, weighted);
    }

    #[test]
    fn fuzz_bounded_by_cases_is_clean_and_deterministic() {
        let a = run(&s(&["fuzz", "--seed", "1", "--cases", "3"])).unwrap();
        assert!(a.contains("3 cases"), "{a}");
        assert!(a.contains("0 violations"), "{a}");
        let b = run(&s(&["fuzz", "--seed", "1", "--cases", "3"])).unwrap();
        assert_eq!(a, b);
        assert!(run(&s(&["fuzz", "extra"])).is_err());
        assert!(run(&s(&["fuzz", "--cases", "zebra"])).is_err());
    }
}
