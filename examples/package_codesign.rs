//! Whole-package co-design: plan all four quadrants, evaluate the true
//! package-level IR-drop and the cut-line congestion, and render the
//! package.
//!
//! Run with `cargo run --release --example package_codesign`.

use copack::core::{plan_package, Codesign};
use copack::gen::circuit;
use copack::power::GridSpec;
use copack::viz::package_svg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let c = circuit(2);
    let package = c.build_package()?;
    println!(
        "package: {} ({} finger/pads over 4 quadrants)",
        c.name,
        package.total_nets()
    );

    let config = Codesign {
        grid: GridSpec::default_chip(32),
        ..Codesign::default()
    };
    let report = plan_package(&package, &config)?;

    println!("\nper-side routing after exchange:");
    for (side, routing) in copack::geom::QuadrantSide::ALL.iter().zip(&report.routing) {
        println!("  {side:>6}: {routing}");
    }
    println!("worst side density: {}", report.max_density());

    if let (Some(b), Some(a)) = (report.ir_before, report.ir_after) {
        println!(
            "\npackage IR-drop: {:.3} mV -> {:.3} mV",
            b * 1000.0,
            a * 1000.0
        );
    }

    println!("\ncut-line congestion (shared between adjacent quadrants):");
    for (k, load) in report.cutlines.boundaries.iter().enumerate() {
        println!("  boundary {k}: {load}");
    }
    println!("worst cut-line: {}", report.cutlines.max());

    let svg = package_svg(&package, &report.assignments)?;
    std::fs::write("target/package_codesign.svg", svg)?;
    println!("\npackage view -> target/package_codesign.svg");
    Ok(())
}
