//! IR-drop design-space sweep: how pad count, pad plan and hotspots shape
//! the core's worst-case supply noise.
//!
//! Sweeps the finite-difference model (paper ref. [17], Eq. 1) over pad
//! budgets and pad plans — the trade-off a chip-package co-designer
//! explores before committing to a pad ring.
//!
//! Run with `cargo run --release --example irdrop_sweep`.

use copack::power::{solve_sor, GridSpec, Hotspot, PadRing, PadSpacingProxy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = GridSpec {
        current_density: 4.6e-7,
        ..GridSpec::default_chip(48)
    };

    println!("pad-budget sweep (uniform ring, 48x48 grid):");
    println!("{:>6} {:>14}", "pads", "max drop (mV)");
    for pads in [2usize, 4, 8, 16, 32, 64] {
        let map = solve_sor(&grid, &PadRing::uniform(pads))?;
        println!("{pads:>6} {:>14.2}", map.max_drop() * 1000.0);
    }

    println!("\npad-plan sweep (12 pads):");
    let plans: [(&str, Vec<f64>); 4] = [
        (
            "uniform",
            (0..12).map(|i| (f64::from(i) + 0.5) / 12.0).collect(),
        ),
        (
            "two sides only",
            (0..12).map(|i| (f64::from(i) + 0.5) / 24.0).collect(),
        ),
        ("one corner", (0..12).map(|i| f64::from(i) * 0.02).collect()),
        (
            "paired",
            (0..12)
                .map(|i| (f64::from(i / 2) + 0.5) / 6.0 + f64::from(i % 2) * 0.01)
                .collect(),
        ),
    ];
    println!("{:>16} {:>14} {:>12}", "plan", "max drop (mV)", "delta_IR");
    for (name, ts) in plans {
        let proxy = PadSpacingProxy::new(&ts)?.delta_ir();
        let map = solve_sor(&grid, &PadRing::from_ts(ts)?)?;
        println!("{name:>16} {:>14.2} {proxy:>12.5}", map.max_drop() * 1000.0);
    }

    println!("\nhotspot sweep (12 uniform pads, one hotspot of growing intensity):");
    println!("{:>12} {:>14}", "multiplier", "max drop (mV)");
    for mult in [1.0, 2.0, 4.0, 8.0] {
        let spec = GridSpec {
            hotspots: vec![Hotspot {
                cx: 0.5,
                cy: 0.5,
                radius: 0.2,
                multiplier: mult,
            }],
            ..grid.clone()
        };
        let map = solve_sor(&spec, &PadRing::uniform(12))?;
        println!("{mult:>12.1} {:>14.2}", map.max_drop() * 1000.0);
    }

    println!("\nThe delta_IR proxy column tracks the solved drops — that agreement is");
    println!("what lets the exchange step anneal on the proxy instead of Eq. 1.");
    Ok(())
}
