//! Quickstart: plan a small quadrant end to end.
//!
//! Builds the paper's Fig. 5 instance, runs all three assignment methods,
//! routes them, and then runs the IR-drop-aware exchange on the DFA order.
//!
//! Run with `cargo run --release --example quickstart`.

use copack::core::{assign, AssignMethod, Codesign, ExchangeConfig, Schedule};
use copack::geom::{NetKind, Quadrant};
use copack::power::GridSpec;
use copack::route::{analyze, DensityModel};
use copack::viz::routing_ascii;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The 12-net quadrant of the paper's Fig. 5, with three power pads and
    // a ground pad so the IR-drop machinery has something to chew on.
    let quadrant = Quadrant::builder()
        .row([10u32, 2, 4, 7, 0]) // y = 1 (bottom, farthest from the die)
        .row([1u32, 3, 5, 8]) // y = 2
        .row([11u32, 6, 9]) // y = 3 (highest line)
        .net_kind(10u32, NetKind::Power)
        .net_kind(5u32, NetKind::Power)
        .net_kind(9u32, NetKind::Power)
        .net_kind(0u32, NetKind::Ground)
        .build()?;

    println!("=== step 1: congestion-driven assignment ===");
    for method in [
        AssignMethod::Random { seed: 42 },
        AssignMethod::Ifa,
        AssignMethod::dfa_default(),
    ] {
        let assignment = assign(&quadrant, method)?;
        let report = analyze(&quadrant, &assignment, DensityModel::Geometric)?;
        println!("{method:>16}: order {assignment}");
        println!("{:>16}  {report}", "");
    }

    println!("\n=== step 2: finger/pad exchange on the DFA order ===");
    let flow = Codesign {
        grid: GridSpec::default_chip(24),
        exchange: ExchangeConfig {
            schedule: Schedule {
                moves_per_temp_per_finger: 4,
                ..Schedule::default()
            },
            ..ExchangeConfig::default()
        },
        ..Codesign::default()
    };
    let report = flow.run(&quadrant)?;
    println!("before: {}", report.routing_before);
    println!("after : {}", report.routing_after);
    if let (Some(b), Some(a)) = (report.ir_before, report.ir_after) {
        println!(
            "IR-drop: {:.3} mV -> {:.3} mV ({:+.2}% improvement)",
            b * 1000.0,
            a * 1000.0,
            report.ir_improvement_percent.unwrap_or(0.0)
        );
    }
    println!(
        "\nfinal plan:\n{}",
        routing_ascii(&quadrant, &report.final_assignment)?
    );
    Ok(())
}
