//! Routing gallery: render every Table 1 circuit under every assignment
//! method to SVG, plus terminal density histograms.
//!
//! Writes `target/gallery_<circuit>_<method>.svg` for all fifteen
//! combinations — a quick visual regression gallery for the router and
//! the assignment algorithms.
//!
//! Run with `cargo run --release --example routing_gallery`.

use std::fs;

use copack::core::{assign, AssignMethod};
use copack::gen::circuits;
use copack::route::{analyze, DensityModel};
use copack::viz::{density_histogram, routing_svg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let methods = [
        ("random", AssignMethod::Random { seed: 11 }),
        ("ifa", AssignMethod::Ifa),
        ("dfa", AssignMethod::dfa_default()),
    ];
    for circuit in circuits() {
        let quadrant = circuit.build_quadrant()?;
        println!(
            "== {} ({} nets/quadrant) ==",
            circuit.name,
            quadrant.net_count()
        );
        for (name, method) in methods {
            let assignment = assign(&quadrant, method)?;
            let report = analyze(&quadrant, &assignment, DensityModel::Geometric)?;
            let slug = circuit.name.replace(' ', "");
            let path = format!("target/gallery_{slug}_{name}.svg");
            fs::write(&path, routing_svg(&quadrant, &assignment)?)?;
            println!(
                "  {name:<7} density {:>2} (interior {:>2})  wl {:>8.2} um  -> {path}",
                report.max_density, report.max_density_interior, report.total_wirelength
            );
        }
        // A terminal histogram for the DFA plan of the smallest circuit.
        if circuit.finger_count == 96 {
            let dfa = assign(&quadrant, AssignMethod::dfa_default())?;
            println!("\n  DFA per-line densities:");
            for line in density_histogram(&quadrant, &dfa, DensityModel::Geometric)?.lines() {
                println!("  {line}");
            }
            println!();
        }
    }
    Ok(())
}
