//! Wire-bond vs flip-chip IR-drop (the paper's §2.4 claim, quantified).
//!
//! The paper adopts wire-bond packaging for cost and notes its IR-drop is
//! worse than flip-chip's, "because the distance from the power pad to the
//! module in a flip-chip package is shorter". This example sweeps pad
//! budgets and measures the gap on the same die and power grid.
//!
//! Run with `cargo run --release --example flipchip_vs_wirebond`.

use copack::power::{solve_plan, GridSpec, Hotspot, PadArray, PadPlan, PadRing, Solver};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = GridSpec {
        current_density: 4.6e-7,
        ..GridSpec::default_chip(48)
    };

    println!("wire-bond (boundary ring) vs flip-chip (area array), 48x48 grid");
    println!(
        "{:>6} {:>18} {:>18} {:>8}",
        "pads", "wire-bond (mV)", "flip-chip (mV)", "ratio"
    );
    for side in [2usize, 3, 4, 6, 8] {
        let pads = side * side;
        let wb = solve_plan(
            &grid,
            &PadPlan::WireBond(PadRing::uniform(pads)),
            Solver::Sor,
        )?;
        let fc = solve_plan(
            &grid,
            &PadPlan::FlipChip(PadArray::new(side, side)?),
            Solver::Sor,
        )?;
        println!(
            "{pads:>6} {:>18.2} {:>18.2} {:>8.2}",
            wb.max_drop() * 1000.0,
            fc.max_drop() * 1000.0,
            wb.max_drop() / fc.max_drop()
        );
    }

    println!("\nsame comparison over a hotspot (3x power in the die centre):");
    let hot = GridSpec {
        hotspots: vec![Hotspot {
            cx: 0.5,
            cy: 0.5,
            radius: 0.2,
            multiplier: 3.0,
        }],
        ..grid.clone()
    };
    let wb = solve_plan(&hot, &PadPlan::WireBond(PadRing::uniform(16)), Solver::Sor)?;
    let fc = solve_plan(&hot, &PadPlan::FlipChip(PadArray::new(4, 4)?), Solver::Sor)?;
    println!(
        "  16 pads: wire-bond {:.2} mV, flip-chip {:.2} mV (ratio {:.2})",
        wb.max_drop() * 1000.0,
        fc.max_drop() * 1000.0,
        wb.max_drop() / fc.max_drop()
    );
    println!(
        "\nFlip-chip wins at every budget — §2.4's rationale for why wire-bond\n\
         designs (the paper's setting) need IR-drop-aware pad planning at all."
    );
    Ok(())
}
