//! Stacking-IC co-design: plan a four-tier SiP-style design.
//!
//! Builds circuit 3 of the paper's Table 1 as a ψ = 4 stacking IC, runs
//! the two-step flow, and reports the bonding-wire and IR-drop effects of
//! the exchange step (the scenario of the paper's Table 3, right half).
//!
//! Run with `cargo run --release --example stacking_codesign`.

use copack::core::{total_bondwire, Codesign};
use copack::gen::circuit;
use copack::power::GridSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stacked = circuit(3).stacked(4);
    let quadrant = stacked.build_quadrant()?;
    let stack = stacked.stack()?;

    println!(
        "design: {} ({} nets/quadrant, psi = {})",
        stacked.name,
        quadrant.net_count(),
        stack.tiers
    );

    let flow = Codesign {
        stack,
        grid: GridSpec::default_chip(32),
        ..Codesign::default()
    };
    let report = flow.run(&quadrant)?;

    println!("\nrouting:");
    println!("  after DFA     : {}", report.routing_before);
    println!("  after exchange: {}", report.routing_after);

    println!("\nbonding wires:");
    println!(
        "  omega (zero-bit count): {} -> {}  ({:+.2}% of capacity reclaimed)",
        report.omega_before,
        report.omega_after,
        report.omega_improvement_percent.unwrap_or(0.0)
    );
    let before = total_bondwire(&quadrant, &report.initial, &stack)?;
    let after = total_bondwire(&quadrant, &report.final_assignment, &stack)?;
    println!(
        "  physical length       : {before:.2} um -> {after:.2} um ({:+.2}%)",
        report.bondwire_improvement_percent()
    );

    if let (Some(b), Some(a)) = (report.ir_before, report.ir_after) {
        println!(
            "\nIR-drop: {:.3} mV -> {:.3} mV ({:+.2}%)",
            b * 1000.0,
            a * 1000.0,
            report.ir_improvement_percent.unwrap_or(0.0)
        );
    }

    println!(
        "\nannealer: {} proposed, {} accepted ({} uphill), {} blocked by the range constraint",
        report.exchange.proposed,
        report.exchange.accepted,
        report.exchange.uphill_accepted,
        report.exchange.constraint_rejected
    );
    Ok(())
}
