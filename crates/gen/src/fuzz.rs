//! Seeded random problem instances for the differential fuzz driver.
//!
//! `copack-verify` needs an endless deterministic stream of *small but
//! adversarial* quadrants: mixed electrical compositions, skewed row
//! profiles, stacked tiers, and the two adversarial constructions
//! ([`crate::clustered_supply`], [`crate::blocked_tiers`]). Everything is
//! derived from a single `u64` seed through SplitMix64, so a failing case
//! is fully described by `(driver seed, case index)`.

use copack_geom::{GeomError, Quadrant};

use crate::{Circuit, NetMix, RowProfile};

/// SplitMix64: tiny, high-quality, and stable across platforms — the same
/// stream for the same seed, forever. Used instead of `rand` so reproducer
/// seeds stay valid even if the vendored RNG stub changes.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform value in `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One generated fuzz instance: a quadrant plus the stacking depth the
/// oracles should verify it under.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Short deterministic label (`"netmix"`, `"clustered"`, …).
    pub variant: &'static str,
    /// The quadrant under test.
    pub quadrant: Quadrant,
    /// Stacking tiers ψ the instance was built for (1 = planar).
    pub tiers: u8,
    /// The circuit seed the instance's shuffles used.
    pub circuit_seed: u64,
}

/// Deterministically generates the fuzz instance for `(seed, index)`.
///
/// Instances are deliberately small (8–32 nets, 1–4 rows) so each oracle
/// run is cheap and shrunk reproducers start close to minimal. The variant
/// wheel cycles through plain netmix circuits, skewed row profiles,
/// stacked tiers, clustered supply pads, and blocked tier regions.
///
/// # Errors
///
/// Propagates [`GeomError`] if a sampled parameter combination cannot
/// build (not expected for the sampled ranges; surfaced rather than
/// panicking so the driver can report it as a generator bug).
pub fn fuzz_case(seed: u64, index: u64) -> Result<FuzzCase, GeomError> {
    let mut rng = SplitMix64::new(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // Burn a few values so nearby seeds decorrelate.
    rng.next_u64();
    rng.next_u64();

    let nets_per_quadrant = rng.range(8, 32) as usize;
    let rows = rng.range(1, 4.min(nets_per_quadrant as u64)) as usize;
    let profile = match rng.below(3) {
        0 => RowProfile::Step2,
        1 => RowProfile::Step1,
        _ => RowProfile::Equal,
    };
    let mix = NetMix {
        power_fraction: 0.05 + 0.4 * rng.unit(),
        ground_fraction: 0.25 * rng.unit(),
    };
    let circuit_seed = rng.next_u64();
    let variant_pick = rng.below(5);
    let tiers = if variant_pick == 2 || variant_pick == 4 {
        rng.range(2, 3) as u8
    } else {
        1
    };

    let base = Circuit {
        name: format!("fuzz-{seed:x}-{index}"),
        finger_count: nets_per_quadrant * 4,
        ball_pitch: 1.2,
        finger_width: 0.006,
        finger_height: 0.2,
        finger_space: 0.007,
        rows,
        profile,
        mix,
        tiers,
        seed: circuit_seed,
    };

    let (variant, quadrant) = match variant_pick {
        0 | 2 => ("netmix", base.build_quadrant()?),
        1 => ("skewed-rows", base.build_quadrant()?),
        3 => ("clustered", crate::clustered_supply(&base)?),
        _ => ("blocked-tiers", crate::blocked_tiers(&base, tiers)?),
    };
    Ok(FuzzCase {
        variant,
        quadrant,
        tiers,
        circuit_seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_geom::NetKind;

    #[test]
    fn splitmix_is_stable() {
        // Reference values of the published SplitMix64 algorithm; if these
        // change, checked-in reproducer seeds stop meaning anything.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
    }

    #[test]
    fn cases_are_deterministic() {
        let a = fuzz_case(1, 7).unwrap();
        let b = fuzz_case(1, 7).unwrap();
        assert_eq!(a.quadrant, b.quadrant);
        assert_eq!(a.variant, b.variant);
        assert_eq!(a.tiers, b.tiers);
    }

    #[test]
    fn cases_vary_with_seed_and_index() {
        let base = fuzz_case(1, 0).unwrap();
        let differs = (1..16u64).any(|i| fuzz_case(1, i).unwrap().quadrant != base.quadrant);
        assert!(differs, "all indices produced the same quadrant");
        let differs = (2..18u64).any(|s| fuzz_case(s, 0).unwrap().quadrant != base.quadrant);
        assert!(differs, "all seeds produced the same quadrant");
    }

    #[test]
    fn cases_stay_small_and_buildable() {
        for i in 0..64 {
            let case = fuzz_case(42, i).unwrap();
            let n = case.quadrant.net_count();
            assert!((8..=32).contains(&n), "case {i}: {n} nets");
            assert!(case.quadrant.row_count() <= 4);
            assert!(case.tiers >= 1);
        }
    }

    #[test]
    fn the_wheel_reaches_every_variant() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..64 {
            seen.insert(fuzz_case(7, i).unwrap().variant);
        }
        for v in ["netmix", "skewed-rows", "clustered", "blocked-tiers"] {
            assert!(seen.contains(v), "variant {v} never generated");
        }
    }

    #[test]
    fn most_cases_have_power_pads() {
        // The IR oracles need supply pads; the mix floor keeps them common.
        let with_power = (0..32)
            .filter(|&i| {
                let q = fuzz_case(3, i).unwrap().quadrant;
                let has_power = q.nets_of_kind(NetKind::Power).next().is_some();
                has_power
            })
            .count();
        assert!(with_power >= 24, "only {with_power}/32 cases had power");
    }
}
