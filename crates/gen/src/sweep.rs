//! Parameter sweeps for scaling studies beyond the paper's five circuits.

use crate::{Circuit, NetMix};

/// A sweep over total finger/pad counts at circuit-3 geometry, for scaling
/// benchmarks (the paper's complexity claims: IFA `O(n²)`, DFA `O(n)`).
///
/// Counts are rounded up to multiples of 4 (one package = 4 quadrants) and
/// to at least 16 (each quadrant needs one ball per row).
#[must_use]
pub fn finger_count_sweep(counts: &[usize]) -> Vec<Circuit> {
    counts
        .iter()
        .map(|&raw| {
            let fingers = raw.next_multiple_of(4).max(16);
            Circuit {
                name: format!("sweep-{fingers}"),
                finger_count: fingers,
                ball_pitch: 1.2,
                finger_width: 0.006,
                finger_height: 0.2,
                finger_space: 0.007,
                rows: 4,
                mix: NetMix::default(),
                profile: crate::RowProfile::default(),
                tiers: 1,
                seed: 0xA110 + fingers as u64,
            }
        })
        .collect()
}

/// A sweep over ball-grid depth (rows per quadrant) at a fixed net count —
/// the regime where DFA's whole-grid view beats IFA's two-line look-ahead
/// (the paper's Fig. 13 argument).
#[must_use]
pub fn row_depth_sweep(fingers: usize, depths: &[usize]) -> Vec<Circuit> {
    depths
        .iter()
        .map(|&rows| Circuit {
            name: format!("depth-{rows}"),
            finger_count: fingers,
            ball_pitch: 1.2,
            finger_width: 0.006,
            finger_height: 0.2,
            finger_space: 0.007,
            rows,
            mix: NetMix::default(),
            profile: crate::RowProfile::default(),
            tiers: 1,
            seed: 0xDEE9 + rows as u64,
        })
        .collect()
}

/// The auto-tuner's standard circuit family: the five Table 1 circuits
/// plus stacked (ψ = 3) and deep-grid variants, so the family spans
/// several instance classes (net-count buckets, tier counts, row
/// depths) instead of collapsing into one.
///
/// Deterministic — no seed parameter — because the family's identity is
/// part of a tuning run's reproducibility contract: `copack tune` over
/// "table1" must mean the same instances on every machine.
#[must_use]
pub fn tune_family() -> Vec<Circuit> {
    let mut family = crate::circuits();
    family.push(crate::circuit(2).stacked(3));
    family.push(crate::circuit(4).stacked(3));
    family.extend(row_depth_sweep(96, &[6]));
    family
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finger_sweep_rounds_and_builds() {
        let sweep = finger_count_sweep(&[10, 100, 250]);
        assert_eq!(
            sweep.iter().map(|c| c.finger_count).collect::<Vec<_>>(),
            vec![16, 100, 252]
        );
        for c in &sweep {
            assert!(c.build_quadrant().is_ok(), "{}", c.name);
        }
    }

    #[test]
    fn depth_sweep_varies_rows() {
        let sweep = row_depth_sweep(96, &[2, 4, 6]);
        for (c, &rows) in sweep.iter().zip(&[2usize, 4, 6]) {
            assert_eq!(c.rows, rows);
            let q = c.build_quadrant().unwrap();
            assert_eq!(q.row_count(), rows);
            assert_eq!(q.net_count(), 24);
        }
    }

    #[test]
    fn tune_family_spans_multiple_classes() {
        let family = tune_family();
        assert_eq!(family.len(), 8);
        let mut shapes = std::collections::HashSet::new();
        for c in &family {
            let q = c.build_quadrant().unwrap();
            shapes.insert((q.net_count(), q.row_count(), c.tiers));
        }
        assert!(shapes.len() >= 5, "{shapes:?}");
        // Deterministic identity: two calls agree exactly.
        let again = tune_family();
        assert_eq!(
            family.iter().map(|c| &c.name).collect::<Vec<_>>(),
            again.iter().map(|c| &c.name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sweep_seeds_are_distinct() {
        let sweep = finger_count_sweep(&[20, 40, 60]);
        let seeds: std::collections::HashSet<u64> = sweep.iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), 3);
    }
}
