//! Adversarial workloads: stress instances for the planning algorithms.
//!
//! The Table 1 circuits are benign (shuffled placements, balanced tiers);
//! these generators produce the configurations each algorithm is *worst*
//! at, for robustness testing and for measuring how much head-room the
//! exchange step has.

use copack_geom::{GeomError, NetKind, Quadrant, TierId};

use crate::{row_sizes, Circuit};

/// A circuit whose supply pads are all clustered on consecutive balls of
/// the bottom row — the worst starting point for the IR-drop exchange
/// (maximally uneven pad spacing after any congestion-driven assignment).
///
/// # Errors
///
/// Propagates [`GeomError`] from quadrant construction.
pub fn clustered_supply(base: &Circuit) -> Result<Quadrant, GeomError> {
    let q_nets = base.nets_per_quadrant();
    let sizes = row_sizes(q_nets, base.rows);
    let supply = ((q_nets as f64) * base.mix.power_fraction).round() as usize;
    let mut builder = Quadrant::builder().geometry(base.geometry());
    let mut id = 0u32;
    for &size in &sizes {
        let row: Vec<u32> = (0..size)
            .map(|_| {
                id += 1;
                id
            })
            .collect();
        builder = builder.row(row);
    }
    // Power pads on the first `supply` balls of the bottom row, ground on
    // the next `supply`.
    for n in 1..=supply as u32 {
        builder = builder.net_kind(n, NetKind::Power);
    }
    for n in supply as u32 + 1..=(2 * supply) as u32 {
        builder = builder.net_kind(n, NetKind::Ground);
    }
    builder.build()
}

/// A ψ-tier circuit whose tiers come in contiguous blocks (all tier-1 nets
/// first, then all tier-2, …) — the worst case for the bonding-wire metric
/// ω, where the exchange step has the most to reclaim.
///
/// # Errors
///
/// Propagates [`GeomError`] from quadrant construction.
pub fn blocked_tiers(base: &Circuit, tiers: u8) -> Result<Quadrant, GeomError> {
    let q_nets = base.nets_per_quadrant();
    let sizes = row_sizes(q_nets, base.rows);
    let mut builder = Quadrant::builder().geometry(base.geometry());
    let mut id = 0u32;
    for &size in &sizes {
        let row: Vec<u32> = (0..size)
            .map(|_| {
                id += 1;
                id
            })
            .collect();
        builder = builder.row(row);
    }
    let per_tier = q_nets.div_ceil(tiers as usize);
    for n in 1..=q_nets as u32 {
        let tier = ((n as usize - 1) / per_tier) as u8 + 1;
        builder = builder.net_tier(n, TierId::new(tier.min(tiers)));
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit;
    use copack_geom::NetKind;

    #[test]
    fn clustered_supply_puts_pads_on_the_bottom_row() {
        let q = clustered_supply(&circuit(1)).unwrap();
        let bottom: Vec<_> = q.row(copack_geom::RowIdx::new(1)).to_vec();
        let power: Vec<_> = q.nets_of_kind(NetKind::Power).collect();
        assert!(!power.is_empty());
        for p in &power {
            assert!(bottom.contains(p), "{p} not on the bottom row");
        }
    }

    #[test]
    fn clustered_supply_is_worse_for_ir_than_the_shuffled_mix() {
        use copack_core::{assign, evaluate_ir, AssignMethod};
        use copack_power::GridSpec;
        let base = circuit(1);
        let shuffled = base.build_quadrant().unwrap();
        let clustered = clustered_supply(&base).unwrap();
        let grid = GridSpec::default_chip(16);
        let ir = |q: &Quadrant| {
            let a = assign(q, AssignMethod::dfa_default()).unwrap();
            evaluate_ir(q, &a, &grid).unwrap().unwrap()
        };
        assert!(
            ir(&clustered) > ir(&shuffled),
            "clustered pads must start with worse IR-drop"
        );
    }

    #[test]
    fn blocked_tiers_maximise_omega() {
        use copack_core::omega_of_assignment;
        use copack_geom::Assignment;
        let base = circuit(1);
        let blocked = blocked_tiers(&base, 4).unwrap();
        // Under the identity finger order, blocked tiers put whole groups
        // on a single tier: omega hits its maximum, groups x (psi - 1).
        let identity = Assignment::from_order(1..=24u32);
        let om = omega_of_assignment(&blocked, &identity, 4).unwrap();
        // Every group is single-tier except the ≤ tiers−1 groups straddling
        // a block boundary: omega ≥ groups·(psi−1) − (tiers−1).
        assert!(om >= 6 * 3 - 3, "omega {om}");
        // The balanced deal of the standard generator scores far less.
        let balanced = base.stacked(4).build_quadrant().unwrap();
        let om_balanced = omega_of_assignment(&balanced, &identity, 4).unwrap();
        assert!(om_balanced < om);
    }

    #[test]
    fn ifa_is_near_perfect_on_two_level_grids() {
        // Paper §3.1.2: "If IFA is applied to a two-level BGA package, the
        // routing result is very good." On 2-row equal grids IFA's density
        // must match DFA's (both near the balanced optimum).
        use copack_core::{dfa, ifa};
        use copack_route::{balanced_density_map, density_map, DensityModel};
        for seed in 0..5u64 {
            let c = Circuit {
                name: format!("two-level-{seed}"),
                finger_count: 96,
                ball_pitch: 1.2,
                finger_width: 0.02,
                finger_height: 0.2,
                finger_space: 0.02,
                rows: 2,
                mix: crate::NetMix {
                    power_fraction: 0.0,
                    ground_fraction: 0.0,
                },
                profile: crate::RowProfile::Equal,
                tiers: 1,
                seed,
            };
            let q = c.build_quadrant().unwrap();
            let ifa_d = density_map(&q, &ifa(&q).unwrap(), DensityModel::Geometric)
                .unwrap()
                .max_density();
            let dfa_d = density_map(&q, &dfa(&q, 1).unwrap(), DensityModel::Geometric)
                .unwrap()
                .max_density();
            assert!(
                ifa_d <= dfa_d + 1,
                "seed {seed}: ifa {ifa_d} vs dfa {dfa_d}"
            );
            // And IFA sits within 1 of the balanced optimum of its own order.
            let bal = balanced_density_map(&q, &ifa(&q).unwrap())
                .unwrap()
                .max_density();
            assert!(
                ifa_d <= bal + 1,
                "seed {seed}: ifa {ifa_d} vs optimum {bal}"
            );
        }
    }

    #[test]
    fn adversarial_instances_stay_plannable() {
        use copack_core::{assign, AssignMethod};
        use copack_route::is_monotonic;
        let base = circuit(2);
        for q in [
            clustered_supply(&base).unwrap(),
            blocked_tiers(&base, 4).unwrap(),
        ] {
            for method in [AssignMethod::Ifa, AssignMethod::dfa_default()] {
                let a = assign(&q, method).unwrap();
                assert!(is_monotonic(&q, &a));
            }
        }
    }
}
