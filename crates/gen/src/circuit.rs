//! Circuit specifications and instance construction.

use copack_geom::{GeomError, NetKind, Package, Quadrant, QuadrantGeometry, StackConfig, TierId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::{row_sizes_with, NetMix, RowProfile};

/// A synthetic test circuit: Table 1's published parameters plus the
/// deterministic fill-ins described in the crate docs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    /// Human-readable name (e.g. `"circuit 3"`).
    pub name: String,
    /// Total finger/pad count over all four quadrants (Table 1 col. 2).
    pub finger_count: usize,
    /// Bump-ball pitch in µm (Table 1 col. 3, "bump ball space").
    pub ball_pitch: f64,
    /// Finger width in µm (Table 1 col. 4).
    pub finger_width: f64,
    /// Finger height in µm (Table 1 col. 5).
    pub finger_height: f64,
    /// Finger spacing in µm (Table 1 col. 6).
    pub finger_space: f64,
    /// Ball rows per quadrant (§4 fixes this at 4).
    pub rows: usize,
    /// How the ball rows are sized (default: the step-2 triangle).
    #[serde(default)]
    pub profile: RowProfile,
    /// Electrical mix of the pad ring.
    pub mix: NetMix,
    /// Number of stacking tiers ψ (1 = 2-D).
    pub tiers: u8,
    /// Seed for net placement / kind / tier shuffles.
    pub seed: u64,
}

impl Circuit {
    /// Nets per quadrant (total count / 4).
    #[must_use]
    pub fn nets_per_quadrant(&self) -> usize {
        self.finger_count / 4
    }

    /// The quadrant geometry implied by the Table 1 parameters (via and
    /// ball diameters are the §4 constants 0.1 µm / 0.2 µm).
    ///
    /// Table 1's finger space is the **minimal** spacing; the fingers of a
    /// quadrant are spread to span the ball grid (as in all the paper's
    /// figures), so the effective pitch is the larger of the minimal pitch
    /// and `grid width / finger count`.
    #[must_use]
    pub fn geometry(&self) -> QuadrantGeometry {
        let q_nets = self.nets_per_quadrant();
        let bottom_row = row_sizes_with(q_nets, self.rows, self.profile)[0];
        let grid_width = bottom_row as f64 * self.ball_pitch;
        let min_pitch = self.finger_width + self.finger_space;
        QuadrantGeometry {
            ball_pitch: self.ball_pitch,
            finger_pitch: min_pitch.max(grid_width / q_nets as f64),
            finger_width: self.finger_width,
            finger_height: self.finger_height,
            via_diameter: 0.1,
            ball_diameter: 0.2,
        }
    }

    /// The stack configuration implied by [`Circuit::tiers`].
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidStack`] for a zero tier count.
    pub fn stack(&self) -> Result<StackConfig, GeomError> {
        if self.tiers <= 1 {
            Ok(StackConfig::planar())
        } else {
            StackConfig::stacked(self.tiers)
        }
    }

    /// Returns a copy configured as a ψ-tier stacking IC (same netlist,
    /// tiers dealt evenly through a seeded shuffle).
    #[must_use]
    pub fn stacked(&self, tiers: u8) -> Self {
        Self {
            name: format!("{} (psi={tiers})", self.name),
            tiers,
            ..self.clone()
        }
    }

    /// Builds one quadrant of the circuit.
    ///
    /// The construction is deterministic in [`Circuit::seed`]: ball rows
    /// are sized by [`crate::row_sizes_with`], net ids `1..=Q` are shuffled onto the
    /// balls, kinds come from the mix (shuffled), and tiers are dealt
    /// round-robin over a third shuffle.
    ///
    /// # Errors
    ///
    /// Propagates [`GeomError`] from the quadrant builder (e.g. for
    /// degenerate Table 1 geometry).
    pub fn build_quadrant(&self) -> Result<Quadrant, GeomError> {
        let q_nets = self.nets_per_quadrant();
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);

        // Which net sits on which ball.
        let mut ids: Vec<u32> = (1..=q_nets as u32).collect();
        ids.shuffle(&mut rng);

        // Which nets are supply pads.
        let mut kinds = self.mix.kinds(q_nets);
        kinds.shuffle(&mut rng);

        // Which tier each net's die pad is on (balanced deal).
        let mut tier_deal: Vec<u8> = (0..q_nets)
            .map(|i| (i % self.tiers as usize) as u8 + 1)
            .collect();
        tier_deal.shuffle(&mut rng);

        let sizes = row_sizes_with(q_nets, self.rows, self.profile);
        let mut builder = Quadrant::builder().geometry(self.geometry());
        let mut cursor = 0;
        for &size in &sizes {
            builder = builder.row(ids[cursor..cursor + size].iter().copied());
            cursor += size;
        }
        for (i, &id) in ids.iter().enumerate() {
            if kinds[i] != NetKind::Signal {
                builder = builder.net_kind(id, kinds[i]);
            }
            if self.tiers > 1 {
                builder = builder.net_tier(id, TierId::new(tier_deal[i]));
            }
        }
        builder.build()
    }

    /// Builds the full four-quadrant package (all sides share the quadrant,
    /// like the paper's symmetric test circuits).
    ///
    /// # Errors
    ///
    /// Propagates [`GeomError`] from quadrant construction.
    pub fn build_package(&self) -> Result<Package, GeomError> {
        Ok(Package::uniform(self.build_quadrant()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_geom::NetKind;

    fn sample() -> Circuit {
        Circuit {
            name: "sample".into(),
            finger_count: 96,
            ball_pitch: 2.0,
            finger_width: 0.025,
            finger_height: 0.4,
            finger_space: 0.025,
            rows: 4,
            mix: NetMix::default(),
            profile: RowProfile::default(),
            tiers: 1,
            seed: 1,
        }
    }

    #[test]
    fn quadrant_matches_spec() {
        let c = sample();
        let q = c.build_quadrant().unwrap();
        assert_eq!(q.net_count(), 24);
        assert_eq!(q.row_count(), 4);
        assert_eq!(q.finger_count(), 24);
        assert_eq!(q.geometry().ball_pitch, 2.0);
        // Fingers spread over the 9-ball bottom row: 18 µm / 24 fingers.
        assert!((q.geometry().finger_pitch - 0.75).abs() < 1e-12);
    }

    #[test]
    fn construction_is_deterministic() {
        let c = sample();
        assert_eq!(c.build_quadrant().unwrap(), c.build_quadrant().unwrap());
        let other = Circuit {
            seed: 2,
            ..sample()
        };
        assert_ne!(c.build_quadrant().unwrap(), other.build_quadrant().unwrap());
    }

    #[test]
    fn mix_produces_supply_pads() {
        let q = sample().build_quadrant().unwrap();
        let power = q.nets_of_kind(NetKind::Power).count();
        let ground = q.nets_of_kind(NetKind::Ground).count();
        assert_eq!(power, 4); // 15% of 24, rounded
        assert_eq!(ground, 4);
    }

    #[test]
    fn stacked_copy_deals_tiers_evenly() {
        let c = sample().stacked(4);
        assert_eq!(c.tiers, 4);
        let q = c.build_quadrant().unwrap();
        let mut per_tier = [0usize; 4];
        for net in q.nets() {
            per_tier[(net.tier.get() - 1) as usize] += 1;
        }
        assert_eq!(per_tier, [6, 6, 6, 6]);
        assert!(c.stack().unwrap().is_stacking());
    }

    #[test]
    fn planar_circuit_keeps_base_tier() {
        let q = sample().build_quadrant().unwrap();
        assert!(q.nets().all(|n| n.tier == TierId::BASE));
        assert!(!sample().stack().unwrap().is_stacking());
    }

    #[test]
    fn package_replicates_quadrant() {
        let p = sample().build_package().unwrap();
        assert_eq!(p.total_nets(), 96);
    }
}
