//! Synthetic test-circuit and workload generation.
//!
//! The paper evaluates on "five simplified industrial circuits" whose only
//! published properties are the Table 1 parameters (finger/pad count, bump
//! ball space, finger width/height/space) plus the fixed experimental setup
//! (§4: four horizontal lines of bump balls per package side, four
//! independently planned quadrants). Those circuits are proprietary, so
//! this crate generates synthetic equivalents that match **every published
//! parameter exactly** and fill in the rest deterministically from a seed:
//!
//! * the per-quadrant ball grid is a 4-row trapezoid (wider rows at the
//!   bottom, like the paper's figures);
//! * net-to-ball placement is a seeded shuffle (which net lands on which
//!   ball is part of the problem instance, not of the algorithm);
//! * a configurable fraction of nets are power/ground pads;
//! * for stacking experiments, tiers are dealt round-robin through a seeded
//!   shuffle so every tier gets an equal share.
//!
//! Only these quantities enter the paper's algorithms, so the synthetic
//! circuits exercise exactly the same code paths as the originals (see the
//! substitution table in `DESIGN.md`).
//!
//! # Example
//!
//! ```
//! use copack_gen::circuits;
//!
//! let all = circuits();
//! assert_eq!(all.len(), 5);
//! assert_eq!(all[0].finger_count, 96); // Table 1, circuit 1
//! let q = all[2].build_quadrant().unwrap();
//! assert_eq!(q.net_count(), 208 / 4);
//! assert_eq!(q.row_count(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversarial;
mod churn;
mod circuit;
mod fuzz;
mod large;
mod netmix;
mod rows;
mod sweep;
mod table1;

pub use adversarial::{blocked_tiers, clustered_supply};
pub use churn::{churn, STANDARD_CHURN};
pub use circuit::Circuit;
pub use fuzz::{fuzz_case, FuzzCase, SplitMix64};
pub use large::{large_circuit, large_circuits, large_fuzz_case, LargeSpec, LARGE_SIZES};
pub use netmix::NetMix;
pub use rows::{row_sizes, row_sizes_with, RowProfile};
pub use sweep::{finger_count_sweep, row_depth_sweep, tune_family};
pub use table1::{circuit, circuits};
