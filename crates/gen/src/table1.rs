//! The five test circuits of the paper's Table 1.

use crate::{Circuit, NetMix};

/// Base RNG seed; circuit `i` uses `BASE_SEED + i` so instances differ but
/// every run of the harness sees identical circuits.
const BASE_SEED: u64 = 0x5EED_2009;

/// The five circuits of Table 1, with every published parameter verbatim.
///
/// | circuit | finger/pads | ball space | finger w | finger h | finger s |
/// |---|---|---|---|---|---|
/// | 1 | 96  | 2.0 | 0.025 | 0.4 | 0.025 |
/// | 2 | 160 | 1.4 | 0.006 | 0.3 | 0.1   |
/// | 3 | 208 | 1.2 | 0.006 | 0.2 | 0.007 |
/// | 4 | 352 | 1.2 | 0.1   | 0.2 | 0.12  |
/// | 5 | 448 | 1.2 | 0.1   | 0.2 | 0.12  |
#[must_use]
pub fn circuits() -> Vec<Circuit> {
    let rows = [
        ("circuit 1", 96, 2.0, 0.025, 0.4, 0.025),
        ("circuit 2", 160, 1.4, 0.006, 0.3, 0.1),
        ("circuit 3", 208, 1.2, 0.006, 0.2, 0.007),
        ("circuit 4", 352, 1.2, 0.1, 0.2, 0.12),
        ("circuit 5", 448, 1.2, 0.1, 0.2, 0.12),
    ];
    rows.iter()
        .enumerate()
        .map(|(i, &(name, fingers, pitch, fw, fh, fs))| Circuit {
            name: name.to_owned(),
            finger_count: fingers,
            ball_pitch: pitch,
            finger_width: fw,
            finger_height: fh,
            finger_space: fs,
            rows: 4,
            mix: NetMix::default(),
            profile: crate::RowProfile::default(),
            tiers: 1,
            seed: BASE_SEED + i as u64,
        })
        .collect()
}

/// Table 1 circuit by 1-based index.
///
/// # Panics
///
/// Panics unless `1 ≤ index ≤ 5`.
#[must_use]
pub fn circuit(index: usize) -> Circuit {
    assert!((1..=5).contains(&index), "Table 1 has circuits 1..=5");
    circuits().swap_remove(index - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_published_parameters_match_table1() {
        let all = circuits();
        let expected = [
            (96, 2.0, 0.025, 0.4, 0.025),
            (160, 1.4, 0.006, 0.3, 0.1),
            (208, 1.2, 0.006, 0.2, 0.007),
            (352, 1.2, 0.1, 0.2, 0.12),
            (448, 1.2, 0.1, 0.2, 0.12),
        ];
        for (c, &(fingers, pitch, fw, fh, fs)) in all.iter().zip(&expected) {
            assert_eq!(c.finger_count, fingers);
            assert_eq!(c.ball_pitch, pitch);
            assert_eq!(c.finger_width, fw);
            assert_eq!(c.finger_height, fh);
            assert_eq!(c.finger_space, fs);
            assert_eq!(c.rows, 4);
            assert_eq!(c.tiers, 1);
        }
    }

    #[test]
    fn every_circuit_builds() {
        for c in circuits() {
            let q = c.build_quadrant().unwrap();
            assert_eq!(q.net_count() * 4, c.finger_count);
        }
    }

    #[test]
    fn circuit_lookup_is_one_based() {
        assert_eq!(circuit(1).finger_count, 96);
        assert_eq!(circuit(5).finger_count, 448);
    }

    #[test]
    #[should_panic(expected = "1..=5")]
    fn circuit_zero_panics() {
        let _ = circuit(0);
    }

    #[test]
    fn seeds_differ_between_circuits() {
        let all = circuits();
        let seeds: std::collections::HashSet<u64> = all.iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), 5);
    }
}
