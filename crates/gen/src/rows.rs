//! Ball-row size partitioning.

use serde::{Deserialize, Serialize};

/// How ball rows are sized across a quadrant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RowProfile {
    /// +2 balls per row towards the package edge: the 45° diagonal cut of
    /// a uniform grid (the Table 1 circuits; the default).
    #[default]
    Step2,
    /// +1 ball per row: the gentler profile of the paper's Fig. 5 toy.
    Step1,
    /// Equal rows: the "two-level BGA" regime IFA was designed for.
    Equal,
}

/// [`row_sizes`] under an explicit [`RowProfile`]. Falls back to smaller
/// steps when `nets` cannot support the requested one.
///
/// # Panics
///
/// Panics if `rows` is zero or `nets < rows`.
#[must_use]
pub fn row_sizes_with(nets: usize, rows: usize, profile: RowProfile) -> Vec<usize> {
    assert!(rows > 0, "need at least one row");
    assert!(nets >= rows, "need at least one ball per row");
    let tri = rows * (rows - 1) / 2;
    let wanted = match profile {
        RowProfile::Step2 => 2,
        RowProfile::Step1 => 1,
        RowProfile::Equal => 0,
    };
    let step = (0..=wanted)
        .rev()
        .find(|s| nets >= rows + s * tri)
        .expect("step 0 always fits");
    let base = (nets - step * tri) / rows;
    let mut remainder = nets - step * tri - base * rows;
    let mut sizes: Vec<usize> = (0..rows).map(|r| base + step * (rows - 1 - r)).collect();
    let mut r = 0;
    while remainder > 0 {
        sizes[r] += 1;
        remainder -= 1;
        r = (r + 1) % rows;
    }
    debug_assert_eq!(sizes.iter().sum::<usize>(), nets);
    sizes
}

/// Splits `nets` balls over `rows` rows as a 45°-triangle cut of a uniform
/// ball grid: each row towards the package edge has **two more balls** than
/// the row above it (one on each flank), the arithmetic profile produced
/// by the diagonal quadrant cut of the paper's Fig. 2. This profile also
/// back-predicts the paper's Table 2 DFA densities for all five circuits
/// (see EXPERIMENTS.md).
///
/// Returned bottom-up (`result[0]` = row `y = 1`, the widest). Remainders
/// that do not fit the exact arithmetic profile go to the bottom-most rows;
/// when `nets` is too small for the step-2 profile the step degrades
/// gracefully (down to equal rows) so every row keeps at least one ball.
///
/// # Panics
///
/// Panics if `rows` is zero or `nets < rows`.
#[must_use]
pub fn row_sizes(nets: usize, rows: usize) -> Vec<usize> {
    row_sizes_with(nets, rows, RowProfile::Step2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_sum_to_net_count() {
        for nets in [4, 7, 24, 40, 52, 88, 112] {
            let sizes = row_sizes(nets, 4);
            assert_eq!(sizes.iter().sum::<usize>(), nets, "{nets}");
            assert_eq!(sizes.len(), 4);
        }
    }

    #[test]
    fn table1_circuits_follow_the_step2_triangle() {
        // Per-quadrant counts of the five Table 1 circuits.
        assert_eq!(row_sizes(24, 4), vec![9, 7, 5, 3]);
        assert_eq!(row_sizes(40, 4), vec![13, 11, 9, 7]);
        assert_eq!(row_sizes(52, 4), vec![16, 14, 12, 10]);
        assert_eq!(row_sizes(88, 4), vec![25, 23, 21, 19]);
        assert_eq!(row_sizes(112, 4), vec![31, 29, 27, 25]);
    }

    #[test]
    fn profiles_shape_the_rows() {
        assert_eq!(row_sizes_with(12, 3, RowProfile::Step1), vec![5, 4, 3]);
        assert_eq!(row_sizes_with(12, 3, RowProfile::Equal), vec![4, 4, 4]);
        assert_eq!(row_sizes_with(24, 4, RowProfile::Equal), vec![6, 6, 6, 6]);
        // Too few nets for step 2 degrades to step 1, then equal.
        assert_eq!(row_sizes_with(7, 3, RowProfile::Step2), vec![4, 2, 1]);
        assert_eq!(RowProfile::default(), RowProfile::Step2);
    }

    #[test]
    fn twelve_nets_over_three_rows_follow_the_triangle() {
        // Step-2 profile (the Fig. 5 toy uses a gentler +1 profile, but the
        // diagonal cut of a uniform grid grows by one ball per flank).
        assert_eq!(row_sizes(12, 3), vec![6, 4, 2]);
    }

    #[test]
    fn bottom_rows_are_at_least_as_wide() {
        for nets in [8, 24, 40, 88, 112, 7, 9] {
            let sizes = row_sizes(nets, 4);
            for w in sizes.windows(2) {
                assert!(w[0] >= w[1], "{sizes:?}");
            }
        }
    }

    #[test]
    fn every_row_is_nonempty_even_when_tight() {
        for nets in 4..=30 {
            let sizes = row_sizes(nets, 4);
            assert!(sizes.iter().all(|&s| s > 0), "nets={nets}: {sizes:?}");
            assert_eq!(sizes.iter().sum::<usize>(), nets);
        }
    }

    #[test]
    fn single_row_takes_everything() {
        assert_eq!(row_sizes(9, 1), vec![9]);
    }

    #[test]
    #[should_panic(expected = "one ball per row")]
    fn too_few_nets_panics() {
        let _ = row_sizes(2, 4);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_rows_panics() {
        let _ = row_sizes(4, 0);
    }
}
