//! Electrical net-kind mixes.

use serde::{Deserialize, Serialize};

use copack_geom::NetKind;

/// The fraction of supply nets in a generated circuit.
///
/// Industrial pad rings dedicate a substantial share of pads to power
/// delivery; the default (15% power, 15% ground) is a typical wire-bond
/// budget and can be overridden per circuit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetMix {
    /// Fraction of nets that are Vdd pads, in `[0, 1]`.
    pub power_fraction: f64,
    /// Fraction of nets that are ground pads, in `[0, 1]`.
    pub ground_fraction: f64,
}

impl NetMix {
    /// Validates the fractions.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.power_fraction.is_finite()
            && self.ground_fraction.is_finite()
            && self.power_fraction >= 0.0
            && self.ground_fraction >= 0.0
            && self.power_fraction + self.ground_fraction <= 1.0
    }

    /// Expands the mix into a kind per net for `n` nets: the first
    /// `⌈n·power⌉` are power, the next `⌈n·ground⌉` ground, the rest
    /// signal. (Callers shuffle net *placement*, so position here carries
    /// no bias.)
    #[must_use]
    pub fn kinds(&self, n: usize) -> Vec<NetKind> {
        let p = ((n as f64) * self.power_fraction).round() as usize;
        let g = ((n as f64) * self.ground_fraction).round() as usize;
        let mut kinds = Vec::with_capacity(n);
        kinds.extend(std::iter::repeat(NetKind::Power).take(p.min(n)));
        kinds.extend(std::iter::repeat(NetKind::Ground).take(g.min(n - p.min(n))));
        while kinds.len() < n {
            kinds.push(NetKind::Signal);
        }
        kinds
    }
}

impl Default for NetMix {
    fn default() -> Self {
        Self {
            power_fraction: 0.15,
            ground_fraction: 0.15,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mix_is_valid() {
        assert!(NetMix::default().is_valid());
    }

    #[test]
    fn kinds_counts_match_fractions() {
        let mix = NetMix {
            power_fraction: 0.25,
            ground_fraction: 0.25,
        };
        let kinds = mix.kinds(24);
        assert_eq!(kinds.len(), 24);
        assert_eq!(kinds.iter().filter(|&&k| k == NetKind::Power).count(), 6);
        assert_eq!(kinds.iter().filter(|&&k| k == NetKind::Ground).count(), 6);
        assert_eq!(kinds.iter().filter(|&&k| k == NetKind::Signal).count(), 12);
    }

    #[test]
    fn all_signal_mix_is_possible() {
        let mix = NetMix {
            power_fraction: 0.0,
            ground_fraction: 0.0,
        };
        assert!(mix.kinds(5).iter().all(|&k| k == NetKind::Signal));
    }

    #[test]
    fn saturated_mix_never_overflows() {
        let mix = NetMix {
            power_fraction: 0.7,
            ground_fraction: 0.5,
        };
        assert!(!mix.is_valid());
        // Even an invalid mix must not panic or overflow in kinds().
        assert_eq!(mix.kinds(10).len(), 10);
    }

    #[test]
    fn invalid_fractions_are_caught() {
        for bad in [
            NetMix {
                power_fraction: -0.1,
                ground_fraction: 0.1,
            },
            NetMix {
                power_fraction: f64::NAN,
                ground_fraction: 0.1,
            },
        ] {
            assert!(!bad.is_valid());
        }
    }
}
