//! Seeded ECO churn: deterministic small edits against an existing
//! quadrant, the workload generator of the `copack replan` path.
//!
//! A churned quadrant stands in for "the netlist changed a little": a
//! fraction of the nets are added, removed, retyped or (for stacked
//! instances) moved across tiers, everything else untouched. The fuzz
//! driver diffs base vs churned through `copack-core`'s delta layer and
//! feeds both to the `replan_vs_scratch` oracle; the quality-regression
//! suite uses the fixed 10 % fraction as the standard replan workload.
//!
//! This module is pure geometry — it returns the edited [`Quadrant`]
//! and leaves computing the [`copack_core`-level] delta to the caller,
//! keeping `copack-gen` free of a core dependency.

use copack_geom::{GeomError, NetId, NetKind, Quadrant, TierId};

use crate::SplitMix64;

/// The standard churn fraction of the replan quality rows: 10 % of the
/// nets see an edit.
pub const STANDARD_CHURN: f64 = 0.10;

/// Applies `max(1, round(fraction · net_count))` seeded edits to a copy
/// of `base` and rebuilds it.
///
/// Edit classes, chosen per edit from the seed stream: **add** a fresh
/// net (id = current max + 1) at a random row position, **remove** a
/// random net (never below 2 nets or 1 row), **retype** a random net to
/// the next electrical kind, and — when the base uses stacking tiers —
/// **retier** a random net within the base's tier range. An explicit
/// finger count is preserved while it still fits, so sparse quadrants
/// stay sparse.
///
/// Deterministic: the same `(base, seed, fraction)` always yields the
/// same quadrant.
///
/// # Errors
///
/// Propagates [`GeomError`] if the edited model fails to rebuild (not
/// expected — every edit preserves the builder's invariants).
pub fn churn(base: &Quadrant, seed: u64, fraction: f64) -> Result<Quadrant, GeomError> {
    let mut rng = SplitMix64::new(seed ^ 0xC0DE_C0DE_5EED_5EED);
    rng.next_u64();

    let mut rows: Vec<Vec<NetId>> = base.rows_bottom_up().map(|(_, r)| r.to_vec()).collect();
    let mut kinds: Vec<(NetId, NetKind)> = Vec::new();
    let mut tiers: Vec<(NetId, TierId)> = Vec::new();
    for net in base.nets() {
        if net.kind != NetKind::Signal {
            kinds.push((net.id, net.kind));
        }
        if net.tier != TierId::BASE {
            tiers.push((net.id, net.tier));
        }
    }
    let max_tier = base.nets().map(|n| n.tier.get()).max().unwrap_or(1);
    let mut next_id = base.nets().map(|n| n.id.raw()).max().unwrap_or(0) + 1;

    let edits = ((base.net_count() as f64 * fraction).round() as u64).max(1);
    for _ in 0..edits {
        let net_count: usize = rows.iter().map(Vec::len).sum();
        let op = rng.below(4);
        match op {
            // Add a fresh signal net somewhere.
            0 => {
                let r = rng.below(rows.len() as u64) as usize;
                let at = rng.below(rows[r].len() as u64 + 1) as usize;
                rows[r].insert(at, NetId::new(next_id));
                next_id += 1;
            }
            // Remove a random net (keep the instance meaningful).
            1 if net_count > 2 => {
                let victim = pick_net(&rows, &mut rng);
                for row in &mut rows {
                    if let Some(i) = row.iter().position(|&n| n == victim) {
                        row.remove(i);
                        break;
                    }
                }
                if rows.len() > 1 {
                    rows.retain(|r| !r.is_empty());
                }
                kinds.retain(|(n, _)| *n != victim);
                tiers.retain(|(n, _)| *n != victim);
            }
            // Retier within the base's tier range (stacked bases only).
            3 if max_tier > 1 => {
                let net = pick_net(&rows, &mut rng);
                let tier = TierId::new(rng.range(1, u64::from(max_tier)) as u8);
                tiers.retain(|(n, _)| *n != net);
                if tier != TierId::BASE {
                    tiers.push((net, tier));
                }
            }
            // Retype: cycle the net's electrical kind.
            _ => {
                let net = pick_net(&rows, &mut rng);
                let old = kinds
                    .iter()
                    .find(|(n, _)| *n == net)
                    .map_or(NetKind::Signal, |(_, k)| *k);
                let new = match old {
                    NetKind::Signal => NetKind::Power,
                    NetKind::Power => NetKind::Ground,
                    NetKind::Ground => NetKind::Signal,
                };
                kinds.retain(|(n, _)| *n != net);
                if new != NetKind::Signal {
                    kinds.push((net, new));
                }
            }
        }
    }

    let net_count: usize = rows.iter().map(Vec::len).sum();
    let mut builder = Quadrant::builder().geometry(*base.geometry());
    for row in rows {
        builder = builder.row(row);
    }
    if base.finger_count() != base.net_count() && base.finger_count() >= net_count {
        builder = builder.fingers(base.finger_count());
    }
    for (net, kind) in kinds {
        builder = builder.net_kind(net, kind);
    }
    for (net, tier) in tiers {
        builder = builder.net_tier(net, tier);
    }
    builder.build()
}

/// Picks a uniformly random net id from the row structure.
fn pick_net(rows: &[Vec<NetId>], rng: &mut SplitMix64) -> NetId {
    let total: usize = rows.iter().map(Vec::len).sum();
    let mut k = rng.below(total as u64) as usize;
    for row in rows {
        if k < row.len() {
            return row[k];
        }
        k -= row.len();
    }
    unreachable!("pick index within total net count")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit;

    fn base() -> Quadrant {
        circuit(3).build_quadrant().unwrap()
    }

    #[test]
    fn churn_is_deterministic() {
        let q = base();
        let a = churn(&q, 9, STANDARD_CHURN).unwrap();
        let b = churn(&q, 9, STANDARD_CHURN).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn churn_actually_changes_the_quadrant() {
        let q = base();
        let changed = (0..8u64)
            .filter(|&s| churn(&q, s, STANDARD_CHURN).unwrap() != q)
            .count();
        assert!(changed >= 7, "only {changed}/8 seeds changed the instance");
    }

    #[test]
    fn churn_scales_with_the_fraction() {
        let q = base();
        let light = churn(&q, 4, 0.02).unwrap();
        let heavy = churn(&q, 4, 0.5).unwrap();
        let delta = |e: &Quadrant| (e.net_count() as i64 - q.net_count() as i64).unsigned_abs();
        // Heavier churn may add/remove many more nets; at minimum it
        // must touch the instance at least as much structurally.
        assert!(delta(&heavy) >= delta(&light));
    }

    #[test]
    fn churned_quadrants_always_rebuild() {
        for (i, c) in crate::circuits().iter().enumerate() {
            let q = c.build_quadrant().unwrap();
            for seed in 0..16u64 {
                let e = churn(&q, seed, STANDARD_CHURN)
                    .unwrap_or_else(|err| panic!("circuit {i} seed {seed}: {err}"));
                assert!(e.net_count() >= 2);
                assert!(e.finger_count() >= e.net_count());
            }
        }
    }

    #[test]
    fn sparse_finger_counts_survive_churn() {
        let mut b = Quadrant::builder();
        for r in [[1u32, 2, 3].as_slice(), &[4, 5], &[6]] {
            b = b.row(r.iter().copied());
        }
        let q = b.fingers(10).build().unwrap();
        let e = churn(&q, 2, STANDARD_CHURN).unwrap();
        assert_eq!(e.finger_count(), 10);
    }

    #[test]
    fn stacked_bases_get_retier_edits_eventually() {
        let mut c = circuit(2);
        c.tiers = 3;
        let q = c.build_quadrant().unwrap();
        let any_retier = (0..32u64).any(|s| {
            let e = churn(&q, s, 0.3).unwrap();
            // A retier shows up as a tier difference on a surviving net.
            q.nets()
                .any(|n| e.net(n.id).is_some_and(|m| m.tier != n.tier))
        });
        assert!(any_retier, "no retier edit in 32 seeds");
    }
}
