//! Industrial-scale instance family.
//!
//! The five Table 1 circuits top out at 112 nets, where a full anneal
//! finishes in microseconds and thread spawn/barrier overhead dominates —
//! parallel speedups are unmeasurable at that scale. Real chip-package
//! co-design instances run to thousands of nets and deep bond stacks; this
//! module generates deterministic synthetic instances in that regime
//! (1k–10k nets per quadrant, hundreds of ball rows, ψ up to 8) so the
//! benches can observe the threads-win crossover and the dense-index
//! kernels have something to chew on.
//!
//! Unlike [`crate::Circuit`], which shuffles through the vendored `rand`
//! stub, the large family drives every shuffle from [`SplitMix64`]
//! directly: a `(family, size, seed)` triple names the same bytes on every
//! platform, forever — the property the determinism benches and the
//! `copack gen --family large` round-trip tests pin.

use copack_geom::{GeomError, NetKind, Package, Quadrant, QuadrantGeometry, StackConfig, TierId};

use crate::{row_sizes_with, NetMix, RowProfile, SplitMix64};

/// Specification of one industrial-scale instance.
///
/// The geometry parameters mirror the densest Table 1 circuit (circuit 5)
/// so the large instances are "more of the same physics", not a different
/// package technology.
#[derive(Debug, Clone, PartialEq)]
pub struct LargeSpec {
    /// Human-readable name (e.g. `"large-4k"`).
    pub name: String,
    /// Nets (= fingers = balls) per quadrant.
    pub nets_per_quadrant: usize,
    /// Ball rows per quadrant.
    pub rows: usize,
    /// Stacking tiers ψ (1 = planar; the presets go up to 8).
    pub tiers: u8,
    /// Electrical mix of the pad ring.
    pub mix: NetMix,
    /// Seed for the placement / kind / tier shuffles.
    pub seed: u64,
}

/// Fisher–Yates driven by [`SplitMix64`] — the platform-stable shuffle the
/// whole family is built on.
fn shuffle<T>(v: &mut [T], rng: &mut SplitMix64) {
    for i in (1..v.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        v.swap(i, j);
    }
}

impl LargeSpec {
    /// The quadrant geometry: circuit 5's finger/ball dimensions with the
    /// finger row spread over the (much wider) bottom ball row.
    #[must_use]
    pub fn geometry(&self) -> QuadrantGeometry {
        let bottom_row = row_sizes_with(self.nets_per_quadrant, self.rows, RowProfile::Equal)[0];
        let ball_pitch = 0.5_f64;
        let finger_width = 0.015_f64;
        let finger_space = 0.015_f64;
        let grid_width = bottom_row as f64 * ball_pitch;
        let min_pitch = finger_width + finger_space;
        QuadrantGeometry {
            ball_pitch,
            finger_pitch: min_pitch.max(grid_width / self.nets_per_quadrant as f64),
            finger_width,
            finger_height: 0.3,
            via_diameter: 0.1,
            ball_diameter: 0.2,
        }
    }

    /// The stack configuration implied by [`LargeSpec::tiers`].
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidStack`] for a zero tier count.
    pub fn stack(&self) -> Result<StackConfig, GeomError> {
        if self.tiers <= 1 {
            Ok(StackConfig::planar())
        } else {
            StackConfig::stacked(self.tiers)
        }
    }

    /// Builds one quadrant, deterministically in [`LargeSpec::seed`].
    ///
    /// The construction mirrors [`crate::Circuit::build_quadrant`] — net
    /// ids `1..=Q` shuffled onto balls, kinds from the mix, tiers dealt
    /// round-robin — but every shuffle runs on [`SplitMix64`], so the
    /// result is byte-stable across platforms and RNG-stub changes.
    ///
    /// # Errors
    ///
    /// Propagates [`GeomError`] from the quadrant builder.
    pub fn build_quadrant(&self) -> Result<Quadrant, GeomError> {
        let q_nets = self.nets_per_quadrant;
        let mut rng = SplitMix64::new(self.seed);
        // Decorrelate nearby seeds, as the fuzz generator does.
        rng.next_u64();
        rng.next_u64();

        let mut ids: Vec<u32> = (1..=q_nets as u32).collect();
        shuffle(&mut ids, &mut rng);

        let mut kinds = self.mix.kinds(q_nets);
        shuffle(&mut kinds, &mut rng);

        let mut tier_deal: Vec<u8> = (0..q_nets)
            .map(|i| (i % self.tiers as usize) as u8 + 1)
            .collect();
        shuffle(&mut tier_deal, &mut rng);

        let sizes = row_sizes_with(q_nets, self.rows, RowProfile::Equal);
        let mut builder = Quadrant::builder().geometry(self.geometry());
        let mut cursor = 0;
        for &size in &sizes {
            builder = builder.row(ids[cursor..cursor + size].iter().copied());
            cursor += size;
        }
        for (i, &id) in ids.iter().enumerate() {
            if kinds[i] != NetKind::Signal {
                builder = builder.net_kind(id, kinds[i]);
            }
            if self.tiers > 1 {
                builder = builder.net_tier(id, TierId::new(tier_deal[i]));
            }
        }
        builder.build()
    }

    /// Builds the full four-quadrant package.
    ///
    /// # Errors
    ///
    /// Propagates [`GeomError`] from quadrant construction.
    pub fn build_package(&self) -> Result<Package, GeomError> {
        Ok(Package::uniform(self.build_quadrant()?))
    }
}

/// The named preset sizes of the large family, smallest first.
pub const LARGE_SIZES: [&str; 3] = ["1k", "4k", "10k"];

/// The large-family preset named `size` (one of [`LARGE_SIZES`]), or
/// `None` for an unknown name.
///
/// * `1k` — 1 000 nets/quadrant, 100 ball rows, ψ = 2: the smallest size
///   where the threads-win crossover is reliably measurable.
/// * `4k` — 4 000 nets/quadrant, 200 rows, ψ = 4: the bench workhorse.
/// * `10k` — 10 000 nets/quadrant, 400 rows, ψ = 8: the ceiling of the
///   paper's "industrial" regime.
#[must_use]
pub fn large_circuit(size: &str, seed: u64) -> Option<LargeSpec> {
    let (nets, rows, tiers) = match size {
        "1k" => (1_000, 100, 2),
        "4k" => (4_000, 200, 4),
        "10k" => (10_000, 400, 8),
        _ => return None,
    };
    Some(LargeSpec {
        name: format!("large-{size}"),
        nets_per_quadrant: nets,
        rows,
        tiers,
        // A realistic wire-bond supply budget: 12% + 12%.
        mix: NetMix {
            power_fraction: 0.12,
            ground_fraction: 0.12,
        },
        seed,
    })
}

/// All large presets at `seed`, smallest first.
#[must_use]
pub fn large_circuits(seed: u64) -> Vec<LargeSpec> {
    LARGE_SIZES
        .iter()
        .map(|s| large_circuit(s, seed).expect("preset name"))
        .collect()
}

/// A reduced-size member of the large family for the fuzz driver: the same
/// equal-row SplitMix64 construction at 64–160 nets, 8–16 rows, and the
/// full ψ wheel (1/2/4/8), so the differential oracles exercise the
/// large-instance code paths without large-instance runtimes.
///
/// # Errors
///
/// Propagates [`GeomError`] if the sampled combination cannot build
/// (not expected; surfaced so the driver reports it as a generator bug).
pub fn large_fuzz_case(seed: u64, index: u64) -> Result<crate::FuzzCase, GeomError> {
    let mut rng = SplitMix64::new(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    rng.next_u64();
    rng.next_u64();

    let nets = rng.range(64, 160) as usize;
    let rows = rng.range(8, 16) as usize;
    let tiers = [1u8, 2, 4, 8][rng.below(4) as usize];
    let mix = NetMix {
        power_fraction: 0.08 + 0.1 * rng.unit(),
        ground_fraction: 0.08 + 0.1 * rng.unit(),
    };
    let circuit_seed = rng.next_u64();
    let spec = LargeSpec {
        name: format!("large-fuzz-{seed:x}-{index}"),
        nets_per_quadrant: nets,
        rows,
        tiers,
        mix,
        seed: circuit_seed,
    };
    Ok(crate::FuzzCase {
        variant: "large",
        quadrant: spec.build_quadrant()?,
        tiers,
        circuit_seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_and_match_their_size() {
        for (size, nets) in [("1k", 1_000usize), ("4k", 4_000)] {
            let spec = large_circuit(size, 7).unwrap();
            let q = spec.build_quadrant().unwrap();
            assert_eq!(q.net_count(), nets, "{size}");
            assert_eq!(q.row_count(), spec.rows);
            assert!(spec.stack().unwrap().is_stacking());
        }
        assert!(large_circuit("3k", 7).is_none());
    }

    #[test]
    fn all_sizes_are_constructible_specs() {
        assert_eq!(large_circuits(1).len(), LARGE_SIZES.len());
        let big = large_circuit("10k", 1).unwrap();
        assert_eq!(big.nets_per_quadrant, 10_000);
        assert_eq!(big.tiers, 8);
    }

    #[test]
    fn construction_is_deterministic_and_seed_sensitive() {
        let a = large_circuit("1k", 11).unwrap().build_quadrant().unwrap();
        let b = large_circuit("1k", 11).unwrap().build_quadrant().unwrap();
        assert_eq!(a, b);
        let c = large_circuit("1k", 12).unwrap().build_quadrant().unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn mix_lands_supply_pads_on_every_preset() {
        let q = large_circuit("1k", 3).unwrap().build_quadrant().unwrap();
        let power = q.nets_of_kind(NetKind::Power).count();
        let ground = q.nets_of_kind(NetKind::Ground).count();
        assert_eq!(power, 120);
        assert_eq!(ground, 120);
    }

    #[test]
    fn tiers_are_dealt_evenly() {
        let spec = large_circuit("1k", 5).unwrap();
        let q = spec.build_quadrant().unwrap();
        let mut per_tier = vec![0usize; spec.tiers as usize];
        for net in q.nets() {
            per_tier[(net.tier.get() - 1) as usize] += 1;
        }
        assert!(per_tier.iter().all(|&c| c == 500), "{per_tier:?}");
    }

    #[test]
    fn fuzz_cases_stay_reduced_and_deterministic() {
        for i in 0..16 {
            let case = large_fuzz_case(42, i).unwrap();
            let n = case.quadrant.net_count();
            assert!((64..=160).contains(&n), "case {i}: {n} nets");
            assert!((8..=16).contains(&case.quadrant.row_count()));
            assert!([1, 2, 4, 8].contains(&case.tiers));
            assert_eq!(case.variant, "large");
        }
        assert_eq!(
            large_fuzz_case(9, 3).unwrap().quadrant,
            large_fuzz_case(9, 3).unwrap().quadrant
        );
    }

    #[test]
    fn splitmix_shuffle_is_pinned() {
        // The family's byte-stability rests on this exact permutation; if
        // it changes, `--family large` outputs silently fork from every
        // checked-in hash and reproducer.
        let mut v: Vec<u32> = (0..8).collect();
        let mut rng = SplitMix64::new(99);
        shuffle(&mut v, &mut rng);
        assert_eq!(v, [6, 4, 5, 0, 2, 1, 7, 3]);
    }
}
