//! Cheap early signals for auto-tuning, extracted from trace prefixes.
//!
//! `copack tune` runs each trial configuration twice: first under a
//! **prefix schedule** (the first few temperature steps only — see
//! `Schedule::prefix` in `copack-core`), then, if the trial survives the
//! cut, under the full schedule. The prefix run is an exact prefix of
//! the full run, so whatever it shows — how fast acceptance collapses,
//! how steeply the best cost falls, how many portfolio starts were
//! pruned — is a true observation of the real trajectory, not of a
//! perturbed one. [`early_signals`] condenses a prefix trace into those
//! observations; the tuner ranks trials on them and only pays full-run
//! cost for the promising ones.

use crate::event::Event;
use crate::summary::{acceptance_curve, replay_final_cost, split_runs};

/// The condensed early view of one (possibly multi-start) trial trace.
#[derive(Debug, Clone, PartialEq)]
pub struct EarlySignals {
    /// Mean acceptance fraction per temperature step, elementwise
    /// across the trace's runs, truncated to the shortest run — the
    /// early acceptance-rate trajectory.
    pub acceptance: Vec<f64>,
    /// Mean relative best-cost slope per temperature step across runs:
    /// `(best − initial) / (|initial| · steps)`, so more-negative means
    /// the anneal is finding improvement faster. Zero for traces with
    /// no runs or no steps.
    pub cost_slope: f64,
    /// Portfolio starts pruned within the prefix window.
    pub pruned_starts: u32,
    /// Best Eq. 3 cost any run reached in the window (replayed exactly
    /// from accepted-move events); `+∞` for an empty trace.
    pub best_cost: f64,
}

/// Extracts [`EarlySignals`] from a captured event stream.
///
/// Works on any trace — a single exchange run, a merged portfolio
/// trace, or a full-schedule trace (in which case the "early" window is
/// simply the whole run). Deterministic: the trace merge is
/// thread-count-invariant, so these signals are too.
#[must_use]
pub fn early_signals(events: &[Event]) -> EarlySignals {
    let runs = split_runs(events);

    let curves: Vec<Vec<f64>> = runs.iter().map(|r| acceptance_curve(r)).collect();
    let shortest = curves.iter().map(Vec::len).min().unwrap_or(0);
    let mut acceptance = Vec::with_capacity(shortest);
    for step in 0..shortest {
        let sum: f64 = curves.iter().map(|c| c[step]).sum();
        acceptance.push(sum / curves.len() as f64);
    }

    let mut slope_sum = 0.0;
    let mut slope_count = 0u32;
    let mut best_cost = f64::INFINITY;
    for run in &runs {
        let Some(best) = replay_final_cost(run) else {
            continue;
        };
        if best < best_cost {
            best_cost = best;
        }
        let initial = run.iter().find_map(|e| match e {
            Event::RunStart { initial_cost, .. } => Some(*initial_cost),
            _ => None,
        });
        let steps = acceptance_curve(run).len();
        if let Some(initial) = initial {
            if steps > 0 && initial.abs() > f64::EPSILON {
                slope_sum += (best - initial) / (initial.abs() * steps as f64);
                slope_count += 1;
            }
        }
    }

    let pruned_starts = events
        .iter()
        .filter(|e| matches!(e, Event::PortfolioPrune { .. }))
        .count() as u32;

    EarlySignals {
        acceptance,
        cost_slope: if slope_count == 0 {
            0.0
        } else {
            slope_sum / f64::from(slope_count)
        },
        pruned_starts,
        best_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_events(initial: f64, step_costs: &[(u64, u64, f64)], accepted_to: f64) -> Vec<Event> {
        let mut ev = vec![Event::RunStart {
            initial_cost: initial,
            ir_term: 0.0,
            initial_temperature: 1.0,
            final_temperature: 0.01,
            cooling: 0.9,
            moves_per_temp: 4,
            movable_nets: 4,
        }];
        ev.push(Event::MoveAccepted {
            step: 0,
            left_slot: 1,
            delta: accepted_to - initial,
            cost: accepted_to,
            ir_term: 0.0,
            ir_changed: true,
            uphill: false,
        });
        for (i, &(proposed, accepted, cost)) in step_costs.iter().enumerate() {
            ev.push(Event::TempStep {
                step: i as u32,
                temperature: 1.0,
                proposed,
                accepted,
                uphill_accepted: 0,
                constraint_rejected: 0,
                ir_noop_applied: 0,
                cost,
            });
        }
        ev.push(Event::RunEnd {
            final_cost: accepted_to,
            proposed: step_costs.iter().map(|s| s.0).sum(),
            accepted: step_costs.iter().map(|s| s.1).sum(),
            uphill_accepted: 0,
            constraint_rejected: 0,
            temperature_steps: step_costs.len() as u64,
        });
        ev
    }

    #[test]
    fn empty_trace_yields_inert_signals() {
        let s = early_signals(&[]);
        assert!(s.acceptance.is_empty());
        assert_eq!(s.cost_slope, 0.0);
        assert_eq!(s.pruned_starts, 0);
        assert!(s.best_cost.is_infinite());
    }

    #[test]
    fn signals_average_across_runs() {
        let mut events = run_events(10.0, &[(4, 4, 9.0), (4, 2, 8.0)], 8.0);
        events.extend(run_events(10.0, &[(4, 0, 10.0), (4, 2, 9.0)], 9.0));
        let s = early_signals(&events);
        // Step 0: (1.0 + 0.0)/2, step 1: (0.5 + 0.5)/2.
        assert_eq!(s.acceptance, vec![0.5, 0.5]);
        assert_eq!(s.best_cost, 8.0);
        // Run 1 slope: (8−10)/(10·2) = −0.1; run 2: (9−10)/(10·2) = −0.05.
        assert!((s.cost_slope - (-0.075)).abs() < 1e-12, "{}", s.cost_slope);
    }

    #[test]
    fn prunes_are_counted() {
        let mut events = run_events(10.0, &[(4, 4, 9.0)], 9.0);
        events.push(Event::PortfolioPrune {
            start: 1,
            epoch: 0,
            best_cost: 11.0,
            global_best: 9.0,
        });
        assert_eq!(early_signals(&events).pruned_starts, 1);
    }
}
