//! `copack-obs` — zero-cost-when-disabled telemetry for the copack
//! annealing and solver hot paths.
//!
//! The design is a single dyn-dispatch seam: instrumented functions take
//! a `&mut dyn `[`Recorder`] and call [`Recorder::record`] at event
//! sites. Hot loops cache [`Recorder::enabled`] (and, for per-proposal
//! events, [`Recorder::wants_rejected`]) in local `bool`s once at
//! startup, so with the default [`NoopRecorder`] every event site
//! reduces to a never-taken branch — no allocation, no formatting, and
//! bit-identical numeric results (asserted by golden tests).
//!
//! Pieces:
//! * [`Event`] — the flat event vocabulary (SA moves, temperature steps,
//!   solver sweeps, density evaluations, package-side markers), each
//!   hand-serialisable to one JSON line (this crate has no deps).
//! * [`NoopRecorder`] — the free default.
//! * [`TraceBuffer`] — in-memory capture; one per worker thread, merged
//!   deterministically in structural (side) order via
//!   [`TraceBuffer::absorb`].
//! * [`JsonlSink`] — streaming JSONL file sink that goes inert on the
//!   first I/O error instead of killing the run.
//! * [`FanoutRecorder`] — tee to two sinks.
//! * [`TraceSummary`] and the replay helpers — post-hoc analysis used by
//!   `--metrics`, `bench_exchange`, and the trace-invariant tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod event;
mod jsonl;
mod recorder;
mod signals;
mod summary;

pub use buffer::TraceBuffer;
pub use event::{Event, Solver};
pub use jsonl::{JsonlSink, ObsError};
pub use recorder::{FanoutRecorder, NoopRecorder, Recorder};
pub use signals::{early_signals, EarlySignals};
pub use summary::{
    acceptance_curve, accepted_signature, portfolio_cost_curves, replay_final_cost, residual_curve,
    split_runs, AcceptedMove, PortfolioCurve, TraceSummary,
};
