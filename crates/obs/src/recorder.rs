//! The [`Recorder`] trait and its trivial implementations.

use crate::event::Event;

/// A sink for telemetry [`Event`]s.
///
/// Instrumented code holds a `&mut dyn Recorder` and calls
/// [`record`](Self::record) at each event site. Hot loops are expected to
/// cache [`enabled`](Self::enabled) (and, for per-proposal events,
/// [`wants_rejected`](Self::wants_rejected)) in a local `bool` once at
/// startup, so a disabled recorder costs one never-taken branch per
/// event site — nothing allocates, nothing formats.
///
/// Recorders are `&mut`-threaded, never shared: parallel code gives each
/// worker its own recorder (usually a [`TraceBuffer`](crate::TraceBuffer))
/// and merges the buffers deterministically afterwards.
pub trait Recorder {
    /// Whether this recorder wants events at all. Callers may skip event
    /// construction entirely when this is `false`; the value must stay
    /// constant for the lifetime of a run.
    fn enabled(&self) -> bool {
        true
    }

    /// Whether this recorder wants high-volume [`Event::MoveRejected`]
    /// events in addition to the per-step aggregates. Defaults to `false`
    /// because rejected proposals dominate event volume at low
    /// temperature. Must stay constant for the lifetime of a run.
    fn wants_rejected(&self) -> bool {
        false
    }

    /// Consumes one event. Implementations must not panic on I/O errors;
    /// sinks that can fail store the first error and go inert (see
    /// [`JsonlSink`](crate::JsonlSink)).
    fn record(&mut self, event: &Event);
}

/// The default recorder: drops everything, reports itself disabled.
///
/// With this recorder every instrumented path is bit-identical to the
/// uninstrumented code — asserted by the golden-output tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: &Event) {}
}

/// Duplicates every event to two recorders (e.g. a [`TraceBuffer`]
/// for in-process summaries and a [`JsonlSink`] for the `--trace` file).
///
/// [`TraceBuffer`]: crate::TraceBuffer
/// [`JsonlSink`]: crate::JsonlSink
pub struct FanoutRecorder<'a> {
    first: &'a mut dyn Recorder,
    second: &'a mut dyn Recorder,
}

impl<'a> FanoutRecorder<'a> {
    /// Fans events out to `first` then `second`, in that order.
    pub fn new(first: &'a mut dyn Recorder, second: &'a mut dyn Recorder) -> Self {
        Self { first, second }
    }
}

impl Recorder for FanoutRecorder<'_> {
    fn enabled(&self) -> bool {
        self.first.enabled() || self.second.enabled()
    }

    fn wants_rejected(&self) -> bool {
        self.first.wants_rejected() || self.second.wants_rejected()
    }

    fn record(&mut self, event: &Event) {
        if self.first.enabled() {
            self.first.record(event);
        }
        if self.second.enabled() {
            self.second.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuffer;

    #[test]
    fn noop_is_disabled() {
        let r = NoopRecorder;
        assert!(!r.enabled());
        assert!(!r.wants_rejected());
    }

    #[test]
    fn fanout_combines_flags_and_duplicates() {
        let mut a = TraceBuffer::new();
        let mut b = TraceBuffer::with_rejected();
        let mut fan = FanoutRecorder::new(&mut a, &mut b);
        assert!(fan.enabled());
        assert!(fan.wants_rejected());
        fan.record(&Event::SideBegin { side: 1 });
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn fanout_skips_disabled_arm() {
        let mut a = NoopRecorder;
        let mut b = TraceBuffer::new();
        let mut fan = FanoutRecorder::new(&mut a, &mut b);
        assert!(fan.enabled());
        assert!(!fan.wants_rejected());
        fan.record(&Event::SideBegin { side: 0 });
        assert_eq!(b.events().len(), 1);
    }
}
