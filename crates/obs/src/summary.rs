//! Post-hoc analysis of captured event streams: run splitting, replay,
//! and the aggregate [`TraceSummary`].

use std::fmt::Write as _;

use crate::event::{Event, Solver};

/// Splits a merged trace into per-run slices. A run is everything from
/// an [`Event::RunStart`] through its matching [`Event::RunEnd`]
/// (inclusive). Events outside any run (side markers, notes, solver
/// events from standalone IR evaluations) are skipped.
#[must_use]
pub fn split_runs(events: &[Event]) -> Vec<&[Event]> {
    let mut runs = Vec::new();
    let mut start = None;
    for (i, e) in events.iter().enumerate() {
        match e {
            Event::RunStart { .. } => start = Some(i),
            Event::RunEnd { .. } => {
                if let Some(s) = start.take() {
                    runs.push(&events[s..=i]);
                }
            }
            _ => {}
        }
    }
    runs
}

/// Replays one run's accepted moves to its final cost, bit for bit.
///
/// The kernel records the Eq. 3 cost *after* each accepted move (not the
/// delta), and its returned cost is the minimum cost ever held — so the
/// replay is `min(initial_cost, min over accepted costs)`, an exact
/// f64 computation with no re-accumulation error. Returns `None` if the
/// slice has no [`Event::RunStart`].
#[must_use]
pub fn replay_final_cost(run: &[Event]) -> Option<f64> {
    let mut best: Option<f64> = None;
    for e in run {
        match e {
            Event::RunStart { initial_cost, .. } => best = Some(*initial_cost),
            Event::MoveAccepted { cost, .. } => {
                if let Some(b) = best {
                    if *cost < b {
                        best = Some(*cost);
                    }
                }
            }
            _ => {}
        }
    }
    best
}

/// One accepted move, reduced to bit-comparable fields. `ir_changed` is
/// deliberately excluded: the reference implementation recomputes the
/// IR term from scratch every move and cannot report cache reuse.
pub type AcceptedMove = (u32, u32, u64, u64);

/// The accepted-move sequence of a trace as bit-exact tuples
/// `(step, left_slot, delta_bits, cost_bits)` — the trajectory
/// fingerprint the kernel-vs-reference proptests compare.
#[must_use]
pub fn accepted_signature(events: &[Event]) -> Vec<AcceptedMove> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::MoveAccepted {
                step,
                left_slot,
                delta,
                cost,
                ..
            } => Some((*step, *left_slot, delta.to_bits(), cost.to_bits())),
            _ => None,
        })
        .collect()
}

/// Per-temperature-step acceptance fractions (accepted / proposed),
/// in step order — the input to the acceptance sparkline.
#[must_use]
pub fn acceptance_curve(events: &[Event]) -> Vec<f64> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::TempStep {
                proposed, accepted, ..
            } => Some(if *proposed == 0 {
                0.0
            } else {
                *accepted as f64 / *proposed as f64
            }),
            _ => None,
        })
        .collect()
}

/// One portfolio start's telemetry, extracted from a merged trace.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioCurve {
    /// Start index (originals `0..K`, then replacements).
    pub start: u32,
    /// The seed the start annealed with.
    pub seed: u64,
    /// Whether the start was pruned before the schedule ended.
    pub pruned: bool,
    /// Eq. 3 cost at the end of each temperature step, in step order —
    /// the input to the per-start sparkline.
    pub costs: Vec<f64>,
}

/// Per-start cost curves of a multi-start portfolio trace: one entry per
/// [`Event::PortfolioStart`], in trace (= start-index) order, each
/// holding the costs of the `TempStep` events up to the next start
/// marker. Empty when the trace has no portfolio events.
#[must_use]
pub fn portfolio_cost_curves(events: &[Event]) -> Vec<PortfolioCurve> {
    let mut curves: Vec<PortfolioCurve> = Vec::new();
    for e in events {
        match e {
            Event::PortfolioStart { start, seed } => curves.push(PortfolioCurve {
                start: *start,
                seed: *seed,
                pruned: false,
                costs: Vec::new(),
            }),
            Event::PortfolioPrune { .. } => {
                if let Some(c) = curves.last_mut() {
                    c.pruned = true;
                }
            }
            Event::TempStep { cost, .. } => {
                if let Some(c) = curves.last_mut() {
                    c.costs.push(*cost);
                }
            }
            _ => {}
        }
    }
    curves
}

/// Per-sweep residuals of the given solver, in sweep order — the input
/// to the residual sparkline.
#[must_use]
pub fn residual_curve(events: &[Event], solver: Solver) -> Vec<f64> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::SolverSweep {
                solver: s,
                residual,
                ..
            } if *s == solver => Some(*residual),
            _ => None,
        })
        .collect()
}

/// Aggregate statistics over a (possibly merged, multi-run) trace.
///
/// Deliberately contains **no wall-clock fields**: two traces of the
/// same work merged from different thread counts summarise identically,
/// which is what the CI determinism check asserts. Timings live only in
/// [`Event::SideEnd`] and are reported separately.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Complete exchange runs seen.
    pub runs: u64,
    /// Total proposed moves across runs.
    pub proposed: u64,
    /// Total accepted moves across runs.
    pub accepted: u64,
    /// Total accepted uphill moves.
    pub uphill_accepted: u64,
    /// Total range-constraint rejections.
    pub constraint_rejected: u64,
    /// Total applied swaps that reused the cached Δ_IR term.
    pub ir_noop_applied: u64,
    /// Total temperature steps across runs.
    pub temperature_steps: u64,
    /// Sum of the runs' final costs (bit-deterministic because each
    /// run's cost is summed in run order).
    pub final_cost_sum: f64,
    /// SOR solves completed.
    pub sor_solves: u64,
    /// Total SOR sweeps.
    pub sor_sweeps: u64,
    /// CG solves completed.
    pub cg_solves: u64,
    /// Total CG iterations.
    pub cg_iters: u64,
    /// Largest `max_density` over density/routing evaluations.
    pub max_density: u32,
    /// Package sides seen (via [`Event::SideEnd`]).
    pub sides: u64,
}

impl TraceSummary {
    /// Builds the summary by folding over `events`.
    #[must_use]
    pub fn from_events(events: &[Event]) -> Self {
        let mut s = Self::default();
        for e in events {
            match e {
                Event::RunEnd {
                    final_cost,
                    proposed,
                    accepted,
                    uphill_accepted,
                    constraint_rejected,
                    temperature_steps,
                } => {
                    s.runs += 1;
                    s.proposed += proposed;
                    s.accepted += accepted;
                    s.uphill_accepted += uphill_accepted;
                    s.constraint_rejected += constraint_rejected;
                    s.temperature_steps += temperature_steps;
                    s.final_cost_sum += final_cost;
                }
                Event::TempStep {
                    ir_noop_applied, ..
                } => s.ir_noop_applied += ir_noop_applied,
                Event::SolverDone { solver, sweeps, .. } => match solver {
                    Solver::Sor => {
                        s.sor_solves += 1;
                        s.sor_sweeps += u64::from(*sweeps);
                    }
                    Solver::Cg => {
                        s.cg_solves += 1;
                        s.cg_iters += u64::from(*sweeps);
                    }
                },
                Event::DensityEvaluated { max_density, .. }
                | Event::RoutingEvaluated { max_density, .. } => {
                    s.max_density = s.max_density.max(*max_density);
                }
                Event::SideEnd { .. } => s.sides += 1,
                _ => {}
            }
        }
        s
    }

    /// Overall acceptance fraction, or 0 when nothing was proposed.
    #[must_use]
    pub fn acceptance_rate(&self) -> f64 {
        if self.proposed == 0 {
            0.0
        } else {
            self.accepted as f64 / self.proposed as f64
        }
    }

    /// Multi-line human-readable rendering (the `--metrics` block).
    /// Deterministic for a given trace: contains no timings.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "runs {}  steps {}  proposed {}  accepted {} ({:.1}%)",
            self.runs,
            self.temperature_steps,
            self.proposed,
            self.accepted,
            100.0 * self.acceptance_rate()
        );
        let _ = writeln!(
            out,
            "uphill {}  constraint-rejected {}  ir-noop {}  final-cost-sum {:.6}",
            self.uphill_accepted,
            self.constraint_rejected,
            self.ir_noop_applied,
            self.final_cost_sum
        );
        if self.sor_solves + self.cg_solves > 0 {
            let _ = writeln!(
                out,
                "sor {} solves / {} sweeps  cg {} solves / {} iters",
                self.sor_solves, self.sor_sweeps, self.cg_solves, self.cg_iters
            );
        }
        if self.sides > 0 {
            let _ = writeln!(out, "sides {}", self.sides);
        }
        if self.max_density > 0 {
            let _ = writeln!(out, "max-density {}", self.max_density);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portfolio_curves_follow_start_markers() {
        let temp_step = |step: u32, cost: f64| Event::TempStep {
            step,
            temperature: 1.0,
            proposed: 10,
            accepted: 5,
            uphill_accepted: 0,
            constraint_rejected: 0,
            ir_noop_applied: 0,
            cost,
        };
        let events = vec![
            Event::PortfolioStart { start: 0, seed: 42 },
            temp_step(0, 9.0),
            temp_step(1, 8.0),
            Event::PortfolioStart { start: 1, seed: 7 },
            temp_step(0, 9.5),
            Event::PortfolioPrune {
                start: 1,
                epoch: 0,
                best_cost: 9.5,
                global_best: 8.0,
            },
        ];
        let curves = portfolio_cost_curves(&events);
        assert_eq!(curves.len(), 2);
        assert_eq!(curves[0].start, 0);
        assert_eq!(curves[0].seed, 42);
        assert!(!curves[0].pruned);
        assert_eq!(curves[0].costs, vec![9.0, 8.0]);
        assert_eq!(curves[1].start, 1);
        assert!(curves[1].pruned);
        assert_eq!(curves[1].costs, vec![9.5]);
        assert!(portfolio_cost_curves(&[temp_step(0, 1.0)]).is_empty());
    }

    fn run_events() -> Vec<Event> {
        vec![
            Event::RunStart {
                initial_cost: 10.0,
                ir_term: 4.0,
                initial_temperature: 3.0,
                final_temperature: 0.003,
                cooling: 0.9,
                moves_per_temp: 4,
                movable_nets: 2,
            },
            Event::MoveAccepted {
                step: 0,
                left_slot: 1,
                delta: -2.0,
                cost: 8.0,
                ir_term: 3.0,
                ir_changed: true,
                uphill: false,
            },
            Event::MoveAccepted {
                step: 0,
                left_slot: 2,
                delta: 1.0,
                cost: 9.0,
                ir_term: 3.0,
                ir_changed: false,
                uphill: true,
            },
            Event::TempStep {
                step: 0,
                temperature: 3.0,
                proposed: 4,
                accepted: 2,
                uphill_accepted: 1,
                constraint_rejected: 1,
                ir_noop_applied: 1,
                cost: 9.0,
            },
            Event::RunEnd {
                final_cost: 8.0,
                proposed: 4,
                accepted: 2,
                uphill_accepted: 1,
                constraint_rejected: 1,
                temperature_steps: 1,
            },
        ]
    }

    #[test]
    fn split_and_replay() {
        let mut events = vec![Event::SideBegin { side: 0 }];
        events.extend(run_events());
        events.push(Event::SideEnd {
            side: 0,
            seconds: 0.1,
        });
        let runs = split_runs(&events);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].len(), 5);
        assert_eq!(replay_final_cost(runs[0]), Some(8.0));
    }

    #[test]
    fn replay_handles_no_accepted_moves() {
        let events = [Event::RunStart {
            initial_cost: 7.0,
            ir_term: 0.0,
            initial_temperature: 1.0,
            final_temperature: 0.001,
            cooling: 0.9,
            moves_per_temp: 1,
            movable_nets: 1,
        }];
        assert_eq!(replay_final_cost(&events), Some(7.0));
        assert_eq!(replay_final_cost(&[]), None);
    }

    #[test]
    fn signature_and_curves() {
        let events = run_events();
        let sig = accepted_signature(&events);
        assert_eq!(sig.len(), 2);
        assert_eq!(sig[0], (0, 1, (-2.0f64).to_bits(), 8.0f64.to_bits()));
        assert_eq!(acceptance_curve(&events), vec![0.5]);
        assert!(residual_curve(&events, Solver::Sor).is_empty());
    }

    #[test]
    fn summary_aggregates_and_ignores_timing() {
        let mut events = run_events();
        events.push(Event::SolverDone {
            solver: Solver::Sor,
            sweeps: 100,
            residual: 1e-13,
            converged: true,
        });
        events.push(Event::SideEnd {
            side: 3,
            seconds: 123.0,
        });
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.runs, 1);
        assert_eq!(s.proposed, 4);
        assert_eq!(s.accepted, 2);
        assert_eq!(s.ir_noop_applied, 1);
        assert_eq!(s.sor_solves, 1);
        assert_eq!(s.sor_sweeps, 100);
        assert_eq!(s.sides, 1);
        assert!((s.acceptance_rate() - 0.5).abs() < 1e-15);

        // A different wall time must not change the summary.
        let mut events2 = events.clone();
        if let Some(Event::SideEnd { seconds, .. }) = events2.last_mut() {
            *seconds = 456.0;
        }
        assert_eq!(s, TraceSummary::from_events(&events2));
        let text = s.to_text();
        assert!(text.contains("accepted 2 (50.0%)"), "{text}");
        assert!(!text.to_lowercase().contains("seconds"), "{text}");
    }
}
