//! The telemetry event vocabulary.
//!
//! Every instrumented hot path — the annealing kernel, the grid solvers,
//! the density estimator, the package planner — narrates itself as a flat
//! stream of [`Event`]s. Events carry plain numbers only (no geometry
//! handles), so the crate has no dependencies and any sink can serialise
//! them.

use std::fmt::Write as _;

/// Which grid solver emitted a solver event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Solver {
    /// Successive over-relaxation ([`solve_sor`-family]).
    Sor,
    /// Conjugate gradient ([`solve_cg`-family]).
    Cg,
}

impl Solver {
    /// Stable lowercase name used in serialised traces.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            Self::Sor => "sor",
            Self::Cg => "cg",
        }
    }
}

/// One telemetry event.
///
/// The variants mirror the instrumented layers:
///
/// * `RunStart` / `MoveAccepted` / `MoveRejected` / `TempStep` / `RunEnd`
///   — one simulated-annealing exchange run (paper Fig. 14). Rejected
///   moves are high-volume and only recorded when the sink opts in via
///   [`crate::Recorder::wants_rejected`].
/// * `SolverSweep` / `SolverDone` — per-sweep residuals of the SOR/CG
///   power-grid solvers.
/// * `DensityEvaluated` / `RoutingEvaluated` — route-layer congestion
///   evaluations.
/// * `SideBegin` / `SideEnd` — quadrant boundaries in a whole-package
///   plan; `SideEnd` carries the side's wall time (the one
///   non-deterministic field in a trace).
/// * `Note` — free-form annotations (warnings, context markers).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// An exchange run began (after validation, before the first move).
    RunStart {
        /// Eq. 3 cost of the initial order.
        initial_cost: f64,
        /// λ-weighted Δ_IR term of the initial order (the cached value
        /// the kernel reuses across IR-neutral swaps).
        ir_term: f64,
        /// Start temperature.
        initial_temperature: f64,
        /// Temperature below which the schedule stops.
        final_temperature: f64,
        /// Geometric cooling factor per temperature step.
        cooling: f64,
        /// Proposed moves per temperature step.
        moves_per_temp: u64,
        /// Number of movable nets (power pads at ψ = 1, all pads stacked).
        movable_nets: u64,
    },
    /// A proposed swap was accepted.
    MoveAccepted {
        /// Temperature-step index the move happened in.
        step: u32,
        /// Left (1-based) finger slot of the adjacent pair that swapped.
        left_slot: u32,
        /// Cost delta of the move (negative = improvement).
        delta: f64,
        /// Eq. 3 cost after the move.
        cost: f64,
        /// λ-weighted Δ_IR term after the move.
        ir_term: f64,
        /// Whether the swap moved a power-pad coordinate (`false` means
        /// the Δ_IR term was reused from cache, bit for bit).
        ir_changed: bool,
        /// Whether the move increased the cost (uphill).
        uphill: bool,
    },
    /// A proposed swap reached the acceptance coin and lost. Only
    /// recorded for sinks with [`crate::Recorder::wants_rejected`].
    MoveRejected {
        /// Temperature-step index.
        step: u32,
        /// Left (1-based) finger slot of the proposed pair.
        left_slot: u32,
        /// Cost delta the rejected move would have caused.
        delta: f64,
    },
    /// A temperature step completed (aggregate counters for the step).
    TempStep {
        /// Step index, 0-based.
        step: u32,
        /// Temperature during this step (before cooling).
        temperature: f64,
        /// Moves proposed this step.
        proposed: u64,
        /// Moves accepted this step.
        accepted: u64,
        /// Accepted moves that increased the cost.
        uphill_accepted: u64,
        /// Proposals rejected by the range constraint before costing.
        constraint_rejected: u64,
        /// Applied proposals whose swap left the Δ_IR term untouched
        /// (the tracker reported a no-op, so the cached term was reused).
        ir_noop_applied: u64,
        /// Eq. 3 cost at the end of the step.
        cost: f64,
    },
    /// An exchange run finished; mirrors the run's final statistics.
    RunEnd {
        /// Best cost seen (the returned order's cost).
        final_cost: f64,
        /// Total proposed moves.
        proposed: u64,
        /// Total accepted moves.
        accepted: u64,
        /// Total uphill accepted moves.
        uphill_accepted: u64,
        /// Total range-constraint rejections.
        constraint_rejected: u64,
        /// Temperature steps performed.
        temperature_steps: u64,
    },
    /// One solver sweep/iteration completed.
    SolverSweep {
        /// Which solver.
        solver: Solver,
        /// Sweep (SOR) or iteration (CG) index, 0-based.
        sweep: u32,
        /// Convergence measure after the sweep: largest voltage update
        /// (SOR) or relative residual norm (CG).
        residual: f64,
    },
    /// A solve finished.
    SolverDone {
        /// Which solver.
        solver: Solver,
        /// Sweeps/iterations performed.
        sweeps: u32,
        /// Final convergence measure.
        residual: f64,
        /// Whether the tolerance was met (a `false` here precedes a
        /// `NoConvergence` error).
        converged: bool,
    },
    /// A wire-density map was computed.
    DensityEvaluated {
        /// The map's maximum segment density.
        max_density: u32,
        /// Number of horizontal lines in the map.
        lines: u32,
    },
    /// A full routing analysis (density + wirelength) was computed.
    RoutingEvaluated {
        /// Maximum wire density of the routing.
        max_density: u32,
        /// Total wirelength (µm).
        total_wirelength: f64,
    },
    /// A package side's plan is about to be replayed into the merged
    /// trace (sides always merge in [`QuadrantSide::ALL`] order).
    SideBegin {
        /// Side index, 0..4.
        side: u8,
    },
    /// A package side's plan finished.
    SideEnd {
        /// Side index, 0..4.
        side: u8,
        /// Wall-clock seconds the side's planning took. The only
        /// non-deterministic field in a trace; determinism checks strip
        /// lines containing `"seconds"`.
        seconds: f64,
    },
    /// A planning job travelled through the `copack-serve` daemon: one
    /// event per protocol `plan` request, whether it executed, was
    /// answered from the result cache, coalesced onto an in-flight
    /// duplicate, timed out, failed, or was rejected by backpressure.
    ServeJob {
        /// How the cache answered: `"miss"` (executed), `"hit"`
        /// (already cached), `"coalesced"` (waited on an in-flight
        /// duplicate), or `"none"` (never reached the cache, e.g.
        /// rejected).
        cache: String,
        /// Outcome: `"ok"`, `"timeout"`, `"error"`, or `"rejected"`.
        outcome: String,
        /// Admission class the job was scheduled under:
        /// `"interactive"` or `"bulk"`.
        class: String,
        /// Jobs waiting in the bounded queue when this one was admitted
        /// (or rejected).
        queue_depth: u32,
        /// Wall-clock seconds from admission to response. Like
        /// `SideEnd`'s field, the one non-deterministic value; determinism
        /// diffs strip lines containing `"seconds"`.
        seconds: f64,
    },
    /// The `copack-serve` pool's lifetime counters, emitted once at
    /// shutdown.
    ServePool {
        /// Worker threads the pool ran.
        workers: u32,
        /// Bounded queue capacity (backpressure threshold).
        queue_capacity: u32,
        /// Plan requests received.
        submitted: u64,
        /// Jobs that executed to completion.
        completed: u64,
        /// Requests answered from the result cache.
        cache_hits: u64,
        /// Requests that coalesced onto an in-flight duplicate.
        coalesced: u64,
        /// Requests rejected because the queue was full.
        rejected: u64,
        /// Jobs cancelled by their wall-clock deadline.
        timeouts: u64,
    },
    /// The `copack-serve` result cache's tier telemetry, emitted once at
    /// shutdown alongside [`Event::ServePool`].
    ServeCache {
        /// Lookups answered by the bounded memory tier.
        mem_hits: u64,
        /// Lookups answered by the persistent disk tier.
        disk_hits: u64,
        /// Lookups that found neither tier populated.
        misses: u64,
        /// Entries evicted from the memory tier by its LRU bound.
        evictions: u64,
        /// Disk entries that failed validation and were quarantined.
        quarantined: u64,
        /// Live disk-tier entries at shutdown.
        disk_entries: u64,
    },
    /// One start of a multi-start exchange portfolio is about to run; its
    /// trace (`RunStart`…) follows. Starts always merge in start-index
    /// order, so the merged trace is thread-count-invariant.
    PortfolioStart {
        /// Start index, 0-based. Indices < K are the original starts;
        /// larger indices are replacements spawned for pruned starts.
        start: u32,
        /// The derived seed this start annealed with.
        seed: u64,
    },
    /// A portfolio start was abandoned at a sync epoch because its
    /// best-so-far cost trailed the global best by more than the prune
    /// margin.
    PortfolioPrune {
        /// Start index of the pruned start.
        start: u32,
        /// Sync-epoch index (0-based) at which the prune fired.
        epoch: u32,
        /// The pruned start's best-so-far cost, frozen at the prune.
        best_cost: f64,
        /// The global best cost the start was compared against.
        global_best: f64,
    },
    /// A `coop`-mode portfolio respawned a pruned slot from the current
    /// leader's best-prefix plan, perturbed by a seeded k-swap kick.
    PortfolioCrossover {
        /// Start index of the respawned slot.
        start: u32,
        /// Start index of the leader whose plan seeded the respawn.
        parent: u32,
        /// Sync-epoch barrier (0-based) at which the crossover fired.
        epoch: u32,
        /// Kick swaps actually applied (may fall short of the configured
        /// kick size on tightly range-constrained instances).
        kick: u32,
        /// The leader's best-so-far cost at the barrier.
        parent_cost: f64,
    },
    /// A `temper`-mode portfolio proposed a Metropolis swap of thermal
    /// states between two adjacent temperature rungs at an epoch barrier.
    PortfolioSwap {
        /// Sync-epoch barrier (0-based) of the proposal.
        epoch: u32,
        /// Start index of the colder rung.
        start_a: u32,
        /// Start index of the hotter rung.
        start_b: u32,
        /// Current (not best) cost of the colder rung's trajectory.
        cost_a: f64,
        /// Current cost of the hotter rung's trajectory.
        cost_b: f64,
        /// The colder rung's temperature at the barrier.
        temp_a: f64,
        /// The hotter rung's temperature at the barrier.
        temp_b: f64,
        /// Whether the Metropolis verdict accepted the swap.
        accepted: bool,
    },
    /// A `coop`-mode portfolio recomputed its adaptive prune margin at an
    /// epoch barrier from the live starts' best-cost spread.
    PortfolioMargin {
        /// Sync-epoch barrier (0-based).
        epoch: u32,
        /// The effective (widened) relative margin used for this
        /// barrier's prune verdicts.
        margin: f64,
        /// The observed relative best-cost spread it widened to.
        spread: f64,
        /// Live starts folded into the spread.
        live: u32,
    },
    /// An incremental replan began: the delta's dirty-set classification
    /// of the instance, emitted before any quadrant is planned.
    ReplanStart {
        /// Quadrants in the instance.
        quadrants: u32,
        /// Quadrants the delta actually touches (the rest reuse their
        /// previous plan or cache entry verbatim).
        dirty: u32,
    },
    /// A quadrant's previous plan was reused during a replan instead of
    /// being recomputed.
    QuadrantReused {
        /// The quadrant's name.
        name: String,
        /// Where the reused plan came from: `"previous"` (clean quadrant,
        /// prior plan returned verbatim), `"mem"` or `"disk"` (serve
        /// cache tiers).
        tier: String,
    },
    /// A dirty quadrant is about to warm-start, and this is where its
    /// starting assignment came from.
    QuadrantWarmed {
        /// The quadrant's name.
        name: String,
        /// `"journal"` (replayed from a portfolio winner's frozen move
        /// journal) or `"plan"` (re-parsed from the materialised
        /// previous plan). The two are byte-equivalent by the journal
        /// replay contract; the source records which path served it.
        source: String,
    },
    /// An invariant oracle (`copack-verify`) delivered a verdict.
    OracleChecked {
        /// Stable oracle name (`"monotonicity"`, `"density"`,
        /// `"ir-cross-check"`, `"determinism"`, `"cost-ledger"`).
        oracle: String,
        /// Whether the invariant held.
        passed: bool,
        /// Deterministic one-line detail (witness values, never timings).
        detail: String,
    },
    /// Free-form annotation.
    Note {
        /// The annotation text.
        text: String,
    },
}

/// Writes `v` as JSON (shortest round-trip representation; non-finite
/// values become `null`, which JSON requires).
fn json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Event {
    /// Stable machine-readable tag of the variant (the `"ev"` field of
    /// the JSONL encoding).
    #[must_use]
    pub const fn kind(&self) -> &'static str {
        match self {
            Self::RunStart { .. } => "run_start",
            Self::MoveAccepted { .. } => "move_accepted",
            Self::MoveRejected { .. } => "move_rejected",
            Self::TempStep { .. } => "temp_step",
            Self::RunEnd { .. } => "run_end",
            Self::SolverSweep { .. } => "solver_sweep",
            Self::SolverDone { .. } => "solver_done",
            Self::DensityEvaluated { .. } => "density",
            Self::RoutingEvaluated { .. } => "routing",
            Self::SideBegin { .. } => "side_begin",
            Self::SideEnd { .. } => "side_end",
            Self::ServeJob { .. } => "serve_job",
            Self::ServePool { .. } => "serve_pool",
            Self::ServeCache { .. } => "serve_cache",
            Self::PortfolioStart { .. } => "portfolio_start",
            Self::PortfolioPrune { .. } => "portfolio_prune",
            Self::PortfolioCrossover { .. } => "portfolio_crossover",
            Self::PortfolioSwap { .. } => "portfolio_swap",
            Self::PortfolioMargin { .. } => "portfolio_margin",
            Self::ReplanStart { .. } => "replan_start",
            Self::QuadrantReused { .. } => "quadrant_reused",
            Self::QuadrantWarmed { .. } => "quadrant_warmed",
            Self::OracleChecked { .. } => "oracle",
            Self::Note { .. } => "note",
        }
    }

    /// Appends the event as one JSON object (no trailing newline) to
    /// `out`. The encoding is self-describing: `{"ev": "<kind>", ...}`.
    /// Floats use Rust's shortest round-trip formatting, so equal traces
    /// serialise to byte-equal lines.
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(out, "{{\"ev\":\"{}\"", self.kind());
        match self {
            Self::RunStart {
                initial_cost,
                ir_term,
                initial_temperature,
                final_temperature,
                cooling,
                moves_per_temp,
                movable_nets,
            } => {
                out.push_str(",\"initial_cost\":");
                json_f64(out, *initial_cost);
                out.push_str(",\"ir_term\":");
                json_f64(out, *ir_term);
                out.push_str(",\"t0\":");
                json_f64(out, *initial_temperature);
                out.push_str(",\"t_final\":");
                json_f64(out, *final_temperature);
                out.push_str(",\"cooling\":");
                json_f64(out, *cooling);
                let _ = write!(
                    out,
                    ",\"moves_per_temp\":{moves_per_temp},\"movable_nets\":{movable_nets}"
                );
            }
            Self::MoveAccepted {
                step,
                left_slot,
                delta,
                cost,
                ir_term,
                ir_changed,
                uphill,
            } => {
                let _ = write!(out, ",\"step\":{step},\"slot\":{left_slot},\"delta\":");
                json_f64(out, *delta);
                out.push_str(",\"cost\":");
                json_f64(out, *cost);
                out.push_str(",\"ir_term\":");
                json_f64(out, *ir_term);
                let _ = write!(out, ",\"ir_changed\":{ir_changed},\"uphill\":{uphill}");
            }
            Self::MoveRejected {
                step,
                left_slot,
                delta,
            } => {
                let _ = write!(out, ",\"step\":{step},\"slot\":{left_slot},\"delta\":");
                json_f64(out, *delta);
            }
            Self::TempStep {
                step,
                temperature,
                proposed,
                accepted,
                uphill_accepted,
                constraint_rejected,
                ir_noop_applied,
                cost,
            } => {
                let _ = write!(out, ",\"step\":{step},\"temperature\":");
                json_f64(out, *temperature);
                let _ = write!(
                    out,
                    ",\"proposed\":{proposed},\"accepted\":{accepted},\
                     \"uphill\":{uphill_accepted},\"constraint_rejected\":{constraint_rejected},\
                     \"ir_noop\":{ir_noop_applied},\"cost\":"
                );
                json_f64(out, *cost);
            }
            Self::RunEnd {
                final_cost,
                proposed,
                accepted,
                uphill_accepted,
                constraint_rejected,
                temperature_steps,
            } => {
                out.push_str(",\"final_cost\":");
                json_f64(out, *final_cost);
                let _ = write!(
                    out,
                    ",\"proposed\":{proposed},\"accepted\":{accepted},\
                     \"uphill\":{uphill_accepted},\"constraint_rejected\":{constraint_rejected},\
                     \"temperature_steps\":{temperature_steps}"
                );
            }
            Self::SolverSweep {
                solver,
                sweep,
                residual,
            } => {
                let _ = write!(
                    out,
                    ",\"solver\":\"{}\",\"sweep\":{sweep},\"residual\":",
                    solver.as_str()
                );
                json_f64(out, *residual);
            }
            Self::SolverDone {
                solver,
                sweeps,
                residual,
                converged,
            } => {
                let _ = write!(
                    out,
                    ",\"solver\":\"{}\",\"sweeps\":{sweeps},\"residual\":",
                    solver.as_str()
                );
                json_f64(out, *residual);
                let _ = write!(out, ",\"converged\":{converged}");
            }
            Self::DensityEvaluated { max_density, lines } => {
                let _ = write!(out, ",\"max_density\":{max_density},\"lines\":{lines}");
            }
            Self::RoutingEvaluated {
                max_density,
                total_wirelength,
            } => {
                let _ = write!(out, ",\"max_density\":{max_density},\"wirelength\":");
                json_f64(out, *total_wirelength);
            }
            Self::SideBegin { side } => {
                let _ = write!(out, ",\"side\":{side}");
            }
            Self::SideEnd { side, seconds } => {
                let _ = write!(out, ",\"side\":{side},\"seconds\":");
                json_f64(out, *seconds);
            }
            Self::ServeJob {
                cache,
                outcome,
                class,
                queue_depth,
                seconds,
            } => {
                out.push_str(",\"cache\":");
                json_str(out, cache);
                out.push_str(",\"outcome\":");
                json_str(out, outcome);
                out.push_str(",\"class\":");
                json_str(out, class);
                let _ = write!(out, ",\"queue_depth\":{queue_depth},\"seconds\":");
                json_f64(out, *seconds);
            }
            Self::ServePool {
                workers,
                queue_capacity,
                submitted,
                completed,
                cache_hits,
                coalesced,
                rejected,
                timeouts,
            } => {
                let _ = write!(
                    out,
                    ",\"workers\":{workers},\"queue_capacity\":{queue_capacity},\
                     \"submitted\":{submitted},\"completed\":{completed},\
                     \"cache_hits\":{cache_hits},\"coalesced\":{coalesced},\
                     \"rejected\":{rejected},\"timeouts\":{timeouts}"
                );
            }
            Self::ServeCache {
                mem_hits,
                disk_hits,
                misses,
                evictions,
                quarantined,
                disk_entries,
            } => {
                let _ = write!(
                    out,
                    ",\"mem_hits\":{mem_hits},\"disk_hits\":{disk_hits},\
                     \"misses\":{misses},\"evictions\":{evictions},\
                     \"quarantined\":{quarantined},\"disk_entries\":{disk_entries}"
                );
            }
            Self::PortfolioStart { start, seed } => {
                let _ = write!(out, ",\"start\":{start},\"seed\":{seed}");
            }
            Self::PortfolioPrune {
                start,
                epoch,
                best_cost,
                global_best,
            } => {
                let _ = write!(out, ",\"start\":{start},\"epoch\":{epoch},\"best_cost\":");
                json_f64(out, *best_cost);
                out.push_str(",\"global_best\":");
                json_f64(out, *global_best);
            }
            Self::PortfolioCrossover {
                start,
                parent,
                epoch,
                kick,
                parent_cost,
            } => {
                let _ = write!(
                    out,
                    ",\"start\":{start},\"parent\":{parent},\"epoch\":{epoch},\"kick\":{kick},\"parent_cost\":"
                );
                json_f64(out, *parent_cost);
            }
            Self::PortfolioSwap {
                epoch,
                start_a,
                start_b,
                cost_a,
                cost_b,
                temp_a,
                temp_b,
                accepted,
            } => {
                let _ = write!(
                    out,
                    ",\"epoch\":{epoch},\"start_a\":{start_a},\"start_b\":{start_b},\"cost_a\":"
                );
                json_f64(out, *cost_a);
                out.push_str(",\"cost_b\":");
                json_f64(out, *cost_b);
                out.push_str(",\"temp_a\":");
                json_f64(out, *temp_a);
                out.push_str(",\"temp_b\":");
                json_f64(out, *temp_b);
                let _ = write!(out, ",\"accepted\":{accepted}");
            }
            Self::PortfolioMargin {
                epoch,
                margin,
                spread,
                live,
            } => {
                let _ = write!(out, ",\"epoch\":{epoch},\"margin\":");
                json_f64(out, *margin);
                out.push_str(",\"spread\":");
                json_f64(out, *spread);
                let _ = write!(out, ",\"live\":{live}");
            }
            Self::ReplanStart { quadrants, dirty } => {
                let _ = write!(out, ",\"quadrants\":{quadrants},\"dirty\":{dirty}");
            }
            Self::QuadrantReused { name, tier } => {
                out.push_str(",\"name\":");
                json_str(out, name);
                out.push_str(",\"tier\":");
                json_str(out, tier);
            }
            Self::QuadrantWarmed { name, source } => {
                out.push_str(",\"name\":");
                json_str(out, name);
                out.push_str(",\"source\":");
                json_str(out, source);
            }
            Self::OracleChecked {
                oracle,
                passed,
                detail,
            } => {
                out.push_str(",\"oracle\":");
                json_str(out, oracle);
                let _ = write!(out, ",\"passed\":{passed},\"detail\":");
                json_str(out, detail);
            }
            Self::Note { text } => {
                out.push_str(",\"text\":");
                json_str(out, text);
            }
        }
        out.push('}');
    }

    /// The event as a standalone JSON string.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_unique_and_stable() {
        let events = [
            Event::RunStart {
                initial_cost: 1.0,
                ir_term: 0.5,
                initial_temperature: 2.0,
                final_temperature: 0.01,
                cooling: 0.9,
                moves_per_temp: 10,
                movable_nets: 3,
            },
            Event::MoveAccepted {
                step: 0,
                left_slot: 1,
                delta: -0.5,
                cost: 0.5,
                ir_term: 0.25,
                ir_changed: true,
                uphill: false,
            },
            Event::MoveRejected {
                step: 0,
                left_slot: 1,
                delta: 0.5,
            },
            Event::TempStep {
                step: 0,
                temperature: 2.0,
                proposed: 10,
                accepted: 4,
                uphill_accepted: 1,
                constraint_rejected: 2,
                ir_noop_applied: 3,
                cost: 0.5,
            },
            Event::RunEnd {
                final_cost: 0.5,
                proposed: 10,
                accepted: 4,
                uphill_accepted: 1,
                constraint_rejected: 2,
                temperature_steps: 1,
            },
            Event::SolverSweep {
                solver: Solver::Sor,
                sweep: 0,
                residual: 1e-3,
            },
            Event::SolverDone {
                solver: Solver::Cg,
                sweeps: 12,
                residual: 1e-13,
                converged: true,
            },
            Event::DensityEvaluated {
                max_density: 2,
                lines: 3,
            },
            Event::RoutingEvaluated {
                max_density: 2,
                total_wirelength: 42.5,
            },
            Event::SideBegin { side: 0 },
            Event::SideEnd {
                side: 0,
                seconds: 0.125,
            },
            Event::ServeJob {
                cache: "hit".to_owned(),
                outcome: "ok".to_owned(),
                class: "interactive".to_owned(),
                queue_depth: 2,
                seconds: 0.004,
            },
            Event::ServePool {
                workers: 4,
                queue_capacity: 64,
                submitted: 10,
                completed: 7,
                cache_hits: 2,
                coalesced: 1,
                rejected: 0,
                timeouts: 0,
            },
            Event::ServeCache {
                mem_hits: 2,
                disk_hits: 1,
                misses: 4,
                evictions: 1,
                quarantined: 0,
                disk_entries: 3,
            },
            Event::PortfolioStart {
                start: 3,
                seed: 0x5EED,
            },
            Event::PortfolioPrune {
                start: 3,
                epoch: 1,
                best_cost: 12.5,
                global_best: 9.0,
            },
            Event::PortfolioCrossover {
                start: 4,
                parent: 0,
                epoch: 1,
                kick: 4,
                parent_cost: 9.0,
            },
            Event::PortfolioSwap {
                epoch: 2,
                start_a: 0,
                start_b: 1,
                cost_a: 9.0,
                cost_b: 10.5,
                temp_a: 0.5,
                temp_b: 0.75,
                accepted: true,
            },
            Event::PortfolioMargin {
                epoch: 1,
                margin: 0.25,
                spread: 0.1,
                live: 4,
            },
            Event::ReplanStart {
                quadrants: 4,
                dirty: 1,
            },
            Event::QuadrantReused {
                name: "north".to_owned(),
                tier: "previous".to_owned(),
            },
            Event::QuadrantWarmed {
                name: "north".to_owned(),
                source: "journal".to_owned(),
            },
            Event::OracleChecked {
                oracle: "density".to_owned(),
                passed: true,
                detail: "kernel == reference".to_owned(),
            },
            Event::Note {
                text: "hi \"there\"\n".to_owned(),
            },
        ];
        let mut kinds: Vec<&str> = events.iter().map(Event::kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), events.len(), "duplicate kind tag");
        for e in &events {
            let json = e.to_json();
            assert!(json.starts_with("{\"ev\":\""), "{json}");
            assert!(json.ends_with('}'), "{json}");
            assert!(!json.contains('\n'), "{json}");
        }
    }

    #[test]
    fn json_escapes_strings_and_nonfinite_floats() {
        let note = Event::Note {
            text: "a\"b\\c\nd".to_owned(),
        };
        assert_eq!(note.to_json(), r#"{"ev":"note","text":"a\"b\\c\nd"}"#);
        let e = Event::SolverSweep {
            solver: Solver::Sor,
            sweep: 1,
            residual: f64::NAN,
        };
        assert!(e.to_json().contains("\"residual\":null"));
    }

    #[test]
    fn float_encoding_round_trips_exactly() {
        // `{:?}` prints the shortest string that parses back to the same
        // bits — the property the trace-determinism diff relies on.
        for v in [0.1 + 0.2, 1.0 / 3.0, 1e-300, -0.0, 123456.789] {
            let e = Event::SolverSweep {
                solver: Solver::Cg,
                sweep: 0,
                residual: v,
            };
            let json = e.to_json();
            let field = json.split("\"residual\":").nth(1).unwrap();
            let parsed: f64 = field.trim_end_matches('}').parse().unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits(), "{json}");
        }
    }

    #[test]
    fn solver_names_are_stable() {
        assert_eq!(Solver::Sor.as_str(), "sor");
        assert_eq!(Solver::Cg.as_str(), "cg");
    }
}
