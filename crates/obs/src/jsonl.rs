//! Line-delimited JSON trace files.

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::event::Event;
use crate::recorder::Recorder;

/// Failure opening a trace sink.
#[derive(Debug)]
pub enum ObsError {
    /// The trace file could not be created.
    Io {
        /// Path the caller asked for.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, source } => {
                write!(f, "cannot open trace file {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for ObsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
        }
    }
}

/// A [`Recorder`] that writes one JSON object per line to a writer.
///
/// Recording stages the event in an in-memory queue (a cheap clone, tens
/// of nanoseconds) so the annealer's hot loop never pays for JSON
/// serialisation; the queue is serialised and written out every
/// [`DRAIN_THRESHOLD`] events and at [`finish`](Self::finish). This is
/// what keeps the kernel's moves/sec within budget with a live sink —
/// `bench_exchange` measures it.
///
/// The sink never panics and never aborts a run: the first write failure
/// is stored and the sink goes inert (stops writing, keeps accepting
/// events). Callers check [`error`](Self::error) — or the [`finish`]
/// result — after the run and surface a warning; a broken trace file
/// must not destroy hours of annealing.
///
/// [`finish`]: Self::finish
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    queue: Vec<Event>,
    scratch: String,
    error: Option<io::Error>,
}

/// Queued events are flushed to the writer once the queue reaches this
/// length, bounding the sink's memory at a few MB for arbitrarily long
/// runs.
pub const DRAIN_THRESHOLD: usize = 1 << 16;

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a trace file at `path`. Open failures are
    /// loud — an unwritable `--trace` path is a user error to report
    /// before the run starts, not after.
    pub fn create(path: &Path) -> Result<Self, ObsError> {
        let file = File::create(path).map_err(|source| ObsError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        Ok(Self::new(BufWriter::new(file)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer (tests inject failing writers here).
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            queue: Vec::new(),
            scratch: String::new(),
            error: None,
        }
    }

    /// The first write error, if any occurred. Once set, no further
    /// writes are attempted. Errors surface when the queue drains —
    /// call [`drain`](Self::drain) or [`finish`](Self::finish) to force
    /// one.
    #[must_use]
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Serialises and writes every queued event now. Stops at (and
    /// stores) the first write error; the queue is cleared either way.
    pub fn drain(&mut self) {
        let queue = std::mem::take(&mut self.queue);
        if self.error.is_some() {
            return;
        }
        for event in &queue {
            self.scratch.clear();
            event.write_json(&mut self.scratch);
            self.scratch.push('\n');
            if let Err(e) = self.writer.write_all(self.scratch.as_bytes()) {
                self.error = Some(e);
                break;
            }
        }
    }

    /// Drains the queue, flushes the writer, and returns it — or the
    /// first error seen (stored, from the drain, or from the flush).
    pub fn finish(mut self) -> Result<W, io::Error> {
        self.drain();
        if let Some(e) = self.error {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> Recorder for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        self.queue.push(event.clone());
        if self.queue.len() >= DRAIN_THRESHOLD {
            self.drain();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Writer that fails after `ok_writes` successful writes.
    #[derive(Debug)]
    struct FailAfter {
        ok_writes: usize,
        sunk: Vec<u8>,
    }

    impl Write for FailAfter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.ok_writes == 0 {
                return Err(io::Error::other("injected failure"));
            }
            self.ok_writes -= 1;
            self.sunk.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&Event::SideBegin { side: 0 });
        sink.record(&Event::SideEnd {
            side: 0,
            seconds: 1.5,
        });
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], r#"{"ev":"side_begin","side":0}"#);
        assert_eq!(lines[1], r#"{"ev":"side_end","side":0,"seconds":1.5}"#);
    }

    #[test]
    fn first_error_makes_the_sink_inert() {
        let mut sink = JsonlSink::new(FailAfter {
            ok_writes: 1,
            sunk: Vec::new(),
        });
        sink.record(&Event::SideBegin { side: 0 });
        sink.record(&Event::SideBegin { side: 1 });
        // Events are staged; the failure surfaces at the drain.
        assert!(sink.error().is_none());
        sink.drain();
        assert!(sink.error().is_some());
        // Further events are accepted without panicking or writing.
        sink.record(&Event::SideBegin { side: 2 });
        sink.drain();
        let err = sink.finish().unwrap_err();
        assert_eq!(err.to_string(), "injected failure");
    }

    #[test]
    fn queue_drains_at_the_threshold() {
        let mut sink = JsonlSink::new(Vec::new());
        for _ in 0..DRAIN_THRESHOLD {
            sink.record(&Event::SideBegin { side: 0 });
        }
        // The threshold drain already pushed everything to the writer.
        assert_eq!(sink.queue.len(), 0);
        assert!(!sink.writer.is_empty());
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), DRAIN_THRESHOLD);
    }

    #[test]
    fn create_reports_the_path_on_failure() {
        let path = Path::new("/nonexistent-dir-for-copack-obs/trace.jsonl");
        let err = JsonlSink::create(path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("trace.jsonl"), "{msg}");
        let ObsError::Io { source, .. } = &err;
        assert_eq!(source.kind(), io::ErrorKind::NotFound);
    }
}
