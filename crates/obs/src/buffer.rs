//! In-memory event capture.

use crate::event::Event;
use crate::recorder::Recorder;

/// A [`Recorder`] that appends every event to a `Vec`.
///
/// This is the workhorse for tests (assert on the exact event stream),
/// for threaded planning (one buffer per quadrant worker, merged in side
/// order afterwards), and for `--metrics` (summarised after the run).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceBuffer {
    events: Vec<Event>,
    record_rejected: bool,
}

impl TraceBuffer {
    /// An empty buffer that records everything except per-proposal
    /// [`Event::MoveRejected`] events.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer that also opts into [`Event::MoveRejected`]
    /// events (high volume; used by the Metropolis-acceptance tests).
    #[must_use]
    pub fn with_rejected() -> Self {
        Self {
            events: Vec::new(),
            record_rejected: true,
        }
    }

    /// The captured events, in record order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the buffer, yielding the captured events.
    #[must_use]
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    /// Number of captured events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends all of `other`'s events to this buffer, in order.
    /// Deterministic merging is the caller's job: replay per-worker
    /// buffers in a fixed structural order (e.g. package sides in
    /// `QuadrantSide::ALL` order), never in thread-completion order.
    pub fn absorb(&mut self, other: TraceBuffer) {
        self.events.extend(other.into_events());
    }

    /// Appends one event directly (for callers that are not event
    /// sources themselves, e.g. the CLI emitting [`Event::Note`]s).
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }
}

impl Recorder for TraceBuffer {
    fn wants_rejected(&self) -> bool {
        self.record_rejected
    }

    fn record(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_captures_in_order() {
        let mut buf = TraceBuffer::new();
        assert!(buf.enabled());
        assert!(!buf.wants_rejected());
        buf.record(&Event::SideBegin { side: 2 });
        buf.record(&Event::SideEnd {
            side: 2,
            seconds: 0.5,
        });
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.events()[0], Event::SideBegin { side: 2 });
    }

    #[test]
    fn absorb_preserves_order() {
        let mut a = TraceBuffer::new();
        a.record(&Event::SideBegin { side: 0 });
        let mut b = TraceBuffer::new();
        b.record(&Event::SideBegin { side: 1 });
        a.absorb(b);
        assert_eq!(
            a.into_events(),
            vec![Event::SideBegin { side: 0 }, Event::SideBegin { side: 1 }]
        );
    }
}
