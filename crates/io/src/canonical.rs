//! Canonical serialization and content hashing for cache keys.
//!
//! A resident planning service (`copack-serve`) keys its result cache by
//! the *content* of a job, not by file paths or submission order. Two
//! texts that parse to the same [`Quadrant`] — different comments,
//! whitespace, header names, or directive order — must hash identically,
//! and any model difference must change the hash. The canonical form is
//! the writer's output itself: [`crate::write_quadrant`] emits rows
//! bottom-up, net overrides in id order, and geometry with shortest
//! round-trip floats, so `write(parse(text))` is a normal form. Hashing
//! that form (under a fixed header name, so the user-chosen name cannot
//! split the cache) yields a stable 64-bit fingerprint.
//!
//! The hash is FNV-1a: tiny, dependency-free, and plenty for a cache
//! index that tolerates (and re-checks) collisions at the value level.

use copack_geom::Quadrant;

use crate::circuit_format::write_quadrant;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with 64-bit FNV-1a.
///
/// Deterministic across platforms and processes (unlike
/// `std::collections::hash_map::DefaultHasher`, which is seeded), so the
/// value can cross the service protocol and appear in golden files.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The quadrant's canonical circuit-format text.
///
/// The header name is pinned to `canonical` so texts that differ only in
/// their declared name canonicalise identically; everything else is
/// exactly what [`crate::write_quadrant`] writes. Parsing this text
/// yields a quadrant equal to the input (`parse(canonical(q)).1 == q`),
/// and canonicalisation is idempotent.
#[must_use]
pub fn canonical_quadrant_text(quadrant: &Quadrant) -> String {
    write_quadrant("canonical", quadrant)
}

/// Content fingerprint of a quadrant: [`fnv1a64`] over
/// [`canonical_quadrant_text`].
///
/// Invariant under re-serialization round trips: for any text `t`,
/// `quadrant_fingerprint(parse(t)) ==
/// quadrant_fingerprint(parse(write(name, parse(t))))` for every `name`
/// (property-tested in `crates/io/tests/cache_key.rs`).
#[must_use]
pub fn quadrant_fingerprint(quadrant: &Quadrant) -> u64 {
    fnv1a64(canonical_quadrant_text(quadrant).as_bytes())
}

/// Canonical cache-key fragment of a multi-start portfolio's
/// result-affecting parameters.
///
/// The margin travels as raw `f64` bits (`f64::to_bits`), not a decimal
/// rendering, so two margins hash identically exactly when they are the
/// same float — no formatting or rounding can split or merge cache
/// entries. Single-start jobs (`starts ≤ 1`) must omit the fragment
/// entirely (portfolio parameters are inert there), which keeps every
/// pre-portfolio cache key stable; callers enforce that by only
/// appending this for `starts > 1`.
#[must_use]
pub fn canonical_portfolio_params(starts: u32, prune_margin_bits: u64) -> String {
    format!("starts={starts}|prune_margin=0x{prune_margin_bits:016x}|")
}

/// Canonical cache-key fragment of a *cooperative* portfolio mode's
/// result-affecting parameters: the mode tag plus the crossover kick
/// size and the tempering ladder ratio (as raw `f64` bits, same
/// discipline as [`canonical_portfolio_params`]).
///
/// Jobs running the default `race` mode must omit the fragment entirely
/// — mode parameters are inert there — which keeps every pre-mode cache
/// key byte-stable; callers enforce that by only appending this for a
/// non-default mode (and, as with the portfolio fragment, only for
/// `starts > 1`).
#[must_use]
pub fn canonical_portfolio_mode_params(
    mode: &str,
    kick_size: u32,
    ladder_ratio_bits: u64,
) -> String {
    format!("mode={mode}|kick={kick_size}|ladder=0x{ladder_ratio_bits:016x}|")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_quadrant;

    #[test]
    fn fnv_matches_known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fingerprint_ignores_name_comments_and_blank_lines() {
        let a = "quadrant alpha\nrow 10 2 4 7 0\nrow 1 3 5 8\nnet 10 power\n";
        let b = "# a comment\nquadrant beta\n\nrow 10 2 4 7 0   # bottom row\nrow 1 3 5 8\nnet 10 power\n";
        let (_, qa) = parse_quadrant(a).unwrap();
        let (_, qb) = parse_quadrant(b).unwrap();
        assert_eq!(quadrant_fingerprint(&qa), quadrant_fingerprint(&qb));
    }

    #[test]
    fn fingerprint_sees_model_differences() {
        let base = "quadrant t\nrow 1 2 3\nrow 4 5\n";
        let kind = "quadrant t\nrow 1 2 3\nrow 4 5\nnet 2 power\n";
        let order = "quadrant t\nrow 1 3 2\nrow 4 5\n";
        let (_, qb) = parse_quadrant(base).unwrap();
        let (_, qk) = parse_quadrant(kind).unwrap();
        let (_, qo) = parse_quadrant(order).unwrap();
        assert_ne!(quadrant_fingerprint(&qb), quadrant_fingerprint(&qk));
        assert_ne!(quadrant_fingerprint(&qb), quadrant_fingerprint(&qo));
    }

    #[test]
    fn portfolio_params_are_exact_and_injective() {
        let a = canonical_portfolio_params(4, 0.25f64.to_bits());
        assert_eq!(a, "starts=4|prune_margin=0x3fd0000000000000|");
        // Different float bits — even ones that print alike — differ.
        let b = canonical_portfolio_params(4, 0.25000000000000006f64.to_bits());
        assert_ne!(a, b);
        assert_ne!(a, canonical_portfolio_params(5, 0.25f64.to_bits()));
        // Exact bit round trip: the fragment encodes the bits verbatim.
        let bits = 0.1f64.to_bits();
        let frag = canonical_portfolio_params(2, bits);
        let hex = frag
            .split("prune_margin=0x")
            .nth(1)
            .unwrap()
            .trim_end_matches('|');
        assert_eq!(u64::from_str_radix(hex, 16).unwrap(), bits);
    }

    #[test]
    fn portfolio_mode_params_are_exact_and_injective() {
        let a = canonical_portfolio_mode_params("coop", 4, 1.5f64.to_bits());
        assert_eq!(a, "mode=coop|kick=4|ladder=0x3ff8000000000000|");
        assert_ne!(
            a,
            canonical_portfolio_mode_params("temper", 4, 1.5f64.to_bits())
        );
        assert_ne!(
            a,
            canonical_portfolio_mode_params("coop", 8, 1.5f64.to_bits())
        );
        assert_ne!(
            a,
            canonical_portfolio_mode_params("coop", 4, 2.0f64.to_bits())
        );
    }

    #[test]
    fn canonical_text_is_idempotent_and_round_trips() {
        let text = "quadrant x\nrow 10 2 4 7 0\nrow 1 3 5 8\nrow 11 6 9\nnet 10 power tier=2\n";
        let (_, q) = parse_quadrant(text).unwrap();
        let canon = canonical_quadrant_text(&q);
        let (name, reparsed) = parse_quadrant(&canon).unwrap();
        assert_eq!(name, "canonical");
        assert_eq!(reparsed, q);
        assert_eq!(canonical_quadrant_text(&reparsed), canon);
    }
}
