//! Parse errors with line information.

use std::error::Error;
use std::fmt;

use copack_geom::GeomError;

/// An error while parsing a circuit or assignment file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line the error was detected on (0 = end of input).
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The kinds of parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// The file does not start with the expected header keyword.
    MissingHeader {
        /// The keyword that was expected (`quadrant` or `assignment`).
        expected: &'static str,
    },
    /// An unknown directive keyword.
    UnknownDirective {
        /// The offending keyword.
        keyword: String,
    },
    /// A directive had the wrong number or shape of operands.
    BadOperands {
        /// The directive.
        keyword: &'static str,
        /// Human-readable expectation.
        expected: &'static str,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// The unparsable token.
        token: String,
    },
    /// An unknown net kind.
    BadNetKind {
        /// The offending token.
        token: String,
    },
    /// A key=value attribute with an unknown key.
    UnknownAttribute {
        /// The offending key.
        key: String,
    },
    /// The parsed structure failed model validation.
    Model(GeomError),
    /// A directive appeared more than once where only one is allowed.
    Duplicate {
        /// The directive.
        keyword: &'static str,
    },
    /// A versioned file declared a version this build does not read.
    VersionMismatch {
        /// The version token found in the header.
        found: String,
    },
    /// The file ended before a required trailing directive.
    Truncated {
        /// The directive that was expected before end of input.
        expected: &'static str,
    },
    /// The file's integrity checksum does not match its content.
    ChecksumMismatch {
        /// The checksum the file declared.
        declared: u64,
        /// The checksum computed from the parsed content.
        actual: u64,
    },
}

impl ParseError {
    pub(crate) fn new(line: usize, kind: ParseErrorKind) -> Self {
        Self { line, kind }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ParseErrorKind::MissingHeader { expected } => {
                write!(f, "expected a `{expected}` header")
            }
            ParseErrorKind::UnknownDirective { keyword } => {
                write!(f, "unknown directive `{keyword}`")
            }
            ParseErrorKind::BadOperands { keyword, expected } => {
                write!(f, "`{keyword}` expects {expected}")
            }
            ParseErrorKind::BadNumber { token } => write!(f, "`{token}` is not a number"),
            ParseErrorKind::BadNetKind { token } => {
                write!(f, "`{token}` is not a net kind (signal/power/ground)")
            }
            ParseErrorKind::UnknownAttribute { key } => {
                write!(f, "unknown attribute `{key}`")
            }
            ParseErrorKind::Model(e) => write!(f, "invalid model: {e}"),
            ParseErrorKind::Duplicate { keyword } => {
                write!(f, "directive `{keyword}` given twice")
            }
            ParseErrorKind::VersionMismatch { found } => {
                write!(f, "unsupported version `{found}`")
            }
            ParseErrorKind::Truncated { expected } => {
                write!(f, "file truncated: missing `{expected}`")
            }
            ParseErrorKind::ChecksumMismatch { declared, actual } => {
                write!(
                    f,
                    "checksum mismatch: file declares 0x{declared:016x}, content hashes to \
                     0x{actual:016x}"
                )
            }
        }
    }
}

impl Error for ParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.kind {
            ParseErrorKind::Model(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_line_numbers() {
        let e = ParseError::new(
            7,
            ParseErrorKind::UnknownDirective {
                keyword: "frobnicate".into(),
            },
        );
        let s = e.to_string();
        assert!(s.contains("line 7"));
        assert!(s.contains("frobnicate"));
    }

    #[test]
    fn model_errors_chain() {
        let e = ParseError::new(1, ParseErrorKind::Model(GeomError::NoRows));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<ParseError>();
    }
}
