//! The `.tune` profile format — reusable auto-tuning results.
//!
//! `copack tune` sweeps SA schedules, Eq. 3 weights, and portfolio knobs
//! over a circuit family and distils the winners into a **tuning
//! profile**: one tuned configuration per *instance class*, where a
//! class is the coarse feature bucket of a quadrant ([`ClassKey`]:
//! net-count bucket, finger-row count, ψ stacking tiers, supply-net
//! fraction). `copack plan`, `copack replan`, and `copack serve` load a
//! profile with `--profile` and pick the config whose class matches the
//! instance at hand; unknown classes fall back to the built-in defaults.
//!
//! The format follows the repo's text-format rules (line-based,
//! `#`-commented, exact `parse(write(p)) == p` round trip) with two
//! extra obligations the other formats don't need:
//!
//! * **byte exactness** — every `f64` travels as its IEEE-754 bit
//!   pattern in hex (`0x3fd0000000000000`), never as a decimal
//!   rendering, because a profile is a determinism artifact: the same
//!   tuning run must emit byte-identical files across thread counts and
//!   reruns, and a loaded profile must reproduce the exact floats the
//!   tuner measured;
//! * **integrity** — the file ends with a `checksum` line holding
//!   FNV-1a over the canonical body (everything [`write_tune`] emits
//!   before the checksum line). A truncated, corrupted, or hand-edited
//!   profile is rejected with a typed error instead of silently
//!   steering the annealer with garbage.

use std::fmt;

use copack_core::{CostWeights, ExchangeConfig, PortfolioConfig, PortfolioMode, Schedule};
use copack_geom::Quadrant;

use crate::canonical::fnv1a64;
use crate::error::{ParseError, ParseErrorKind};

/// The only version this build reads and writes.
pub const TUNE_VERSION: u32 = 1;

/// The coarse feature bucket a tuned configuration applies to.
///
/// Buckets deliberately quantise hard: tuning generalises across
/// instances of similar *shape*, not across exact net counts, and a
/// coarse key means a profile tuned on a family covers unseen members
/// of the same family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassKey {
    /// Net count rounded up to the next power of two.
    pub nets: u32,
    /// Ball-row count, exact (the paper's instances use 4; `large` uses
    /// more).
    pub rows: u32,
    /// ψ — the number of stacking tiers in use (max tier id over nets).
    pub tiers: u8,
    /// Supply-net (power + ground) share of all nets, rounded to the
    /// nearest 25 %.
    pub power_pct: u8,
}

impl fmt::Display for ClassKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n{}-r{}-t{}-p{}",
            self.nets, self.rows, self.tiers, self.power_pct
        )
    }
}

impl ClassKey {
    /// Parses the `n..-r..-t..-p..` display form back into a key.
    fn parse(token: &str) -> Option<Self> {
        let mut parts = token.split('-');
        let nets = parts.next()?.strip_prefix('n')?.parse().ok()?;
        let rows = parts.next()?.strip_prefix('r')?.parse().ok()?;
        let tiers = parts.next()?.strip_prefix('t')?.parse().ok()?;
        let power_pct = parts.next()?.strip_prefix('p')?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(Self {
            nets,
            rows,
            tiers,
            power_pct,
        })
    }
}

/// The feature bucket of one quadrant — what `--profile` keys on.
#[must_use]
pub fn classify_quadrant(quadrant: &Quadrant) -> ClassKey {
    let nets = quadrant.net_count() as u32;
    let supply = quadrant.nets().filter(|n| n.kind.is_supply()).count();
    let tiers = quadrant.nets().map(|n| n.tier.get()).max().unwrap_or(1);
    let fraction = if quadrant.net_count() == 0 {
        0.0
    } else {
        supply as f64 / quadrant.net_count() as f64
    };
    ClassKey {
        nets: nets.max(1).next_power_of_two(),
        rows: quadrant.row_count() as u32,
        tiers,
        power_pct: ((fraction * 4.0).round() * 25.0) as u8,
    }
}

/// One tuned configuration: the result-affecting knobs of an exchange
/// run plus the portfolio shape it should race under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassConfig {
    /// SA cooling factor per temperature step.
    pub cooling: f64,
    /// Initial temperature as a fraction of the initial cost.
    pub initial_temp_factor: f64,
    /// Final/initial temperature ratio (schedule length).
    pub final_temp_ratio: f64,
    /// Proposed moves per temperature step per finger.
    pub moves_per_temp: u32,
    /// Eq. 3 λ — IR-drop weight.
    pub lambda: f64,
    /// Eq. 3 ρ — increased-density weight.
    pub rho: f64,
    /// Eq. 3 φ — wire-balance weight.
    pub phi: f64,
    /// Eq. 3 μ — net-separation margin weight.
    pub margin: f64,
    /// Portfolio starts K.
    pub starts: u32,
    /// Portfolio prune margin.
    pub prune_margin: f64,
    /// Portfolio mode (race / coop / temper).
    pub mode: PortfolioMode,
    /// Coop crossover kick size.
    pub kick_size: u32,
    /// Temper ladder ratio.
    pub ladder_ratio: f64,
}

impl ClassConfig {
    /// Captures the tunable knobs of an exchange + portfolio config
    /// pair (the rest — seed, acceptance rule, IR objective — are not
    /// part of the trial space and stay with the caller).
    #[must_use]
    pub fn from_configs(config: &ExchangeConfig, portfolio: &PortfolioConfig) -> Self {
        Self {
            cooling: config.schedule.cooling,
            initial_temp_factor: config.schedule.initial_temp_factor,
            final_temp_ratio: config.schedule.final_temp_ratio,
            moves_per_temp: config.schedule.moves_per_temp_per_finger as u32,
            lambda: config.weights.lambda,
            rho: config.weights.rho,
            phi: config.weights.phi,
            margin: config.weights.margin,
            starts: portfolio.starts,
            prune_margin: portfolio.prune_margin,
            mode: portfolio.mode,
            kick_size: portfolio.kick_size,
            ladder_ratio: portfolio.ladder_ratio,
        }
    }

    /// Writes the tuned knobs into `config` and `portfolio`, leaving
    /// every untuned field (seed, acceptance, IR objective, sync
    /// epochs, threads) untouched.
    pub fn apply(&self, config: &mut ExchangeConfig, portfolio: &mut PortfolioConfig) {
        config.schedule.cooling = self.cooling;
        config.schedule.initial_temp_factor = self.initial_temp_factor;
        config.schedule.final_temp_ratio = self.final_temp_ratio;
        config.schedule.moves_per_temp_per_finger = self.moves_per_temp as usize;
        config.weights = CostWeights {
            lambda: self.lambda,
            rho: self.rho,
            phi: self.phi,
            margin: self.margin,
        };
        portfolio.starts = self.starts;
        portfolio.prune_margin = self.prune_margin;
        portfolio.mode = self.mode;
        portfolio.kick_size = self.kick_size;
        portfolio.ladder_ratio = self.ladder_ratio;
    }

    /// The built-in defaults as a class config — what unknown classes
    /// fall back to.
    #[must_use]
    pub fn default_config() -> Self {
        Self::from_configs(
            &ExchangeConfig {
                schedule: Schedule::default(),
                ..ExchangeConfig::default()
            },
            &PortfolioConfig::default(),
        )
    }
}

/// A parsed tuning profile: per-class tuned configs plus the provenance
/// needed to reproduce the tuning run (base seed, trial-space
/// fingerprint).
#[derive(Debug, Clone, PartialEq)]
pub struct TuneProfile {
    /// Base seed every trial seed was derived from.
    pub seed: u64,
    /// FNV-1a fingerprint of the trial space the profile was tuned
    /// over.
    pub space_fingerprint: u64,
    /// `(class, tuned config)` pairs, sorted by class key — the writer
    /// sorts, and the parser rejects duplicates, so equal profiles
    /// serialise byte-equally.
    pub classes: Vec<(ClassKey, ClassConfig)>,
}

impl TuneProfile {
    /// The tuned config for `key`, or `None` (callers fall back to
    /// defaults — an unknown class must never fail a plan).
    #[must_use]
    pub fn lookup(&self, key: &ClassKey) -> Option<&ClassConfig> {
        self.classes.iter().find(|(k, _)| k == key).map(|(_, c)| c)
    }

    /// The tuned config for `quadrant`'s class, or the built-in
    /// defaults.
    #[must_use]
    pub fn config_for(&self, quadrant: &Quadrant) -> ClassConfig {
        self.lookup(&classify_quadrant(quadrant))
            .copied()
            .unwrap_or_else(ClassConfig::default_config)
    }

    /// Content fingerprint of the whole profile — what `copack-serve`
    /// folds into cache keys so results planned under different
    /// profiles never collide.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(write_tune(self).as_bytes())
    }
}

fn hex_bits(v: f64) -> String {
    format!("0x{:016x}", v.to_bits())
}

fn body_of(profile: &TuneProfile) -> String {
    let mut out = String::new();
    out.push_str(&format!("tune-profile v{TUNE_VERSION}\n"));
    out.push_str(&format!("seed {}\n", profile.seed));
    out.push_str(&format!("space 0x{:016x}\n", profile.space_fingerprint));
    let mut classes = profile.classes.clone();
    classes.sort_by_key(|entry| entry.0);
    let defaults = ClassConfig::default_config();
    for (key, c) in &classes {
        out.push_str(&format!(
            "class {key} cooling={} itf={} ftr={} moves={} lambda={} rho={} phi={} \
             margin={} starts={} prune={}",
            hex_bits(c.cooling),
            hex_bits(c.initial_temp_factor),
            hex_bits(c.final_temp_ratio),
            c.moves_per_temp,
            hex_bits(c.lambda),
            hex_bits(c.rho),
            hex_bits(c.phi),
            hex_bits(c.margin),
            c.starts,
            hex_bits(c.prune_margin),
        ));
        // The cooperative-mode attributes are emitted only when they
        // deviate from the built-in defaults: a default-valued knob
        // serialises to the exact byte stream the pre-mode writer
        // produced, so old profiles re-checksum unchanged, and the
        // parser's default-fill makes parse(write(p)) == p either way.
        if c.mode != defaults.mode {
            out.push_str(&format!(" mode={}", c.mode.as_str()));
        }
        if c.kick_size != defaults.kick_size {
            out.push_str(&format!(" kick={}", c.kick_size));
        }
        if c.ladder_ratio.to_bits() != defaults.ladder_ratio.to_bits() {
            out.push_str(&format!(" ladder={}", hex_bits(c.ladder_ratio)));
        }
        out.push('\n');
    }
    out
}

/// Serialises a profile, classes sorted, floats as bit patterns, with
/// the trailing integrity checksum. `parse_tune(write_tune(p))`
/// reconstructs `p` exactly (modulo class sort order, which the writer
/// normalises).
#[must_use]
pub fn write_tune(profile: &TuneProfile) -> String {
    let body = body_of(profile);
    let checksum = fnv1a64(body.as_bytes());
    format!("{body}checksum 0x{checksum:016x}\n")
}

fn bad_number(line: usize, token: &str) -> ParseError {
    ParseError::new(
        line,
        ParseErrorKind::BadNumber {
            token: token.to_owned(),
        },
    )
}

fn parse_u64(line: usize, token: &str) -> Result<u64, ParseError> {
    token.parse().map_err(|_| bad_number(line, token))
}

fn parse_hex64(line: usize, token: &str) -> Result<u64, ParseError> {
    token
        .strip_prefix("0x")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| bad_number(line, token))
}

fn parse_bits_f64(line: usize, token: &str) -> Result<f64, ParseError> {
    Ok(f64::from_bits(parse_hex64(line, token)?))
}

/// Parses a `.tune` profile.
///
/// Rejections are typed: a wrong or missing version header is
/// [`ParseErrorKind::VersionMismatch`], a missing checksum line is
/// [`ParseErrorKind::Truncated`], and a checksum that does not match
/// the canonical body is [`ParseErrorKind::ChecksumMismatch`] — so
/// callers can distinguish "old profile, re-tune" from "corrupt file".
pub fn parse_tune(text: &str) -> Result<TuneProfile, ParseError> {
    let mut seed: Option<u64> = None;
    let mut space: Option<u64> = None;
    let mut classes: Vec<(ClassKey, ClassConfig)> = Vec::new();
    let mut saw_header = false;
    let mut declared_checksum: Option<u64> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        if declared_checksum.is_some() {
            // Nothing may follow the checksum line — trailing content
            // is by definition outside the integrity envelope.
            return Err(ParseError::new(
                line,
                ParseErrorKind::UnknownDirective {
                    keyword: content.split_whitespace().next().unwrap_or("").to_owned(),
                },
            ));
        }
        let mut tokens = content.split_whitespace();
        let keyword = tokens.next().unwrap_or("");
        if !saw_header {
            if keyword != "tune-profile" {
                return Err(ParseError::new(
                    line,
                    ParseErrorKind::MissingHeader {
                        expected: "tune-profile",
                    },
                ));
            }
            let version = tokens.next().unwrap_or("");
            if version != format!("v{TUNE_VERSION}") {
                return Err(ParseError::new(
                    line,
                    ParseErrorKind::VersionMismatch {
                        found: version.to_owned(),
                    },
                ));
            }
            saw_header = true;
            continue;
        }
        match keyword {
            "seed" => {
                if seed.is_some() {
                    return Err(ParseError::new(
                        line,
                        ParseErrorKind::Duplicate { keyword: "seed" },
                    ));
                }
                let token = tokens.next().ok_or_else(|| {
                    ParseError::new(
                        line,
                        ParseErrorKind::BadOperands {
                            keyword: "seed",
                            expected: "one integer",
                        },
                    )
                })?;
                seed = Some(parse_u64(line, token)?);
            }
            "space" => {
                if space.is_some() {
                    return Err(ParseError::new(
                        line,
                        ParseErrorKind::Duplicate { keyword: "space" },
                    ));
                }
                let token = tokens.next().ok_or_else(|| {
                    ParseError::new(
                        line,
                        ParseErrorKind::BadOperands {
                            keyword: "space",
                            expected: "one 0x-prefixed fingerprint",
                        },
                    )
                })?;
                space = Some(parse_hex64(line, token)?);
            }
            "class" => {
                let key_token = tokens.next().ok_or_else(|| {
                    ParseError::new(
                        line,
                        ParseErrorKind::BadOperands {
                            keyword: "class",
                            expected: "a class key and key=value attributes",
                        },
                    )
                })?;
                let key = ClassKey::parse(key_token).ok_or_else(|| {
                    ParseError::new(
                        line,
                        ParseErrorKind::BadOperands {
                            keyword: "class",
                            expected: "a key shaped like n64-r4-t1-p25",
                        },
                    )
                })?;
                if classes.iter().any(|(k, _)| *k == key) {
                    return Err(ParseError::new(
                        line,
                        ParseErrorKind::Duplicate { keyword: "class" },
                    ));
                }
                let mut config = ClassConfig::default_config();
                let mut seen: Vec<&str> = Vec::new();
                for attr in tokens {
                    let (k, v) = attr.split_once('=').ok_or_else(|| {
                        ParseError::new(
                            line,
                            ParseErrorKind::BadOperands {
                                keyword: "class",
                                expected: "key=value attributes",
                            },
                        )
                    })?;
                    if seen.contains(&k) {
                        return Err(ParseError::new(
                            line,
                            ParseErrorKind::Duplicate { keyword: "class" },
                        ));
                    }
                    match k {
                        "cooling" => config.cooling = parse_bits_f64(line, v)?,
                        "itf" => config.initial_temp_factor = parse_bits_f64(line, v)?,
                        "ftr" => config.final_temp_ratio = parse_bits_f64(line, v)?,
                        "moves" => {
                            config.moves_per_temp = v.parse().map_err(|_| bad_number(line, v))?;
                        }
                        "lambda" => config.lambda = parse_bits_f64(line, v)?,
                        "rho" => config.rho = parse_bits_f64(line, v)?,
                        "phi" => config.phi = parse_bits_f64(line, v)?,
                        "margin" => config.margin = parse_bits_f64(line, v)?,
                        "starts" => {
                            config.starts = v.parse().map_err(|_| bad_number(line, v))?;
                        }
                        "prune" => config.prune_margin = parse_bits_f64(line, v)?,
                        "mode" => {
                            config.mode = PortfolioMode::parse(v).ok_or_else(|| {
                                ParseError::new(
                                    line,
                                    ParseErrorKind::BadOperands {
                                        keyword: "class",
                                        expected: "mode=race|coop|temper",
                                    },
                                )
                            })?;
                        }
                        "kick" => {
                            config.kick_size = v.parse().map_err(|_| bad_number(line, v))?;
                        }
                        "ladder" => config.ladder_ratio = parse_bits_f64(line, v)?,
                        _ => {
                            return Err(ParseError::new(
                                line,
                                ParseErrorKind::UnknownAttribute { key: k.to_owned() },
                            ))
                        }
                    }
                    seen.push(k);
                }
                classes.push((key, config));
            }
            "checksum" => {
                let token = tokens.next().ok_or_else(|| {
                    ParseError::new(
                        line,
                        ParseErrorKind::BadOperands {
                            keyword: "checksum",
                            expected: "one 0x-prefixed FNV-1a value",
                        },
                    )
                })?;
                declared_checksum = Some(parse_hex64(line, token)?);
            }
            other => {
                return Err(ParseError::new(
                    line,
                    ParseErrorKind::UnknownDirective {
                        keyword: other.to_owned(),
                    },
                ))
            }
        }
    }

    if !saw_header {
        return Err(ParseError::new(
            0,
            ParseErrorKind::MissingHeader {
                expected: "tune-profile",
            },
        ));
    }
    let Some(declared) = declared_checksum else {
        // No checksum line: the file was cut off before its integrity
        // footer.
        return Err(ParseError::new(
            0,
            ParseErrorKind::Truncated {
                expected: "checksum",
            },
        ));
    };
    let profile = TuneProfile {
        seed: seed
            .ok_or_else(|| ParseError::new(0, ParseErrorKind::Truncated { expected: "seed" }))?,
        space_fingerprint: space
            .ok_or_else(|| ParseError::new(0, ParseErrorKind::Truncated { expected: "space" }))?,
        classes,
    };
    // The checksum covers the *canonical* body, so corruption anywhere
    // in the parsed content — and any hand edit that changes meaning —
    // is caught, while comments and whitespace stay free.
    let actual = fnv1a64(body_of(&profile).as_bytes());
    if actual != declared {
        return Err(ParseError::new(
            0,
            ParseErrorKind::ChecksumMismatch { declared, actual },
        ));
    }
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TuneProfile {
        let mut tuned = ClassConfig::default_config();
        tuned.cooling = 0.87;
        tuned.lambda = 650.0;
        tuned.starts = 2;
        TuneProfile {
            seed: 0xC0DE,
            space_fingerprint: 0x1234_5678_9abc_def0,
            classes: vec![
                (
                    ClassKey {
                        nets: 32,
                        rows: 4,
                        tiers: 1,
                        power_pct: 25,
                    },
                    tuned,
                ),
                (
                    ClassKey {
                        nets: 64,
                        rows: 4,
                        tiers: 3,
                        power_pct: 50,
                    },
                    ClassConfig::default_config(),
                ),
            ],
        }
    }

    #[test]
    fn round_trips_exactly() {
        let p = sample();
        let text = write_tune(&p);
        let parsed = parse_tune(&text).unwrap();
        assert_eq!(parsed, p);
        assert_eq!(write_tune(&parsed), text);
    }

    #[test]
    fn mode_attributes_round_trip_and_default_ones_are_omitted() {
        let mut p = sample();
        p.classes[0].1.mode = PortfolioMode::Temper;
        p.classes[0].1.kick_size = 8;
        p.classes[0].1.ladder_ratio = 2.0;
        let text = write_tune(&p);
        assert!(text.contains(" mode=temper"), "{text}");
        assert!(text.contains(" kick=8"), "{text}");
        assert!(
            text.contains(&format!(" ladder={}", hex_bits(2.0))),
            "{text}"
        );
        assert_eq!(parse_tune(&text).unwrap(), p);
        // Default-valued knobs never serialise: the sample profile's
        // byte stream is identical to what the pre-mode writer emitted,
        // so profiles written before the cooperative modes still
        // checksum clean.
        let default_text = write_tune(&sample());
        assert!(!default_text.contains("mode="), "{default_text}");
        assert!(!default_text.contains("kick="), "{default_text}");
        assert!(!default_text.contains("ladder="), "{default_text}");
    }

    #[test]
    fn bad_mode_tag_is_typed() {
        let mut p = sample();
        p.classes[0].1.mode = PortfolioMode::Coop;
        let text = write_tune(&p).replacen("mode=coop", "mode=boil", 1);
        let err = parse_tune(&text).unwrap_err();
        assert!(
            matches!(
                err.kind,
                ParseErrorKind::BadOperands {
                    keyword: "class",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn writer_is_sorted_and_stable() {
        let mut p = sample();
        p.classes.reverse();
        assert_eq!(write_tune(&p), write_tune(&sample()));
    }

    #[test]
    fn version_mismatch_is_typed() {
        let text = write_tune(&sample()).replacen("v1", "v9", 1);
        let err = parse_tune(&text).unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::VersionMismatch { ref found } if found == "v9"
        ));
    }

    #[test]
    fn truncation_is_typed() {
        let text = write_tune(&sample());
        let cut = text.rsplit_once("checksum").unwrap().0;
        let err = parse_tune(cut).unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::Truncated {
                expected: "checksum"
            }
        ));
    }

    #[test]
    fn corruption_is_typed() {
        let text = write_tune(&sample());
        // Flip one hex digit inside a float's bit pattern: still
        // parseable, semantically different, so the checksum trips.
        let corrupt = text.replacen("cooling=0x3f", "cooling=0x3e", 1);
        assert_ne!(corrupt, text, "corruption must hit a digit");
        let err = parse_tune(&corrupt).unwrap_err();
        assert!(
            matches!(err.kind, ParseErrorKind::ChecksumMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn comments_and_whitespace_are_free() {
        let text = write_tune(&sample());
        let relaxed = format!("# tuned on table1\n\n{}", text.replace("seed", "seed "));
        assert_eq!(parse_tune(&relaxed).unwrap(), sample());
    }

    #[test]
    fn trailing_content_after_checksum_is_rejected() {
        let mut text = write_tune(&sample());
        text.push_str("seed 7\n");
        assert!(parse_tune(&text).is_err());
    }

    #[test]
    fn unknown_class_falls_back_to_defaults() {
        let p = sample();
        let missing = ClassKey {
            nets: 1024,
            rows: 9,
            tiers: 8,
            power_pct: 75,
        };
        assert!(p.lookup(&missing).is_none());
    }

    #[test]
    fn classify_buckets_features() {
        let (_, q) = crate::parse_quadrant(
            "quadrant t\nrow 10 2 4 7 0\nrow 1 3 5 8\nrow 11 6 9\nnet 10 power\nnet 11 ground\nnet 6 signal tier=2\n",
        )
        .unwrap();
        let key = classify_quadrant(&q);
        assert_eq!(key.nets, 16); // 12 nets → next power of two
        assert_eq!(key.rows, 3);
        assert_eq!(key.tiers, 2);
        assert_eq!(key.power_pct, 25); // 2/12 ≈ 17 % → nearest 25
        assert_eq!(key.to_string(), "n16-r3-t2-p25");
        assert_eq!(ClassKey::parse("n16-r3-t2-p25"), Some(key));
    }

    #[test]
    fn apply_respects_untuned_fields() {
        let mut config = ExchangeConfig {
            seed: 42,
            ..ExchangeConfig::default()
        };
        let mut portfolio = PortfolioConfig {
            threads: 3,
            ..PortfolioConfig::default()
        };
        let mut tuned = ClassConfig::default_config();
        tuned.cooling = 0.5;
        tuned.starts = 8;
        tuned.apply(&mut config, &mut portfolio);
        assert_eq!(config.seed, 42);
        assert_eq!(portfolio.threads, 3);
        assert_eq!(config.schedule.cooling, 0.5);
        assert_eq!(portfolio.starts, 8);
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = sample();
        let mut b = sample();
        b.classes[0].1.lambda = 651.0;
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), sample().fingerprint());
    }
}
