//! The circuit (quadrant) text format.
//!
//! ```text
//! # comment
//! quadrant <name>
//! geometry ball_pitch=1.2 finger_pitch=0.106 finger_width=0.1 \
//!          finger_height=0.2 via_diameter=0.1 ball_diameter=0.2   # one line
//! fingers 24                  # optional; default = net count
//! row 10 2 4 7 0              # bottom row first (y = 1)
//! row 1 3 5 8
//! row 11 6 9
//! net 10 power                # optional per-net overrides
//! net 3 signal tier=2
//! ```

use std::fmt::Write as _;

use copack_geom::{NetKind, Quadrant, QuadrantGeometry, TierId};

use crate::error::{ParseError, ParseErrorKind};
use crate::ParseError as E;

/// Parses a quadrant file; returns the declared name and the quadrant.
///
/// # Errors
///
/// Returns [`ParseError`] with the offending line for any syntax or model
/// violation.
pub fn parse_quadrant(text: &str) -> Result<(String, Quadrant), E> {
    let mut name: Option<String> = None;
    let mut geometry: Option<QuadrantGeometry> = None;
    let mut fingers: Option<usize> = None;
    let mut builder = Quadrant::builder();
    let mut saw_row = false;
    let mut overrides: Vec<(usize, u32, NetKind, Option<TierId>)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw);
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let keyword = tokens.next().expect("non-empty line has a token");
        let rest: Vec<&str> = tokens.collect();
        match keyword {
            "quadrant" => {
                if name.is_some() {
                    return Err(ParseError::new(
                        line_no,
                        ParseErrorKind::Duplicate {
                            keyword: "quadrant",
                        },
                    ));
                }
                if rest.is_empty() {
                    return Err(bad(line_no, "quadrant", "a name"));
                }
                name = Some(rest.join(" "));
            }
            "geometry" => {
                if geometry.is_some() {
                    return Err(ParseError::new(
                        line_no,
                        ParseErrorKind::Duplicate {
                            keyword: "geometry",
                        },
                    ));
                }
                geometry = Some(parse_geometry(line_no, &rest)?);
            }
            "fingers" => {
                if fingers.is_some() {
                    return Err(ParseError::new(
                        line_no,
                        ParseErrorKind::Duplicate { keyword: "fingers" },
                    ));
                }
                if rest.len() != 1 {
                    return Err(bad(line_no, "fingers", "one count"));
                }
                fingers = Some(parse_num::<usize>(line_no, rest[0])?);
            }
            "row" => {
                if rest.is_empty() {
                    return Err(bad(line_no, "row", "at least one net id"));
                }
                let ids: Vec<u32> = rest
                    .iter()
                    .map(|t| parse_num::<u32>(line_no, t))
                    .collect::<Result<_, _>>()?;
                builder = builder.row(ids);
                saw_row = true;
            }
            "net" => {
                if rest.len() < 2 || rest.len() > 3 {
                    return Err(bad(line_no, "net", "`<id> <kind> [tier=<d>]`"));
                }
                let id = parse_num::<u32>(line_no, rest[0])?;
                let kind = match rest[1] {
                    "signal" => NetKind::Signal,
                    "power" => NetKind::Power,
                    "ground" => NetKind::Ground,
                    other => {
                        return Err(ParseError::new(
                            line_no,
                            ParseErrorKind::BadNetKind {
                                token: other.to_owned(),
                            },
                        ))
                    }
                };
                let tier = match rest.get(2) {
                    None => None,
                    Some(attr) => {
                        let (key, value) = split_attr(line_no, attr)?;
                        if key != "tier" {
                            return Err(ParseError::new(
                                line_no,
                                ParseErrorKind::UnknownAttribute {
                                    key: key.to_owned(),
                                },
                            ));
                        }
                        let d = parse_num::<u8>(line_no, value)?;
                        if d == 0 {
                            return Err(ParseError::new(
                                line_no,
                                ParseErrorKind::BadNumber {
                                    token: value.to_owned(),
                                },
                            ));
                        }
                        Some(TierId::new(d))
                    }
                };
                overrides.push((line_no, id, kind, tier));
            }
            other => {
                return Err(ParseError::new(
                    line_no,
                    ParseErrorKind::UnknownDirective {
                        keyword: other.to_owned(),
                    },
                ))
            }
        }
    }

    let name = name.ok_or_else(|| {
        ParseError::new(
            0,
            ParseErrorKind::MissingHeader {
                expected: "quadrant",
            },
        )
    })?;
    if !saw_row {
        return Err(ParseError::new(
            0,
            ParseErrorKind::Model(copack_geom::GeomError::NoRows),
        ));
    }
    if let Some(g) = geometry {
        builder = builder.geometry(g);
    }
    if let Some(f) = fingers {
        builder = builder.fingers(f);
    }
    let mut last_override_line = 0;
    for (line_no, id, kind, tier) in overrides {
        last_override_line = line_no;
        builder = builder.net_kind(id, kind);
        if let Some(t) = tier {
            builder = builder.net_tier(id, t);
        }
    }
    let quadrant = builder
        .build()
        .map_err(|e| ParseError::new(last_override_line, ParseErrorKind::Model(e)))?;
    Ok((name, quadrant))
}

/// Writes a quadrant in the circuit format (parsable by
/// [`parse_quadrant`]).
#[must_use]
pub fn write_quadrant(name: &str, quadrant: &Quadrant) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "quadrant {name}");
    let g = quadrant.geometry();
    let _ = writeln!(
        out,
        "geometry ball_pitch={} finger_pitch={} finger_width={} finger_height={} \
         via_diameter={} ball_diameter={}",
        g.ball_pitch,
        g.finger_pitch,
        g.finger_width,
        g.finger_height,
        g.via_diameter,
        g.ball_diameter
    );
    if quadrant.finger_count() != quadrant.net_count() {
        let _ = writeln!(out, "fingers {}", quadrant.finger_count());
    }
    for (_, nets) in quadrant.rows_bottom_up() {
        let ids: Vec<String> = nets.iter().map(|n| n.raw().to_string()).collect();
        let _ = writeln!(out, "row {}", ids.join(" "));
    }
    for net in quadrant.nets() {
        let needs_kind = net.kind != NetKind::Signal;
        let needs_tier = net.tier != TierId::BASE;
        if needs_kind || needs_tier {
            let _ = write!(out, "net {} {}", net.id.raw(), net.kind);
            if needs_tier {
                let _ = write!(out, " tier={}", net.tier.get());
            }
            let _ = writeln!(out);
        }
    }
    out
}

pub(crate) fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => line[..i].trim(),
        None => line.trim(),
    }
}

pub(crate) fn bad(line: usize, keyword: &'static str, expected: &'static str) -> E {
    ParseError::new(line, ParseErrorKind::BadOperands { keyword, expected })
}

pub(crate) fn parse_num<T: std::str::FromStr>(line: usize, token: &str) -> Result<T, E> {
    token.parse().map_err(|_| {
        ParseError::new(
            line,
            ParseErrorKind::BadNumber {
                token: token.to_owned(),
            },
        )
    })
}

pub(crate) fn split_attr(line: usize, token: &str) -> Result<(&str, &str), E> {
    token.split_once('=').ok_or_else(|| {
        ParseError::new(
            line,
            ParseErrorKind::BadOperands {
                keyword: "net",
                expected: "`key=value` attributes",
            },
        )
    })
}

pub(crate) fn parse_geometry(line: usize, tokens: &[&str]) -> Result<QuadrantGeometry, E> {
    let mut g = QuadrantGeometry::default();
    for token in tokens {
        let (key, value) = split_attr(line, token)?;
        let v: f64 = parse_num(line, value)?;
        match key {
            "ball_pitch" => g.ball_pitch = v,
            "finger_pitch" => g.finger_pitch = v,
            "finger_width" => g.finger_width = v,
            "finger_height" => g.finger_height = v,
            "via_diameter" => g.via_diameter = v,
            "ball_diameter" => g.ball_diameter = v,
            other => {
                return Err(ParseError::new(
                    line,
                    ParseErrorKind::UnknownAttribute {
                        key: other.to_owned(),
                    },
                ))
            }
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG5: &str = "\
# the paper's Fig. 5 instance
quadrant fig5
row 10 2 4 7 0
row 1 3 5 8
row 11 6 9
net 10 power
net 0 ground tier=2
";

    #[test]
    fn parses_the_fig5_file() {
        let (name, q) = parse_quadrant(FIG5).unwrap();
        assert_eq!(name, "fig5");
        assert_eq!(q.net_count(), 12);
        assert_eq!(q.row_count(), 3);
        assert_eq!(q.net(10.into()).unwrap().kind, NetKind::Power);
        assert_eq!(q.net(0.into()).unwrap().tier, TierId::new(2));
    }

    #[test]
    fn round_trips() {
        let (_, q) = parse_quadrant(FIG5).unwrap();
        let (name, q2) = parse_quadrant(&write_quadrant("fig5", &q)).unwrap();
        assert_eq!(name, "fig5");
        assert_eq!(q, q2);
    }

    #[test]
    fn geometry_and_fingers_round_trip() {
        let text = "\
quadrant g
geometry ball_pitch=2 finger_pitch=0.5 finger_width=0.3 finger_height=0.4 via_diameter=0.1 ball_diameter=0.2
fingers 6
row 1 2 3
";
        let (_, q) = parse_quadrant(text).unwrap();
        assert_eq!(q.geometry().ball_pitch, 2.0);
        assert_eq!(q.finger_count(), 6);
        let (_, q2) = parse_quadrant(&write_quadrant("g", &q)).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_quadrant("quadrant x\nrow 1\nbogus 3\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(matches!(err.kind, ParseErrorKind::UnknownDirective { .. }));
    }

    #[test]
    fn rejects_missing_header_and_rows() {
        let err = parse_quadrant("row 1 2\n").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MissingHeader { .. }));
        let err = parse_quadrant("quadrant x\n").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Model(_)));
    }

    #[test]
    fn rejects_bad_tokens() {
        for (text, expect_line) in [
            ("quadrant x\nrow 1 oops\n", 2),
            ("quadrant x\nrow 1\nnet 1 mains\n", 3),
            ("quadrant x\nrow 1\nnet 1 power tier=zero\n", 3),
            ("quadrant x\nrow 1\nnet 1 power tier=0\n", 3),
            ("quadrant x\nrow 1\nnet 1 power volt=2\n", 3),
            ("quadrant x\ngeometry ball_pitch=abc\nrow 1\n", 2),
            ("quadrant x\ngeometry warp=1\nrow 1\n", 2),
        ] {
            let err = parse_quadrant(text).unwrap_err();
            assert_eq!(err.line, expect_line, "{text:?} -> {err}");
        }
    }

    #[test]
    fn rejects_duplicates_and_model_violations() {
        let err = parse_quadrant("quadrant a\nquadrant b\nrow 1\n").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Duplicate { .. }));
        // Net 9 is not on any ball: a model error at the `net` line.
        let err = parse_quadrant("quadrant a\nrow 1 2\nnet 9 power\n").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Model(_)));
        assert_eq!(err.line, 3);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n  # leading comment\nquadrant c  # trailing\n\nrow 1 2 # nets\n";
        let (name, q) = parse_quadrant(text).unwrap();
        assert_eq!(name, "c");
        assert_eq!(q.net_count(), 2);
    }
}
