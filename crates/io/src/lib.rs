//! Text formats for finger/pad planning: circuit netlists and assignments.
//!
//! Commercial pad-planning flows exchange problems and results as plain
//! text; this crate defines the `copack` equivalents so quadrants and
//! assignments can be stored, versioned, and fed to the CLI:
//!
//! * the **circuit format** (`.copack`) describes one quadrant: geometry,
//!   ball rows (bottom-up), and per-net kind/tier overrides;
//! * the **assignment format** stores a finger order for a named circuit;
//! * the **delta format** (`.edits`) is an ECO edit script — per-quadrant
//!   edit lists consumed by `copack replan --delta`;
//! * the **tune format** (`.tune`) is a versioned, checksummed tuning
//!   profile emitted by `copack tune` and loaded via `--profile`.
//!
//! Both formats are line-based, `#`-commented, and round-trip exactly
//! (`parse(write(x)) == x`, property-tested).
//!
//! # Example
//!
//! ```
//! use copack_io::{parse_quadrant, write_quadrant};
//! use copack_geom::{NetKind, Quadrant};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Fig. 5 instance:
//! let text = "\
//! quadrant fig5
//! row 10 2 4 7 0
//! row 1 3 5 8
//! row 11 6 9
//! net 10 power
//! ";
//! let (name, quadrant) = parse_quadrant(text)?;
//! assert_eq!(name, "fig5");
//! assert_eq!(quadrant.net_count(), 12);
//! assert_eq!(quadrant.net(10.into()).unwrap().kind, NetKind::Power);
//!
//! let round_trip = parse_quadrant(&write_quadrant("fig5", &quadrant))?;
//! assert_eq!(round_trip.1, quadrant);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment_format;
mod canonical;
mod circuit_format;
mod delta_format;
mod error;
mod tune_format;

pub use assignment_format::{parse_assignment, write_assignment};
pub use canonical::{
    canonical_portfolio_mode_params, canonical_portfolio_params, canonical_quadrant_text, fnv1a64,
    quadrant_fingerprint,
};
pub use circuit_format::{parse_quadrant, write_quadrant};
pub use delta_format::{parse_delta, write_delta};
pub use error::{ParseError, ParseErrorKind};
pub use tune_format::{
    classify_quadrant, parse_tune, write_tune, ClassConfig, ClassKey, TuneProfile, TUNE_VERSION,
};
