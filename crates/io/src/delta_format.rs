//! The ECO delta text format — the on-disk shape of `copack replan
//! --delta`.
//!
//! ```text
//! # comment
//! delta <name>
//! quadrant <quadrant name>     # opens that quadrant's edit list
//! geometry ball_pitch=1.2      # Edit::Geometry (unset keys = defaults)
//! fingers 24                   # Edit::Fingers
//! row 3 11 6 9                 # Edit::Row { y: 3, nets: [11, 6, 9] }
//! truncate 2                   # Edit::Truncate
//! add 42 row=1 at=0            # Edit::Add
//! remove 42                    # Edit::Remove
//! retype 42 power              # Edit::Retype
//! tier 42 2                    # Edit::Tier
//! quadrant <another name>      # quadrants absent entirely are clean
//! ```
//!
//! Edits keep their file order — the delta semantics are positional
//! (later edits see earlier ones), so unlike the circuit format the
//! same directive may repeat. A `quadrant` section with no edit lines
//! is legal and marks that quadrant explicitly clean.

use std::fmt::Write as _;

use copack_core::{Edit, InstanceDelta, QuadrantDelta};
use copack_geom::{NetId, NetKind, TierId};

use crate::circuit_format::{bad, parse_geometry, parse_num, split_attr, strip_comment};
use crate::error::{ParseError, ParseErrorKind};
use crate::ParseError as E;

/// Parses a delta file; returns the declared name and the per-quadrant
/// edit lists in file order.
///
/// # Errors
///
/// Returns [`ParseError`] with the offending line for any syntax
/// violation: a missing `delta` header, an edit before the first
/// `quadrant` section, a repeated quadrant name, or malformed operands.
pub fn parse_delta(text: &str) -> Result<(String, InstanceDelta), E> {
    let mut name: Option<String> = None;
    let mut quadrants: Vec<(String, QuadrantDelta)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw);
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let keyword = tokens.next().expect("non-empty line has a token");
        let rest: Vec<&str> = tokens.collect();
        if keyword == "delta" {
            if name.is_some() {
                return Err(ParseError::new(
                    line_no,
                    ParseErrorKind::Duplicate { keyword: "delta" },
                ));
            }
            if rest.is_empty() {
                return Err(bad(line_no, "delta", "a name"));
            }
            name = Some(rest.join(" "));
            continue;
        }
        if name.is_none() {
            return Err(ParseError::new(
                line_no,
                ParseErrorKind::MissingHeader { expected: "delta" },
            ));
        }
        if keyword == "quadrant" {
            if rest.is_empty() {
                return Err(bad(line_no, "quadrant", "a name"));
            }
            let q = rest.join(" ");
            if quadrants.iter().any(|(n, _)| *n == q) {
                return Err(ParseError::new(
                    line_no,
                    ParseErrorKind::Duplicate {
                        keyword: "quadrant",
                    },
                ));
            }
            quadrants.push((q, QuadrantDelta::default()));
            continue;
        }
        let Some((_, delta)) = quadrants.last_mut() else {
            return Err(ParseError::new(
                line_no,
                ParseErrorKind::MissingHeader {
                    expected: "quadrant",
                },
            ));
        };
        delta.edits.push(parse_edit(line_no, keyword, &rest)?);
    }

    let name = name
        .ok_or_else(|| ParseError::new(0, ParseErrorKind::MissingHeader { expected: "delta" }))?;
    Ok((name, InstanceDelta { quadrants }))
}

/// Parses one edit directive (everything but `delta`/`quadrant`).
fn parse_edit(line_no: usize, keyword: &str, rest: &[&str]) -> Result<Edit, E> {
    match keyword {
        "geometry" => Ok(Edit::Geometry(parse_geometry(line_no, rest)?)),
        "fingers" => {
            if rest.len() != 1 {
                return Err(bad(line_no, "fingers", "one count"));
            }
            Ok(Edit::Fingers(parse_num::<usize>(line_no, rest[0])?))
        }
        "row" => {
            if rest.is_empty() {
                return Err(bad(line_no, "row", "a 1-based row index then net ids"));
            }
            let y = parse_num::<u32>(line_no, rest[0])?;
            let nets = rest[1..]
                .iter()
                .map(|t| parse_num::<u32>(line_no, t).map(NetId::new))
                .collect::<Result<_, _>>()?;
            Ok(Edit::Row { y, nets })
        }
        "truncate" => {
            if rest.len() != 1 {
                return Err(bad(line_no, "truncate", "one row count"));
            }
            Ok(Edit::Truncate(parse_num::<u32>(line_no, rest[0])?))
        }
        "add" => {
            if rest.len() != 3 {
                return Err(bad(line_no, "add", "`<net> row=<y> at=<i>`"));
            }
            let net = NetId::new(parse_num::<u32>(line_no, rest[0])?);
            let mut row: Option<u32> = None;
            let mut at: Option<u32> = None;
            for token in &rest[1..] {
                let (key, value) = split_attr(line_no, token)?;
                match key {
                    "row" => row = Some(parse_num(line_no, value)?),
                    "at" => at = Some(parse_num(line_no, value)?),
                    other => {
                        return Err(ParseError::new(
                            line_no,
                            ParseErrorKind::UnknownAttribute {
                                key: other.to_owned(),
                            },
                        ))
                    }
                }
            }
            let (Some(row), Some(at)) = (row, at) else {
                return Err(bad(line_no, "add", "`<net> row=<y> at=<i>`"));
            };
            Ok(Edit::Add { net, row, at })
        }
        "remove" => {
            if rest.len() != 1 {
                return Err(bad(line_no, "remove", "one net id"));
            }
            Ok(Edit::Remove(NetId::new(parse_num::<u32>(
                line_no, rest[0],
            )?)))
        }
        "retype" => {
            if rest.len() != 2 {
                return Err(bad(line_no, "retype", "`<net> <kind>`"));
            }
            let net = NetId::new(parse_num::<u32>(line_no, rest[0])?);
            let kind = match rest[1] {
                "signal" => NetKind::Signal,
                "power" => NetKind::Power,
                "ground" => NetKind::Ground,
                other => {
                    return Err(ParseError::new(
                        line_no,
                        ParseErrorKind::BadNetKind {
                            token: other.to_owned(),
                        },
                    ))
                }
            };
            Ok(Edit::Retype { net, kind })
        }
        "tier" => {
            if rest.len() != 2 {
                return Err(bad(line_no, "tier", "`<net> <tier>`"));
            }
            let net = NetId::new(parse_num::<u32>(line_no, rest[0])?);
            let d = parse_num::<u8>(line_no, rest[1])?;
            if d == 0 {
                return Err(ParseError::new(
                    line_no,
                    ParseErrorKind::BadNumber {
                        token: rest[1].to_owned(),
                    },
                ));
            }
            Ok(Edit::Tier {
                net,
                tier: TierId::new(d),
            })
        }
        other => Err(ParseError::new(
            line_no,
            ParseErrorKind::UnknownDirective {
                keyword: other.to_owned(),
            },
        )),
    }
}

/// Writes a delta in the format [`parse_delta`] reads back exactly —
/// including quadrant sections with no edits (explicitly clean).
#[must_use]
pub fn write_delta(name: &str, delta: &InstanceDelta) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "delta {name}");
    for (quadrant, d) in &delta.quadrants {
        let _ = writeln!(out, "quadrant {quadrant}");
        for edit in &d.edits {
            write_edit(&mut out, edit);
        }
    }
    out
}

fn write_edit(out: &mut String, edit: &Edit) {
    match edit {
        Edit::Geometry(g) => {
            let _ = writeln!(
                out,
                "geometry ball_pitch={} finger_pitch={} finger_width={} finger_height={} \
                 via_diameter={} ball_diameter={}",
                g.ball_pitch,
                g.finger_pitch,
                g.finger_width,
                g.finger_height,
                g.via_diameter,
                g.ball_diameter
            );
        }
        Edit::Fingers(f) => {
            let _ = writeln!(out, "fingers {f}");
        }
        Edit::Row { y, nets } => {
            let _ = write!(out, "row {y}");
            for net in nets {
                let _ = write!(out, " {}", net.raw());
            }
            let _ = writeln!(out);
        }
        Edit::Truncate(n) => {
            let _ = writeln!(out, "truncate {n}");
        }
        Edit::Add { net, row, at } => {
            let _ = writeln!(out, "add {} row={row} at={at}", net.raw());
        }
        Edit::Remove(net) => {
            let _ = writeln!(out, "remove {}", net.raw());
        }
        Edit::Retype { net, kind } => {
            let _ = writeln!(out, "retype {} {kind}", net.raw());
        }
        Edit::Tier { net, tier } => {
            let _ = writeln!(out, "tier {} {}", net.raw(), tier.get());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_core::{apply_delta, diff_quadrant};
    use copack_geom::{Quadrant, QuadrantGeometry};

    const SAMPLE: &str = "\
# a two-quadrant ECO
delta eco1
quadrant north
row 2 1 3 5 8 12
retype 12 ground
tier 6 3
quadrant east
";

    #[test]
    fn parses_the_sample_file() {
        let (name, delta) = parse_delta(SAMPLE).unwrap();
        assert_eq!(name, "eco1");
        assert_eq!(delta.quadrants.len(), 2);
        assert_eq!(delta.quadrants[0].0, "north");
        assert_eq!(delta.quadrants[0].1.edits.len(), 3);
        assert!(delta.is_clean("east"));
        assert!(!delta.is_clean("north"));
        assert_eq!(delta.dirty().collect::<Vec<_>>(), vec!["north"]);
    }

    #[test]
    fn every_edit_class_round_trips() {
        let delta = InstanceDelta {
            quadrants: vec![
                (
                    "q1".to_owned(),
                    QuadrantDelta {
                        edits: vec![
                            Edit::Geometry(QuadrantGeometry {
                                ball_pitch: 2.5,
                                ..QuadrantGeometry::default()
                            }),
                            Edit::Fingers(24),
                            Edit::Row {
                                y: 3,
                                nets: vec![NetId::new(11), NetId::new(6)],
                            },
                            Edit::Truncate(2),
                            Edit::Add {
                                net: NetId::new(42),
                                row: 1,
                                at: 0,
                            },
                            Edit::Remove(NetId::new(42)),
                            Edit::Retype {
                                net: NetId::new(7),
                                kind: NetKind::Power,
                            },
                            Edit::Retype {
                                net: NetId::new(7),
                                kind: NetKind::Signal,
                            },
                            Edit::Tier {
                                net: NetId::new(7),
                                tier: TierId::new(2),
                            },
                            Edit::Tier {
                                net: NetId::new(7),
                                tier: TierId::BASE,
                            },
                        ],
                    },
                ),
                ("q2 with spaces".to_owned(), QuadrantDelta::default()),
            ],
        };
        let text = write_delta("eco", &delta);
        let (name, back) = parse_delta(&text).unwrap();
        assert_eq!(name, "eco");
        assert_eq!(back, delta);
    }

    #[test]
    fn diffed_quadrants_round_trip_through_the_format() {
        let a = Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .net_kind(10u32, NetKind::Power)
            .build()
            .unwrap();
        let b = Quadrant::builder()
            .row([10u32, 2, 4, 7])
            .row([1u32, 3, 5, 8, 12])
            .row([11u32, 6, 9])
            .net_kind(12u32, NetKind::Ground)
            .net_tier(6u32, TierId::new(3))
            .fingers(14)
            .build()
            .unwrap();
        let delta = InstanceDelta {
            quadrants: vec![("north".to_owned(), diff_quadrant(&a, &b))],
        };
        let text = write_delta("eco", &delta);
        let (_, back) = parse_delta(&text).unwrap();
        let edited = apply_delta(&a, back.get("north").unwrap()).unwrap();
        assert_eq!(edited, b);
    }

    #[test]
    fn errors_carry_line_numbers() {
        for (text, expect_line, is_kind) in [
            ("row 1 2\n", 1, false),                         // edit before any header
            ("delta d\nrow 1 2\n", 2, false),                // edit before a quadrant
            ("delta d\ndelta e\n", 2, false),                // duplicate header
            ("delta d\nquadrant q\nquadrant q\n", 3, false), // duplicate quadrant
            ("delta d\nquadrant q\nbogus 1\n", 3, false),
            ("delta d\nquadrant q\nrow\n", 3, false),
            ("delta d\nquadrant q\nadd 1 row=1\n", 3, false),
            ("delta d\nquadrant q\nadd 1 row=1 z=0\n", 3, false),
            ("delta d\nquadrant q\ntier 1 0\n", 3, false),
            ("delta d\nquadrant q\nretype 1 mains\n", 3, true),
        ] {
            let err = parse_delta(text).unwrap_err();
            assert_eq!(err.line, expect_line, "{text:?} -> {err}");
            if is_kind {
                assert!(matches!(err.kind, ParseErrorKind::BadNetKind { .. }));
            }
        }
        let err = parse_delta("# only comments\n").unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::MissingHeader { expected: "delta" }
        ));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# lead\ndelta d # trail\n\nquadrant q # here\nremove 3 # bye\n";
        let (name, delta) = parse_delta(text).unwrap();
        assert_eq!(name, "d");
        assert_eq!(
            delta.get("q").unwrap().edits,
            vec![Edit::Remove(NetId::new(3))]
        );
    }
}
