//! The assignment text format.
//!
//! ```text
//! assignment <circuit-name>
//! order 10 11 1 2 6 3 4 9 5 7 8 0     # dense finger order, F1 leftmost
//! slot 14 3                            # or sparse: net 3 at finger F14
//! ```
//!
//! Dense `order` and sparse `slot` directives are mutually exclusive.

use std::fmt::Write as _;

use copack_geom::{Assignment, FingerIdx, NetId};

use crate::error::{ParseError, ParseErrorKind};

/// Parses an assignment file; returns the referenced circuit name and the
/// assignment.
///
/// # Errors
///
/// Returns [`ParseError`] with the offending line for any syntax violation
/// or slot conflict.
pub fn parse_assignment(text: &str) -> Result<(String, Assignment), ParseError> {
    let mut name: Option<String> = None;
    let mut order: Option<Vec<NetId>> = None;
    let mut slots: Vec<(usize, u32, u32)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find('#') {
            Some(i) => raw[..i].trim(),
            None => raw.trim(),
        };
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let keyword = tokens.next().expect("non-empty");
        let rest: Vec<&str> = tokens.collect();
        match keyword {
            "assignment" => {
                if name.is_some() {
                    return Err(ParseError::new(
                        line_no,
                        ParseErrorKind::Duplicate {
                            keyword: "assignment",
                        },
                    ));
                }
                if rest.is_empty() {
                    return Err(ParseError::new(
                        line_no,
                        ParseErrorKind::BadOperands {
                            keyword: "assignment",
                            expected: "a circuit name",
                        },
                    ));
                }
                name = Some(rest.join(" "));
            }
            "order" => {
                if order.is_some() {
                    return Err(ParseError::new(
                        line_no,
                        ParseErrorKind::Duplicate { keyword: "order" },
                    ));
                }
                let ids: Vec<NetId> = rest
                    .iter()
                    .map(|t| parse_u32(line_no, t).map(NetId::new))
                    .collect::<Result<_, _>>()?;
                if ids.is_empty() {
                    return Err(ParseError::new(
                        line_no,
                        ParseErrorKind::BadOperands {
                            keyword: "order",
                            expected: "at least one net id",
                        },
                    ));
                }
                order = Some(ids);
            }
            "slot" => {
                if rest.len() != 2 {
                    return Err(ParseError::new(
                        line_no,
                        ParseErrorKind::BadOperands {
                            keyword: "slot",
                            expected: "`<finger> <net>`",
                        },
                    ));
                }
                let finger = parse_u32(line_no, rest[0])?;
                let net = parse_u32(line_no, rest[1])?;
                if finger == 0 {
                    return Err(ParseError::new(
                        line_no,
                        ParseErrorKind::BadNumber {
                            token: rest[0].to_owned(),
                        },
                    ));
                }
                slots.push((line_no, finger, net));
            }
            other => {
                return Err(ParseError::new(
                    line_no,
                    ParseErrorKind::UnknownDirective {
                        keyword: other.to_owned(),
                    },
                ))
            }
        }
    }

    let name = name.ok_or_else(|| {
        ParseError::new(
            0,
            ParseErrorKind::MissingHeader {
                expected: "assignment",
            },
        )
    })?;

    let assignment = match (order, slots.is_empty()) {
        (Some(ids), true) => Assignment::from_order(ids),
        (Some(_), false) => {
            let line = slots[0].0;
            return Err(ParseError::new(
                line,
                ParseErrorKind::BadOperands {
                    keyword: "slot",
                    expected: "either `order` or `slot`s, not both",
                },
            ));
        }
        (None, false) => {
            let fingers = slots.iter().map(|&(_, f, _)| f).max().expect("non-empty") as usize;
            let mut a = Assignment::empty(fingers);
            for (line_no, finger, net) in slots {
                a.place(NetId::new(net), FingerIdx::new(finger))
                    .map_err(|e| ParseError::new(line_no, ParseErrorKind::Model(e)))?;
            }
            a
        }
        (None, true) => {
            return Err(ParseError::new(
                0,
                ParseErrorKind::BadOperands {
                    keyword: "order",
                    expected: "an `order` or at least one `slot`",
                },
            ))
        }
    };
    Ok((name, assignment))
}

/// Writes an assignment (dense `order` form when full, sparse `slot` form
/// otherwise).
#[must_use]
pub fn write_assignment(circuit: &str, assignment: &Assignment) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "assignment {circuit}");
    if assignment.net_count() == assignment.finger_count() {
        let ids: Vec<String> = assignment
            .order()
            .iter()
            .map(|n| n.raw().to_string())
            .collect();
        let _ = writeln!(out, "order {}", ids.join(" "));
    } else {
        for (finger, net) in assignment.iter() {
            let _ = writeln!(out, "slot {} {}", finger.get(), net.raw());
        }
    }
    out
}

fn parse_u32(line: usize, token: &str) -> Result<u32, ParseError> {
    token.parse().map_err(|_| {
        ParseError::new(
            line,
            ParseErrorKind::BadNumber {
                token: token.to_owned(),
            },
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_order_round_trips() {
        let text = "assignment fig5\norder 10 11 1 2 6 3 4 9 5 7 8 0\n";
        let (name, a) = parse_assignment(text).unwrap();
        assert_eq!(name, "fig5");
        assert_eq!(a.to_string(), "10,11,1,2,6,3,4,9,5,7,8,0");
        let (name2, a2) = parse_assignment(&write_assignment("fig5", &a)).unwrap();
        assert_eq!((name2, a2), (name, a));
    }

    #[test]
    fn sparse_slots_round_trip() {
        let text = "assignment s\nslot 2 7\nslot 5 9\n";
        let (_, a) = parse_assignment(text).unwrap();
        assert_eq!(a.finger_count(), 5);
        assert_eq!(a.net_count(), 2);
        assert_eq!(a.position_of(NetId::new(9)).unwrap().get(), 5);
        let (_, a2) = parse_assignment(&write_assignment("s", &a)).unwrap();
        assert_eq!(a, a2);
    }

    #[test]
    fn mixing_order_and_slots_is_rejected() {
        let err = parse_assignment("assignment x\norder 1 2\nslot 1 1\n").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadOperands { .. }));
    }

    #[test]
    fn conflicting_slots_are_model_errors() {
        let err = parse_assignment("assignment x\nslot 1 1\nslot 1 2\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(matches!(err.kind, ParseErrorKind::Model(_)));
    }

    #[test]
    fn empty_and_headerless_files_are_rejected() {
        assert!(matches!(
            parse_assignment("").unwrap_err().kind,
            ParseErrorKind::MissingHeader { .. }
        ));
        assert!(parse_assignment("assignment x\n").is_err());
        assert!(parse_assignment("order 1\n").is_err());
    }

    #[test]
    fn zero_finger_slots_are_rejected() {
        let err = parse_assignment("assignment x\nslot 0 1\n").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadNumber { .. }));
    }
}
