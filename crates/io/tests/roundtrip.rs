//! Property tests: the text formats round-trip arbitrary valid models.

use copack_geom::{Assignment, FingerIdx, NetKind, Quadrant, TierId};
use copack_io::{parse_assignment, parse_quadrant, write_assignment, write_quadrant};
use proptest::prelude::*;

fn quadrant_strategy() -> impl Strategy<Value = Quadrant> {
    (
        prop::collection::vec(1usize..=6, 1..=4),
        any::<u64>(),
        0u8..=3, // extra fingers beyond the net count
    )
        .prop_map(|(sizes, seed, extra)| {
            let total: usize = sizes.iter().sum();
            let mut ids: Vec<u32> = (1..=total as u32).collect();
            let mut state = seed | 1;
            let mut next = |bound: usize| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as usize % bound
            };
            for i in (1..ids.len()).rev() {
                let j = next(i + 1);
                ids.swap(i, j);
            }
            let mut builder = Quadrant::builder().fingers(total + extra as usize);
            let mut cursor = 0;
            for &s in &sizes {
                builder = builder.row(ids[cursor..cursor + s].iter().copied());
                cursor += s;
            }
            // Deterministic kind/tier sprinkling.
            for &id in &ids {
                match id % 5 {
                    0 => builder = builder.net_kind(id, NetKind::Power),
                    1 => builder = builder.net_kind(id, NetKind::Ground),
                    _ => {}
                }
                if id % 3 == 0 {
                    builder = builder.net_tier(id, TierId::new((id % 4) as u8 + 1));
                }
            }
            builder.build().expect("generated quadrants are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quadrants_round_trip(q in quadrant_strategy(), name in "[a-z][a-z0-9 _-]{0,20}") {
        let text = write_quadrant(&name, &q);
        let (parsed_name, parsed) = parse_quadrant(&text).expect("own output parses");
        // Names are whitespace-normalised by the tokenising parser.
        let normalised: Vec<&str> = name.split_whitespace().collect();
        prop_assert_eq!(parsed_name, normalised.join(" "));
        prop_assert_eq!(parsed, q);
    }

    #[test]
    fn dense_assignments_round_trip(q in quadrant_strategy()) {
        // A dense order over the quadrant's nets.
        let order: Vec<_> = q.nets().map(|n| n.id).collect();
        let a = Assignment::from_order(order);
        let (_, parsed) = parse_assignment(&write_assignment("c", &a)).expect("parses");
        prop_assert_eq!(parsed, a);
    }

    #[test]
    fn sparse_assignments_round_trip(
        q in quadrant_strategy(),
        stride in 2usize..4,
    ) {
        // Place every net `stride` slots apart: a sparse plan.
        let nets: Vec<_> = q.nets().map(|n| n.id).collect();
        let mut a = Assignment::empty(nets.len() * stride);
        for (i, net) in nets.iter().enumerate() {
            a.place(*net, FingerIdx::from_zero_based(i * stride)).expect("free slot");
        }
        let (_, parsed) = parse_assignment(&write_assignment("c", &a)).expect("parses");
        // Slot-form trims trailing empty slots; compare the placements.
        for net in &nets {
            prop_assert_eq!(parsed.position_of(*net), a.position_of(*net));
        }
        prop_assert_eq!(parsed.net_count(), a.net_count());
    }
}
