//! Property tests: the text formats round-trip arbitrary valid models.

use copack_core::PortfolioMode;
use copack_geom::{Assignment, FingerIdx, NetKind, Quadrant, TierId};
use copack_io::{
    parse_assignment, parse_quadrant, parse_tune, write_assignment, write_quadrant, write_tune,
    ClassConfig, ClassKey, TuneProfile,
};
use proptest::prelude::*;

fn quadrant_strategy() -> impl Strategy<Value = Quadrant> {
    (
        prop::collection::vec(1usize..=6, 1..=4),
        any::<u64>(),
        0u8..=3, // extra fingers beyond the net count
    )
        .prop_map(|(sizes, seed, extra)| {
            let total: usize = sizes.iter().sum();
            let mut ids: Vec<u32> = (1..=total as u32).collect();
            let mut state = seed | 1;
            let mut next = |bound: usize| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as usize % bound
            };
            for i in (1..ids.len()).rev() {
                let j = next(i + 1);
                ids.swap(i, j);
            }
            let mut builder = Quadrant::builder().fingers(total + extra as usize);
            let mut cursor = 0;
            for &s in &sizes {
                builder = builder.row(ids[cursor..cursor + s].iter().copied());
                cursor += s;
            }
            // Deterministic kind/tier sprinkling.
            for &id in &ids {
                match id % 5 {
                    0 => builder = builder.net_kind(id, NetKind::Power),
                    1 => builder = builder.net_kind(id, NetKind::Ground),
                    _ => {}
                }
                if id % 3 == 0 {
                    builder = builder.net_tier(id, TierId::new((id % 4) as u8 + 1));
                }
            }
            builder.build().expect("generated quadrants are valid")
        })
}

/// A finite `f64` with the full bit-pattern range the hex encoding must
/// preserve (subnormals, negative zero, huge magnitudes). Non-finite
/// bit patterns have their top exponent bit cleared, which lands on a
/// finite value while keeping sign and mantissa arbitrary.
fn finite_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(|bits| {
        let value = f64::from_bits(bits);
        if value.is_finite() {
            value
        } else {
            f64::from_bits(bits & !(1u64 << 62))
        }
    })
}

fn class_config_strategy() -> impl Strategy<Value = ClassConfig> {
    (
        (finite_f64(), finite_f64(), finite_f64(), any::<u32>()),
        (finite_f64(), finite_f64(), finite_f64(), finite_f64()),
        (any::<u32>(), finite_f64()),
        (0u8..3, any::<u32>(), finite_f64()),
    )
        .prop_map(
            |(
                (cooling, initial_temp_factor, final_temp_ratio, moves_per_temp),
                (lambda, rho, phi, margin),
                (starts, prune_margin),
                (mode, kick_size, ladder_ratio),
            )| ClassConfig {
                cooling,
                initial_temp_factor,
                final_temp_ratio,
                moves_per_temp,
                lambda,
                rho,
                phi,
                margin,
                starts,
                prune_margin,
                mode: match mode {
                    0 => PortfolioMode::Race,
                    1 => PortfolioMode::Coop,
                    _ => PortfolioMode::Temper,
                },
                kick_size,
                ladder_ratio,
            },
        )
}

fn tune_profile_strategy() -> impl Strategy<Value = TuneProfile> {
    (
        any::<u64>(),
        any::<u64>(),
        prop::collection::vec(
            (
                (1u32..=4096, 1u32..=128, 1u8..=8, 0u8..=100),
                class_config_strategy(),
            ),
            0..=6,
        ),
    )
        .prop_map(|(seed, space_fingerprint, raw)| {
            // The writer emits classes in sorted key order; build the
            // profile that way (deduplicated) so round-trips compare
            // structurally equal.
            let mut classes: Vec<(ClassKey, ClassConfig)> = Vec::new();
            for ((nets, rows, tiers, power_pct), config) in raw {
                let key = ClassKey {
                    nets,
                    rows,
                    tiers,
                    power_pct,
                };
                if !classes.iter().any(|(k, _)| *k == key) {
                    classes.push((key, config));
                }
            }
            classes.sort_by(|a, b| a.0.cmp(&b.0));
            TuneProfile {
                seed,
                space_fingerprint,
                classes,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quadrants_round_trip(q in quadrant_strategy(), name in "[a-z][a-z0-9 _-]{0,20}") {
        let text = write_quadrant(&name, &q);
        let (parsed_name, parsed) = parse_quadrant(&text).expect("own output parses");
        // Names are whitespace-normalised by the tokenising parser.
        let normalised: Vec<&str> = name.split_whitespace().collect();
        prop_assert_eq!(parsed_name, normalised.join(" "));
        prop_assert_eq!(parsed, q);
    }

    #[test]
    fn dense_assignments_round_trip(q in quadrant_strategy()) {
        // A dense order over the quadrant's nets.
        let order: Vec<_> = q.nets().map(|n| n.id).collect();
        let a = Assignment::from_order(order);
        let (_, parsed) = parse_assignment(&write_assignment("c", &a)).expect("parses");
        prop_assert_eq!(parsed, a);
    }

    #[test]
    fn sparse_assignments_round_trip(
        q in quadrant_strategy(),
        stride in 2usize..4,
    ) {
        // Place every net `stride` slots apart: a sparse plan.
        let nets: Vec<_> = q.nets().map(|n| n.id).collect();
        let mut a = Assignment::empty(nets.len() * stride);
        for (i, net) in nets.iter().enumerate() {
            a.place(*net, FingerIdx::from_zero_based(i * stride)).expect("free slot");
        }
        let (_, parsed) = parse_assignment(&write_assignment("c", &a)).expect("parses");
        // Slot-form trims trailing empty slots; compare the placements.
        for net in &nets {
            prop_assert_eq!(parsed.position_of(*net), a.position_of(*net));
        }
        prop_assert_eq!(parsed.net_count(), a.net_count());
    }

    #[test]
    fn tune_profiles_round_trip_bit_exactly(profile in tune_profile_strategy()) {
        let text = write_tune(&profile);
        let parsed = parse_tune(&text).expect("own output parses");
        // Every f64 travels as its IEEE-754 bit pattern, so the parsed
        // profile is structurally equal — subnormals, -0.0 and all.
        prop_assert_eq!(&parsed, &profile);
        // And the round-tripped document is byte-stable.
        prop_assert_eq!(write_tune(&parsed), text);
    }

    #[test]
    fn corrupting_any_tune_byte_is_rejected_or_equivalent(
        profile in tune_profile_strategy(),
        position in any::<u64>(),
        replacement in 0x20u8..0x7f,
    ) {
        let text = write_tune(&profile);
        let mut bytes = text.clone().into_bytes();
        let at = (position % bytes.len() as u64) as usize;
        bytes[at] = replacement;
        if bytes == text.as_bytes() {
            return Ok(()); // replacement landed on the same byte
        }
        // A single corrupted byte must never pass silently as a
        // *different* profile: either the checksum (or structure)
        // rejects it, or the mutation was semantically neutral and
        // re-serialises to the identical document.
        match String::from_utf8(bytes).ok().map(|s| parse_tune(&s)) {
            Some(Ok(reparsed)) => prop_assert_eq!(write_tune(&reparsed), text),
            _ => {}
        }
    }
}
