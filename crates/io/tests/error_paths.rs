//! Malformed-input coverage: every corrupt file must come back as a typed
//! [`ParseError`] naming the offending line — never a panic, never a
//! silently "repaired" model.

use copack_io::{parse_assignment, parse_quadrant, ParseError, ParseErrorKind};

fn quadrant_err(text: &str) -> ParseError {
    parse_quadrant(text).expect_err("malformed circuit must be rejected")
}

fn assignment_err(text: &str) -> ParseError {
    parse_assignment(text).expect_err("malformed assignment must be rejected")
}

const GOOD_HEADER: &str = "quadrant toy\n";

#[test]
fn circuit_without_header_is_rejected() {
    let e = quadrant_err("row 1 2 3\n");
    assert!(
        matches!(
            e.kind,
            ParseErrorKind::MissingHeader {
                expected: "quadrant"
            }
        ),
        "{e}"
    );
}

#[test]
fn truncated_row_is_rejected() {
    let text = format!("{GOOD_HEADER}row 1 2\nrow\n");
    let e = quadrant_err(&text);
    assert_eq!(e.line, 3, "{e}");
    assert!(
        matches!(e.kind, ParseErrorKind::BadOperands { keyword: "row", .. }),
        "{e}"
    );
}

#[test]
fn duplicate_net_id_across_rows_is_a_model_error() {
    let text = format!("{GOOD_HEADER}row 1 2 3\nrow 4 1\n");
    let e = quadrant_err(&text);
    assert!(matches!(e.kind, ParseErrorKind::Model(_)), "{e}");
    assert!(e.to_string().contains("invalid model"), "{e}");
}

#[test]
fn net_attribute_for_undeclared_net_is_a_model_error() {
    let text = format!("{GOOD_HEADER}row 1 2\nnet 9 power\n");
    let e = quadrant_err(&text);
    assert!(matches!(e.kind, ParseErrorKind::Model(_)), "{e}");
}

#[test]
fn non_numeric_net_id_is_rejected_with_the_token() {
    let text = format!("{GOOD_HEADER}row 1 frog 3\n");
    let e = quadrant_err(&text);
    assert_eq!(e.line, 2);
    match e.kind {
        ParseErrorKind::BadNumber { token } => assert_eq!(token, "frog"),
        other => panic!("expected BadNumber, got {other:?}"),
    }
}

#[test]
fn bad_net_kind_and_unknown_attribute_are_rejected() {
    let e = quadrant_err(&format!("{GOOD_HEADER}row 1\nnet 1 plasma\n"));
    assert!(matches!(e.kind, ParseErrorKind::BadNetKind { .. }), "{e}");
    let e = quadrant_err(&format!("{GOOD_HEADER}row 1\nnet 1 power colour=red\n"));
    assert!(
        matches!(e.kind, ParseErrorKind::UnknownAttribute { .. }),
        "{e}"
    );
}

#[test]
fn unknown_directive_is_rejected() {
    let e = quadrant_err(&format!("{GOOD_HEADER}frobnicate 1 2\n"));
    match e.kind {
        ParseErrorKind::UnknownDirective { keyword } => assert_eq!(keyword, "frobnicate"),
        other => panic!("expected UnknownDirective, got {other:?}"),
    }
}

#[test]
fn too_few_fingers_is_a_model_error() {
    let text = format!("{GOOD_HEADER}fingers 1\nrow 1 2 3\n");
    let e = quadrant_err(&text);
    assert!(matches!(e.kind, ParseErrorKind::Model(_)), "{e}");
}

#[test]
fn assignment_without_header_is_rejected() {
    let e = assignment_err("order 1 2 3\n");
    assert!(
        matches!(
            e.kind,
            ParseErrorKind::MissingHeader {
                expected: "assignment"
            }
        ),
        "{e}"
    );
}

#[test]
fn zero_finger_index_is_rejected() {
    let e = assignment_err("assignment toy\nslot 0 3\n");
    assert_eq!(e.line, 2);
    assert!(matches!(e.kind, ParseErrorKind::BadNumber { .. }), "{e}");
}

#[test]
fn conflicting_slots_are_model_errors() {
    // Two nets on the same finger.
    let e = assignment_err("assignment toy\nslot 2 3\nslot 2 4\n");
    assert_eq!(e.line, 3);
    assert!(matches!(e.kind, ParseErrorKind::Model(_)), "{e}");
    // The same net on two fingers.
    let e = assignment_err("assignment toy\nslot 1 3\nslot 2 3\n");
    assert_eq!(e.line, 3);
    assert!(matches!(e.kind, ParseErrorKind::Model(_)), "{e}");
}

#[test]
fn mixed_order_and_slot_forms_are_rejected() {
    let e = assignment_err("assignment toy\norder 1 2\nslot 1 1\n");
    assert!(
        matches!(
            e.kind,
            ParseErrorKind::BadOperands {
                keyword: "slot",
                ..
            }
        ),
        "{e}"
    );
}

#[test]
fn out_of_range_finger_indices_fail_validation_not_panic() {
    // The assignment parses in isolation but refers to more fingers than
    // the circuit has; cross-validation must return a typed error.
    let (_, quadrant) = parse_quadrant("quadrant toy\nrow 1 2 3\n").unwrap();
    let (_, too_wide) = parse_assignment("assignment toy\nslot 9 1\nslot 1 2\nslot 2 3\n").unwrap();
    assert!(too_wide.validate_complete(&quadrant).is_err());
    // An order listing a net the circuit does not know is equally typed.
    let (_, unknown_net) = parse_assignment("assignment toy\norder 1 2 7\n").unwrap();
    assert!(unknown_net.validate_complete(&quadrant).is_err());
}

#[test]
fn error_lines_point_at_the_offending_line() {
    let text = format!("{GOOD_HEADER}\n\nrow 1 2\n\nrow x\n");
    let e = quadrant_err(&text);
    assert_eq!(e.line, 6, "{e}");
}
