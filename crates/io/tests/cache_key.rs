//! Property tests: the cache-key fingerprint is a function of the model,
//! not of any particular serialization of it.

use copack_geom::{NetKind, Quadrant, TierId};
use copack_io::{canonical_quadrant_text, parse_quadrant, quadrant_fingerprint, write_quadrant};
use proptest::prelude::*;

fn quadrant_strategy() -> impl Strategy<Value = Quadrant> {
    (
        prop::collection::vec(1usize..=6, 1..=4),
        any::<u64>(),
        0u8..=3, // extra fingers beyond the net count
    )
        .prop_map(|(sizes, seed, extra)| {
            let total: usize = sizes.iter().sum();
            let mut ids: Vec<u32> = (1..=total as u32).collect();
            let mut state = seed | 1;
            let mut next = |bound: usize| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as usize % bound
            };
            for i in (1..ids.len()).rev() {
                let j = next(i + 1);
                ids.swap(i, j);
            }
            let mut builder = Quadrant::builder().fingers(total + extra as usize);
            let mut cursor = 0;
            for &s in &sizes {
                builder = builder.row(ids[cursor..cursor + s].iter().copied());
                cursor += s;
            }
            for &id in &ids {
                match id % 5 {
                    0 => builder = builder.net_kind(id, NetKind::Power),
                    1 => builder = builder.net_kind(id, NetKind::Ground),
                    _ => {}
                }
                if id % 3 == 0 {
                    builder = builder.net_tier(id, TierId::new((id % 4) as u8 + 1));
                }
            }
            builder.build().expect("generated quadrants are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fingerprint_is_invariant_under_reserialization(
        q in quadrant_strategy(),
        name in "[a-z][a-z0-9_-]{0,16}",
    ) {
        // write → read → hash must equal the direct hash, whatever name
        // the intermediate file used.
        let direct = quadrant_fingerprint(&q);
        let text = write_quadrant(&name, &q);
        let (_, reparsed) = parse_quadrant(&text).expect("own output parses");
        prop_assert_eq!(quadrant_fingerprint(&reparsed), direct);

        // And the round trip through the canonical form itself is a
        // fixed point: canonicalising twice changes nothing.
        let canon = canonical_quadrant_text(&q);
        let (_, from_canon) = parse_quadrant(&canon).expect("canonical text parses");
        prop_assert_eq!(canonical_quadrant_text(&from_canon), canon);
        prop_assert_eq!(quadrant_fingerprint(&from_canon), direct);
    }

    #[test]
    fn decorated_texts_hash_like_their_clean_form(
        q in quadrant_strategy(),
        comment in "[ -~]{0,24}",
    ) {
        // Comments and blank lines are serialization noise, not model
        // content: sprinkling them through the text must not move the key.
        let clean = write_quadrant("c", &q);
        let mut noisy = String::from("# leading comment\n\n");
        for line in clean.lines() {
            noisy.push_str(line);
            // `#` starts a trailing comment on any line.
            noisy.push_str(" # ");
            noisy.push_str(comment.replace('#', " ").trim());
            noisy.push_str("\n\n");
        }
        let (_, from_clean) = parse_quadrant(&clean).expect("clean parses");
        let (_, from_noisy) = parse_quadrant(&noisy).expect("noisy parses");
        prop_assert_eq!(
            quadrant_fingerprint(&from_noisy),
            quadrant_fingerprint(&from_clean)
        );
    }
}
