//! Matrix-free conjugate-gradient solver, used to cross-validate SOR.

use copack_obs::{Event, NoopRecorder, Recorder, Solver};

use crate::{GridSpec, IrMap, PadRing, PowerError};

/// Relative residual tolerance.
const TOL: f64 = 1e-12;

/// Solves the power grid by conjugate gradient on the free (un-clamped)
/// nodes. The reduced conductance matrix is symmetric positive definite as
/// soon as at least one pad clamps a node, so CG converges; it serves as an
/// independent check on [`crate::solve_sor`].
///
/// # Errors
///
/// * [`PowerError::BadSpec`] for an invalid grid.
/// * [`PowerError::NoConvergence`] if the iteration cap (`10·n`) is hit.
pub fn solve_cg(spec: &GridSpec, pads: &PadRing) -> Result<IrMap, PowerError> {
    solve_cg_nodes(spec, &pads.clamp_nodes(spec))
}

/// [`solve_cg`] with telemetry: one [`Event::SolverSweep`] per CG
/// iteration (the residual is the relative residual norm) and a final
/// [`Event::SolverDone`]. A disabled recorder costs nothing and the
/// solve is bit-identical to the untraced entry points.
///
/// # Errors
///
/// As [`solve_cg`].
pub fn solve_cg_traced(
    spec: &GridSpec,
    pads: &PadRing,
    recorder: &mut dyn Recorder,
) -> Result<IrMap, PowerError> {
    solve_cg_nodes_traced(spec, &pads.clamp_nodes(spec), recorder)
}

/// [`solve_cg`] for an explicit clamp-node list (any [`crate::PadPlan`]).
///
/// # Errors
///
/// As [`solve_cg`].
pub fn solve_cg_nodes(spec: &GridSpec, clamp: &[(usize, usize)]) -> Result<IrMap, PowerError> {
    solve_cg_nodes_traced(spec, clamp, &mut NoopRecorder)
}

/// [`solve_cg_nodes`] with telemetry (see [`solve_cg_traced`]).
///
/// # Errors
///
/// As [`solve_cg`].
pub fn solve_cg_nodes_traced(
    spec: &GridSpec,
    clamp: &[(usize, usize)],
    recorder: &mut dyn Recorder,
) -> Result<IrMap, PowerError> {
    spec.validate()?;
    let (nx, ny) = (spec.nx, spec.ny);
    let n = spec.node_count();
    let mut clamped = vec![false; n];
    for &(i, j) in clamp {
        clamped[spec.idx(i, j)] = true;
    }

    // Map free nodes to compact indices.
    let mut free_of = vec![usize::MAX; n];
    let mut free_nodes = Vec::new();
    for p in 0..n {
        if !clamped[p] {
            free_of[p] = free_nodes.len();
            free_nodes.push(p);
        }
    }
    let nf = free_nodes.len();
    if nf == 0 {
        return Ok(IrMap::new(nx, ny, spec.vdd, vec![spec.vdd; n]));
    }

    let gx = spec.gx();
    let gy = spec.gy();

    // Right-hand side: −I(i,j) plus contributions from clamped neighbours.
    let mut b: Vec<f64> = free_nodes
        .iter()
        .map(|&p| -spec.node_current_at(p % nx, p / nx))
        .collect();
    for (f, &p) in free_nodes.iter().enumerate() {
        let (i, j) = (p % nx, p / nx);
        let mut add = |q: usize, g: f64| {
            if clamped[q] {
                b[f] += g * spec.vdd;
            }
        };
        if i > 0 {
            add(p - 1, gx);
        }
        if i + 1 < nx {
            add(p + 1, gx);
        }
        if j > 0 {
            add(p - nx, gy);
        }
        if j + 1 < ny {
            add(p + nx, gy);
        }
    }

    // Matrix-free A·x over the free nodes.
    let apply = |x: &[f64], out: &mut [f64]| {
        for (f, &p) in free_nodes.iter().enumerate() {
            let (i, j) = (p % nx, p / nx);
            let mut diag = 0.0;
            let mut off = 0.0;
            let mut edge = |q: usize, g: f64| {
                diag += g;
                if !clamped[q] {
                    off += g * x[free_of[q]];
                }
            };
            if i > 0 {
                edge(p - 1, gx);
            }
            if i + 1 < nx {
                edge(p + 1, gx);
            }
            if j > 0 {
                edge(p - nx, gy);
            }
            if j + 1 < ny {
                edge(p + nx, gy);
            }
            out[f] = diag * x[f] - off;
        }
    };

    // Standard CG, starting from Vdd everywhere.
    let mut x = vec![spec.vdd; nf];
    let mut r = vec![0.0; nf];
    let mut ax = vec![0.0; nf];
    apply(&x, &mut ax);
    for f in 0..nf {
        r[f] = b[f] - ax[f];
    }
    let mut p = r.clone();
    let mut rs_old: f64 = r.iter().map(|v| v * v).sum();
    let b_norm: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);

    let rec_on = recorder.enabled();
    let max_iters = 10 * nf + 100;
    let mut ap = vec![0.0; nf];
    let mut iters: usize = 0;
    for _ in 0..max_iters {
        if rs_old.sqrt() / b_norm < TOL {
            break;
        }
        apply(&p, &mut ap);
        let p_ap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        let alpha = rs_old / p_ap;
        for f in 0..nf {
            x[f] += alpha * p[f];
            r[f] -= alpha * ap[f];
        }
        let rs_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rs_new / rs_old;
        for f in 0..nf {
            p[f] = r[f] + beta * p[f];
        }
        rs_old = rs_new;
        if rec_on {
            recorder.record(&Event::SolverSweep {
                solver: Solver::Cg,
                sweep: iters as u32,
                residual: rs_old.sqrt() / b_norm,
            });
        }
        iters += 1;
    }
    let residual = rs_old.sqrt() / b_norm;
    let converged = residual < TOL * 10.0;
    if rec_on {
        recorder.record(&Event::SolverDone {
            solver: Solver::Cg,
            sweeps: iters as u32,
            residual,
            converged,
        });
    }
    if !converged {
        return Err(PowerError::NoConvergence {
            iterations: max_iters,
            residual,
        });
    }

    let mut v = vec![spec.vdd; n];
    for (f, &pnode) in free_nodes.iter().enumerate() {
        v[pnode] = x[f];
    }
    Ok(IrMap::new(nx, ny, spec.vdd, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve_sor;

    #[test]
    fn cg_matches_sor() {
        let spec = GridSpec::default_chip(14);
        for ring in [
            PadRing::uniform(3),
            PadRing::uniform(9),
            PadRing::from_ts([0.0, 0.03, 0.7]).unwrap(),
        ] {
            let a = solve_sor(&spec, &ring).unwrap();
            let b = solve_cg(&spec, &ring).unwrap();
            for (va, vb) in a.voltages().iter().zip(b.voltages()) {
                assert!((va - vb).abs() < 1e-6, "{va} vs {vb}");
            }
            assert!((a.max_drop() - b.max_drop()).abs() < 1e-6);
        }
    }

    #[test]
    fn cg_respects_clamps() {
        let spec = GridSpec::default_chip(10);
        let ring = PadRing::uniform(5);
        let map = solve_cg(&spec, &ring).unwrap();
        for (i, j) in ring.clamp_nodes(&spec) {
            assert_eq!(map.voltage(i, j), spec.vdd);
        }
    }

    #[test]
    fn anisotropic_sheets_bias_the_map() {
        // Much more resistive vertical straps: a single bottom-edge pad
        // serves same-row nodes better than same-column ones.
        let spec = GridSpec {
            r_sheet_y: 0.4,
            ..GridSpec::default_chip(12)
        };
        let ring = PadRing::from_ts([0.06]).unwrap(); // mid-bottom edge
        let map = solve_cg(&spec, &ring).unwrap();
        let (pi, _) = ring.clamp_nodes(&spec)[0];
        let horizontal = map.drop_at((pi + 4).min(spec.nx - 1), 0);
        let vertical = map.drop_at(pi, 4);
        assert!(vertical > horizontal);
    }

    #[test]
    fn bad_spec_is_rejected() {
        let bad = GridSpec {
            nx: 1,
            ..GridSpec::default_chip(8)
        };
        assert!(solve_cg(&bad, &PadRing::uniform(2)).is_err());
    }
}
