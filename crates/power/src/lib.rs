//! Compact finite-difference IR-drop model and power-grid solvers.
//!
//! This crate re-implements the IR-drop substrate the paper relies on: the
//! compact physical model of Shakeri–Meindl (*"Compact physical IR-drop
//! models for chip/package co-design of gigascale integration"*, IEEE TED
//! 2005, the paper's reference \[17\]). The chip's power distribution grid is
//! discretised on a uniform mesh; every node draws the same current
//! (`J₀·Δx·Δy`, the paper's Eq. 1) and power pads on the die boundary act as
//! ideal voltage sources. Solving the resulting linear system yields the
//! IR-drop map; the maximum drop (`Vdd − min V`) is the paper's headline
//! metric ("maximum value of IR-drop").
//!
//! Three solvers are provided and cross-validated against each other:
//!
//! * [`solve_sor`] — successive over-relaxation, the workhorse;
//! * [`solve_cg`] — matrix-free conjugate gradient on the free nodes;
//! * [`solve_dense`] — small dense LU ground truth for the verification
//!   oracles (`copack-verify`).
//!
//! Because a full solve per simulated-annealing move would dominate the
//! exchange step's runtime, the paper optimises a *proxy* instead: it
//! "compute\[s\] the variation of Δx and Δy" — i.e. how evenly the power pads
//! are spread along the boundary. [`PadSpacingProxy`] implements that
//! surrogate; `copack-core` uses it inside the annealer and this crate's
//! full solver for the reported before/after numbers, exactly like the
//! paper.
//!
//! # Example
//!
//! ```
//! use copack_power::{GridSpec, PadRing, solve_sor};
//!
//! # fn main() -> Result<(), copack_power::PowerError> {
//! let spec = GridSpec::default_chip(24);
//! // Four pads spread uniformly around the die vs. four clustered pads.
//! let uniform = PadRing::uniform(4);
//! let clustered = PadRing::from_ts([0.0, 0.01, 0.02, 0.03])?;
//! let good = solve_sor(&spec, &uniform)?;
//! let bad = solve_sor(&spec, &clustered)?;
//! assert!(good.max_drop() < bad.max_drop());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod cg;
mod dense;
mod error;
mod grid;
mod irmap;
mod pads;
mod placement;
mod proxy;
mod sor;

pub use analysis::{improvement_percent, solve, solve_plan, Solver};
pub use cg::{solve_cg, solve_cg_nodes, solve_cg_nodes_traced, solve_cg_traced};
pub use dense::{solve_dense, solve_dense_nodes, MAX_DENSE_NODES};
pub use error::PowerError;
pub use grid::{GridSpec, Hotspot};
pub use irmap::IrMap;
pub use pads::PadRing;
pub use placement::{PadArray, PadPlan};
pub use proxy::PadSpacingProxy;
pub use sor::{
    solve_sor, solve_sor_nodes, solve_sor_nodes_warm, solve_sor_nodes_warm_traced, solve_sor_warm,
    solve_sor_warm_traced,
};
