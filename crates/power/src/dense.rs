//! Dense direct solver, the ground truth the iterative solvers are
//! cross-checked against.
//!
//! Builds the reduced conductance matrix over the free (un-clamped) nodes
//! explicitly and solves it by Gaussian elimination with partial pivoting.
//! Cubic in the node count, so it is only meant for the small grids the
//! verification oracles use — [`solve_dense`] refuses grids above
//! [`MAX_DENSE_NODES`] free nodes rather than silently taking minutes.

use crate::{GridSpec, IrMap, PadRing, PowerError};

/// Largest free-node count the dense solver accepts (a 32×32 grid).
pub const MAX_DENSE_NODES: usize = 1024;

/// Solves the power grid exactly (up to rounding) by dense LU with partial
/// pivoting on the free nodes. The linear system is identical to the one
/// [`crate::solve_sor`] and [`crate::solve_cg`] iterate on: diagonal = sum
/// of adjacent edge conductances, off-diagonal = −g per free neighbour,
/// right-hand side = −I(i,j) plus `g·Vdd` per clamped neighbour.
///
/// # Errors
///
/// * [`PowerError::BadSpec`] for an invalid grid, or one with more than
///   [`MAX_DENSE_NODES`] free nodes (the solver is O(n³)).
/// * [`PowerError::NoConvergence`] if elimination hits a zero pivot (the
///   grid floats, which cannot happen once a pad clamps a node).
pub fn solve_dense(spec: &GridSpec, pads: &PadRing) -> Result<IrMap, PowerError> {
    solve_dense_nodes(spec, &pads.clamp_nodes(spec))
}

/// [`solve_dense`] for an explicit clamp-node list.
///
/// # Errors
///
/// As [`solve_dense`].
pub fn solve_dense_nodes(spec: &GridSpec, clamp: &[(usize, usize)]) -> Result<IrMap, PowerError> {
    spec.validate()?;
    let (nx, ny) = (spec.nx, spec.ny);
    let n = spec.node_count();
    let mut clamped = vec![false; n];
    for &(i, j) in clamp {
        clamped[spec.idx(i, j)] = true;
    }

    let mut free_of = vec![usize::MAX; n];
    let mut free_nodes = Vec::new();
    for p in 0..n {
        if !clamped[p] {
            free_of[p] = free_nodes.len();
            free_nodes.push(p);
        }
    }
    let nf = free_nodes.len();
    if nf == 0 {
        return Ok(IrMap::new(nx, ny, spec.vdd, vec![spec.vdd; n]));
    }
    if nf > MAX_DENSE_NODES {
        return Err(PowerError::BadSpec {
            parameter: "node count (dense solver)",
        });
    }

    let gx = spec.gx();
    let gy = spec.gy();

    // Row-major augmented system [A | b] over the free nodes.
    let mut a = vec![0.0f64; nf * nf];
    let mut b: Vec<f64> = free_nodes
        .iter()
        .map(|&p| -spec.node_current_at(p % nx, p / nx))
        .collect();
    for (f, &p) in free_nodes.iter().enumerate() {
        let (i, j) = (p % nx, p / nx);
        let mut diag = 0.0;
        {
            let mut edge = |q: usize, g: f64| {
                diag += g;
                if clamped[q] {
                    b[f] += g * spec.vdd;
                } else {
                    a[f * nf + free_of[q]] = -g;
                }
            };
            if i > 0 {
                edge(p - 1, gx);
            }
            if i + 1 < nx {
                edge(p + 1, gx);
            }
            if j > 0 {
                edge(p - nx, gy);
            }
            if j + 1 < ny {
                edge(p + nx, gy);
            }
        }
        a[f * nf + f] = diag;
    }

    // Gaussian elimination with partial pivoting.
    let mut perm: Vec<usize> = (0..nf).collect();
    for col in 0..nf {
        let (pivot_row, pivot_abs) = (col..nf)
            .map(|r| (r, a[perm[r] * nf + col].abs()))
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .expect("non-empty pivot range");
        if pivot_abs == 0.0 {
            return Err(PowerError::NoConvergence {
                iterations: col,
                residual: f64::INFINITY,
            });
        }
        perm.swap(col, pivot_row);
        let pr = perm[col];
        let pivot = a[pr * nf + col];
        for &row in &perm[(col + 1)..nf] {
            let factor = a[row * nf + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            a[row * nf + col] = 0.0;
            for c in (col + 1)..nf {
                a[row * nf + c] -= factor * a[pr * nf + c];
            }
            b[row] -= factor * b[pr];
        }
    }

    // Back substitution.
    let mut x = vec![0.0f64; nf];
    for col in (0..nf).rev() {
        let row = perm[col];
        let mut acc = b[row];
        for c in (col + 1)..nf {
            acc -= a[row * nf + c] * x[c];
        }
        x[col] = acc / a[row * nf + col];
    }

    let mut v = vec![spec.vdd; n];
    for (f, &p) in free_nodes.iter().enumerate() {
        v[p] = x[f];
    }
    Ok(IrMap::new(nx, ny, spec.vdd, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_cg, solve_sor};

    #[test]
    fn dense_matches_sor_and_cg() {
        let spec = GridSpec::default_chip(12);
        for ring in [
            PadRing::uniform(3),
            PadRing::uniform(8),
            PadRing::from_ts([0.0, 0.03, 0.7]).unwrap(),
        ] {
            let d = solve_dense(&spec, &ring).unwrap();
            let s = solve_sor(&spec, &ring).unwrap();
            let c = solve_cg(&spec, &ring).unwrap();
            for ((vd, vs), vc) in d.voltages().iter().zip(s.voltages()).zip(c.voltages()) {
                assert!((vd - vs).abs() < 1e-6, "{vd} vs sor {vs}");
                assert!((vd - vc).abs() < 1e-6, "{vd} vs cg {vc}");
            }
        }
    }

    #[test]
    fn dense_respects_clamps() {
        let spec = GridSpec::default_chip(9);
        let ring = PadRing::uniform(5);
        let map = solve_dense(&spec, &ring).unwrap();
        for (i, j) in ring.clamp_nodes(&spec) {
            assert_eq!(map.voltage(i, j), spec.vdd);
        }
    }

    #[test]
    fn oversized_grids_are_refused() {
        let spec = GridSpec::default_chip(64);
        let err = solve_dense(&spec, &PadRing::uniform(4)).unwrap_err();
        assert!(matches!(err, PowerError::BadSpec { .. }));
    }

    #[test]
    fn bad_spec_is_rejected() {
        let bad = GridSpec {
            nx: 1,
            ..GridSpec::default_chip(8)
        };
        assert!(solve_dense(&bad, &PadRing::uniform(2)).is_err());
    }

    #[test]
    fn anisotropy_is_reflected_exactly() {
        let spec = GridSpec {
            r_sheet_y: 0.4,
            ..GridSpec::default_chip(10)
        };
        let ring = PadRing::from_ts([0.06]).unwrap();
        let d = solve_dense(&spec, &ring).unwrap();
        let c = solve_cg(&spec, &ring).unwrap();
        assert!((d.max_drop() - c.max_drop()).abs() < 1e-6);
    }
}
