//! High-level IR-drop analysis entry points.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{
    cg::solve_cg_nodes, solve_cg, solve_sor, sor::solve_sor_nodes, GridSpec, IrMap, PadPlan,
    PadRing, PowerError,
};

/// Which linear solver to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Solver {
    /// Successive over-relaxation (default).
    #[default]
    Sor,
    /// Conjugate gradient (cross-validation / anisotropy-heavy grids).
    Cg,
}

impl fmt::Display for Solver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Sor => f.write_str("sor"),
            Self::Cg => f.write_str("cg"),
        }
    }
}

/// Solves the grid with the chosen solver.
///
/// # Errors
///
/// Propagates [`PowerError`] from the solver.
pub fn solve(spec: &GridSpec, pads: &PadRing, solver: Solver) -> Result<IrMap, PowerError> {
    match solver {
        Solver::Sor => solve_sor(spec, pads),
        Solver::Cg => solve_cg(spec, pads),
    }
}

/// Solves the grid for any pad plan (wire-bond ring, flip-chip array, or
/// explicit nodes).
///
/// # Errors
///
/// Propagates [`PowerError`] from plan validation or the solver.
pub fn solve_plan(spec: &GridSpec, plan: &PadPlan, solver: Solver) -> Result<IrMap, PowerError> {
    let nodes = plan.clamp_nodes(spec)?;
    match solver {
        Solver::Sor => solve_sor_nodes(spec, &nodes),
        Solver::Cg => solve_cg_nodes(spec, &nodes),
    }
}

/// The paper's "improved IR-drop (%)": the relative reduction
/// `(before − after) / before × 100`.
///
/// Negative when the drop got worse. Returns 0 for a non-positive
/// `before` (nothing to improve).
#[must_use]
pub fn improvement_percent(before: f64, after: f64) -> f64 {
    if before <= 0.0 {
        return 0.0;
    }
    (before - after) / before * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_dispatches_to_both_solvers() {
        let spec = GridSpec::default_chip(10);
        let ring = PadRing::uniform(4);
        let a = solve(&spec, &ring, Solver::Sor).unwrap();
        let b = solve(&spec, &ring, Solver::Cg).unwrap();
        assert!((a.max_drop() - b.max_drop()).abs() < 1e-6);
    }

    #[test]
    fn improvement_percent_matches_paper_semantics() {
        // Table 3 reports e.g. 27.36% improvement: after = before·(1−0.2736).
        let before = 100.0;
        let after = before * (1.0 - 0.2736);
        assert!((improvement_percent(before, after) - 27.36).abs() < 1e-9);
        assert!(improvement_percent(50.0, 60.0) < 0.0);
        assert_eq!(improvement_percent(0.0, 1.0), 0.0);
    }

    #[test]
    fn solver_display_names() {
        assert_eq!(Solver::Sor.to_string(), "sor");
        assert_eq!(Solver::Cg.to_string(), "cg");
        assert_eq!(Solver::default(), Solver::Sor);
    }
}
