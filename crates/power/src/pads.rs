//! Power-pad rings on the die boundary.

use serde::{Deserialize, Serialize};

use crate::{GridSpec, PowerError};

/// A set of power pads on the die boundary, each at a normalised perimeter
/// coordinate `t ∈ [0, 1)` (counter-clockwise from the bottom-left corner —
/// the same parameterisation as `copack_geom::Package::perimeter_t`).
///
/// Pads are ideal voltage sources: the grid nodes under them are clamped to
/// `Vdd` by the solvers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PadRing {
    ts: Vec<f64>,
}

impl PadRing {
    /// Builds a ring from perimeter coordinates.
    ///
    /// Coordinates are kept in the order given; duplicates are allowed (two
    /// pads may share a boundary node on a coarse grid).
    ///
    /// # Errors
    ///
    /// * [`PowerError::NoPads`] if `ts` is empty.
    /// * [`PowerError::BadPadPosition`] if a coordinate is outside `[0, 1)`.
    pub fn from_ts<I>(ts: I) -> Result<Self, PowerError>
    where
        I: IntoIterator<Item = f64>,
    {
        let ts: Vec<f64> = ts.into_iter().collect();
        if ts.is_empty() {
            return Err(PowerError::NoPads);
        }
        for &t in &ts {
            if !t.is_finite() || !(0.0..1.0).contains(&t) {
                return Err(PowerError::BadPadPosition { t });
            }
        }
        Ok(Self { ts })
    }

    /// `k` pads spread perfectly uniformly around the perimeter — the
    /// "regularly planned" configuration of the paper's Fig. 6(B).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    #[must_use]
    pub fn uniform(k: usize) -> Self {
        assert!(k > 0, "a pad ring needs at least one pad");
        Self {
            ts: (0..k).map(|i| (i as f64 + 0.5) / k as f64).collect(),
        }
    }

    /// Perimeter coordinates, in insertion order.
    #[must_use]
    pub fn ts(&self) -> &[f64] {
        &self.ts
    }

    /// Number of pads.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// Whether the ring has no pads (never true for a constructed ring).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// The boundary grid nodes the pads clamp, for a given grid. Several
    /// pads may map to one node; the list is deduplicated.
    #[must_use]
    pub fn clamp_nodes(&self, spec: &GridSpec) -> Vec<(usize, usize)> {
        let boundary = spec.boundary_nodes();
        let blen = boundary.len();
        let mut nodes: Vec<(usize, usize)> = self
            .ts
            .iter()
            .map(|&t| boundary[((t * blen as f64).floor() as usize).min(blen - 1)])
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_ts_validates_range() {
        assert!(matches!(
            PadRing::from_ts(std::iter::empty()),
            Err(PowerError::NoPads)
        ));
        assert!(matches!(
            PadRing::from_ts([0.5, 1.0]),
            Err(PowerError::BadPadPosition { .. })
        ));
        assert!(matches!(
            PadRing::from_ts([-0.1]),
            Err(PowerError::BadPadPosition { .. })
        ));
        assert_eq!(PadRing::from_ts([0.0, 0.5]).unwrap().len(), 2);
    }

    #[test]
    fn uniform_ring_is_evenly_spaced() {
        let ring = PadRing::uniform(4);
        assert_eq!(ring.ts(), &[0.125, 0.375, 0.625, 0.875]);
        assert!(!ring.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one pad")]
    fn uniform_rejects_zero() {
        let _ = PadRing::uniform(0);
    }

    #[test]
    fn clamp_nodes_land_on_the_boundary() {
        let spec = GridSpec::default_chip(8);
        let ring = PadRing::uniform(6);
        for (i, j) in ring.clamp_nodes(&spec) {
            assert!(i == 0 || j == 0 || i == spec.nx - 1 || j == spec.ny - 1);
        }
    }

    #[test]
    fn coincident_pads_deduplicate() {
        let spec = GridSpec::default_chip(8);
        let ring = PadRing::from_ts([0.1, 0.1, 0.1]).unwrap();
        assert_eq!(ring.clamp_nodes(&spec).len(), 1);
    }

    #[test]
    fn quarter_points_land_on_the_expected_edges() {
        let spec = GridSpec::default_chip(9);
        let ring = PadRing::from_ts([0.0, 0.26, 0.51, 0.76]).unwrap();
        let nodes = ring.clamp_nodes(&spec);
        assert!(nodes.contains(&(0, 0)));
        // t≈0.26 → right edge, t≈0.51 → top edge, t≈0.76 → left edge.
        assert!(nodes.iter().any(|&(i, _)| i == spec.nx - 1));
        assert!(nodes.iter().any(|&(_, j)| j == spec.ny - 1));
        assert!(nodes.iter().filter(|&&(i, _)| i == 0).count() >= 2);
    }
}
