//! Successive over-relaxation solver for the power grid.

use copack_obs::{Event, NoopRecorder, Recorder, Solver};

use crate::{GridSpec, IrMap, PadRing, PowerError};

/// Convergence tolerance on the largest per-sweep voltage update (volts).
const TOL: f64 = 1e-12;

/// Hard cap on SOR sweeps.
const MAX_SWEEPS: usize = 200_000;

/// Solves the discretised Eq. 1 by successive over-relaxation.
///
/// Pad nodes are clamped to `Vdd`; every other node satisfies the 5-point
/// balance with a constant current sink. The relaxation factor is the
/// classic optimum for the Laplace operator on an `n`-point mesh,
/// `ω = 2 / (1 + sin(π/n))`.
///
/// # Errors
///
/// * [`PowerError::BadSpec`] for an invalid grid.
/// * [`PowerError::NoConvergence`] if the sweep cap is hit (practically
///   unreachable for sane grids).
pub fn solve_sor(spec: &GridSpec, pads: &PadRing) -> Result<IrMap, PowerError> {
    solve_sor_nodes(spec, &pads.clamp_nodes(spec))
}

/// [`solve_sor`] warm-started from a previous solution's voltages.
///
/// When the pad ring changes only slightly between solves — the annealer's
/// FullSolve objective moves one pad per accepted move — the previous
/// fixed point is an excellent initial iterate and SOR converges in a
/// fraction of the sweeps. The result satisfies the same `1e-12`
/// convergence tolerance as a cold solve but is **not** bit-identical to
/// one (the iteration path differs).
///
/// A `guess` of the wrong length (e.g. from a different grid) is ignored
/// and the solve falls back to the cold start. Clamp nodes in the guess
/// are reset to `Vdd`.
///
/// # Errors
///
/// As [`solve_sor`].
pub fn solve_sor_warm(
    spec: &GridSpec,
    pads: &PadRing,
    guess: Option<&[f64]>,
) -> Result<IrMap, PowerError> {
    solve_sor_nodes_warm(spec, &pads.clamp_nodes(spec), guess)
}

/// [`solve_sor_warm`] with telemetry: one [`Event::SolverSweep`] per
/// sweep (the residual is the largest voltage update) and a final
/// [`Event::SolverDone`]. A disabled recorder costs nothing and the
/// solve is bit-identical to the untraced entry points.
///
/// # Errors
///
/// As [`solve_sor`].
pub fn solve_sor_warm_traced(
    spec: &GridSpec,
    pads: &PadRing,
    guess: Option<&[f64]>,
    recorder: &mut dyn Recorder,
) -> Result<IrMap, PowerError> {
    solve_sor_nodes_warm_traced(spec, &pads.clamp_nodes(spec), guess, recorder)
}

/// [`solve_sor`] for an explicit clamp-node list (any [`crate::PadPlan`]).
///
/// # Errors
///
/// As [`solve_sor`].
pub fn solve_sor_nodes(spec: &GridSpec, clamp: &[(usize, usize)]) -> Result<IrMap, PowerError> {
    solve_sor_nodes_warm(spec, clamp, None)
}

/// [`solve_sor_nodes`] with an optional warm-start guess (see
/// [`solve_sor_warm`]).
///
/// # Errors
///
/// As [`solve_sor`].
pub fn solve_sor_nodes_warm(
    spec: &GridSpec,
    clamp: &[(usize, usize)],
    guess: Option<&[f64]>,
) -> Result<IrMap, PowerError> {
    solve_sor_nodes_warm_traced(spec, clamp, guess, &mut NoopRecorder)
}

/// [`solve_sor_nodes_warm`] with telemetry (see
/// [`solve_sor_warm_traced`]).
///
/// # Errors
///
/// As [`solve_sor`].
pub fn solve_sor_nodes_warm_traced(
    spec: &GridSpec,
    clamp: &[(usize, usize)],
    guess: Option<&[f64]>,
    recorder: &mut dyn Recorder,
) -> Result<IrMap, PowerError> {
    spec.validate()?;
    let (nx, ny) = (spec.nx, spec.ny);
    let n = spec.node_count();
    let mut clamped = vec![false; n];
    for &(i, j) in clamp {
        clamped[spec.idx(i, j)] = true;
    }

    let gx = spec.gx();
    let gy = spec.gy();
    let sinks: Vec<f64> = (0..n)
        .map(|p| spec.node_current_at(p % nx, p / nx))
        .collect();
    let omega = 2.0 / (1.0 + (std::f64::consts::PI / nx.max(ny) as f64).sin());

    let mut v = match guess {
        Some(g) if g.len() == n => {
            let mut v = g.to_vec();
            // The clamp set may differ from the guess's solve; re-pin pads.
            for (p, &is_clamped) in clamped.iter().enumerate() {
                if is_clamped {
                    v[p] = spec.vdd;
                }
            }
            v
        }
        _ => vec![spec.vdd; n],
    };
    let rec_on = recorder.enabled();
    for sweep in 0..MAX_SWEEPS {
        let mut max_delta: f64 = 0.0;
        for j in 0..ny {
            for i in 0..nx {
                let p = spec.idx(i, j);
                if clamped[p] {
                    continue;
                }
                let mut num = -sinks[p];
                let mut den = 0.0;
                if i > 0 {
                    num += gx * v[p - 1];
                    den += gx;
                }
                if i + 1 < nx {
                    num += gx * v[p + 1];
                    den += gx;
                }
                if j > 0 {
                    num += gy * v[p - nx];
                    den += gy;
                }
                if j + 1 < ny {
                    num += gy * v[p + nx];
                    den += gy;
                }
                let v_gs = num / den;
                let delta = omega * (v_gs - v[p]);
                v[p] += delta;
                max_delta = max_delta.max(delta.abs());
            }
        }
        if rec_on {
            recorder.record(&Event::SolverSweep {
                solver: Solver::Sor,
                sweep: sweep as u32,
                residual: max_delta,
            });
        }
        if max_delta < TOL {
            if rec_on {
                recorder.record(&Event::SolverDone {
                    solver: Solver::Sor,
                    sweeps: (sweep + 1) as u32,
                    residual: max_delta,
                    converged: true,
                });
            }
            return Ok(IrMap::new(nx, ny, spec.vdd, v));
        }
    }
    if rec_on {
        recorder.record(&Event::SolverDone {
            solver: Solver::Sor,
            sweeps: MAX_SWEEPS as u32,
            residual: TOL,
            converged: false,
        });
    }
    Err(PowerError::NoConvergence {
        iterations: MAX_SWEEPS,
        residual: TOL,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nodes_at_or_below_vdd() {
        let spec = GridSpec::default_chip(16);
        let map = solve_sor(&spec, &PadRing::uniform(8)).unwrap();
        for &v in map.voltages() {
            assert!(v <= spec.vdd + 1e-9);
            assert!(v > 0.0);
        }
        assert!(map.max_drop() > 0.0);
    }

    #[test]
    fn pad_nodes_stay_clamped() {
        let spec = GridSpec::default_chip(12);
        let ring = PadRing::uniform(4);
        let map = solve_sor(&spec, &ring).unwrap();
        for (i, j) in ring.clamp_nodes(&spec) {
            assert_eq!(map.voltage(i, j), spec.vdd);
        }
    }

    #[test]
    fn more_pads_reduce_the_drop() {
        let spec = GridSpec::default_chip(16);
        let few = solve_sor(&spec, &PadRing::uniform(2)).unwrap();
        let many = solve_sor(&spec, &PadRing::uniform(16)).unwrap();
        assert!(many.max_drop() < few.max_drop());
    }

    #[test]
    fn uniform_pads_beat_clustered_pads() {
        // The paper's Fig. 6(A) vs (B): random/clustered pads are much
        // worse than regularly spread pads.
        let spec = GridSpec::default_chip(16);
        let uniform = solve_sor(&spec, &PadRing::uniform(6)).unwrap();
        let clustered = solve_sor(
            &spec,
            &PadRing::from_ts([0.0, 0.02, 0.04, 0.06, 0.08, 0.10]).unwrap(),
        )
        .unwrap();
        assert!(uniform.max_drop() < clustered.max_drop());
    }

    #[test]
    fn symmetric_pads_give_a_symmetric_map() {
        let spec = GridSpec::default_chip(12);
        // Pads at the four edge mid-points: 90°-rotation symmetric.
        let ring = PadRing::uniform(4);
        let map = solve_sor(&spec, &ring).unwrap();
        let n = spec.nx - 1;
        for i in 0..spec.nx {
            for j in 0..spec.ny {
                let a = map.voltage(i, j);
                let b = map.voltage(n - i, n - j); // 180° rotation
                assert!((a - b).abs() < 1e-7, "({i},{j}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn worst_node_is_far_from_pads() {
        // One pad at the bottom-left corner: the worst drop must be in the
        // opposite half of the die.
        let spec = GridSpec::default_chip(12);
        let map = solve_sor(&spec, &PadRing::from_ts([0.0]).unwrap()).unwrap();
        let (i, j) = map.worst_node();
        assert!(i + j > spec.nx / 2, "worst node ({i},{j}) too close to pad");
    }

    #[test]
    fn warm_start_reaches_the_cold_fixed_point() {
        let spec = GridSpec::default_chip(16);
        let a = PadRing::from_ts([0.1, 0.35, 0.6, 0.85]).unwrap();
        let b = PadRing::from_ts([0.12, 0.35, 0.6, 0.85]).unwrap(); // one pad nudged
        let cold_a = solve_sor(&spec, &a).unwrap();
        let cold_b = solve_sor(&spec, &b).unwrap();
        let warm_b = solve_sor_warm(&spec, &b, Some(cold_a.voltages())).unwrap();
        for (w, c) in warm_b.voltages().iter().zip(cold_b.voltages()) {
            assert!((w - c).abs() < 1e-9, "{w} vs {c}");
        }
        // Clamp nodes stay pinned even when the guess had them free.
        for (i, j) in b.clamp_nodes(&spec) {
            assert_eq!(warm_b.voltage(i, j), spec.vdd);
        }
    }

    #[test]
    fn mismatched_guess_falls_back_to_cold_start() {
        let spec = GridSpec::default_chip(12);
        let ring = PadRing::uniform(4);
        let cold = solve_sor(&spec, &ring).unwrap();
        let short_guess = vec![spec.vdd; 7];
        let warm = solve_sor_warm(&spec, &ring, Some(&short_guess)).unwrap();
        assert_eq!(warm.voltages(), cold.voltages());
    }

    #[test]
    fn bad_spec_is_rejected() {
        let bad = GridSpec {
            vdd: 0.0,
            ..GridSpec::default_chip(8)
        };
        assert!(solve_sor(&bad, &PadRing::uniform(2)).is_err());
    }

    #[test]
    fn drop_scales_linearly_with_current() {
        // The system is linear: doubling J0 doubles every drop.
        let spec = GridSpec::default_chip(10);
        let double = GridSpec {
            current_density: spec.current_density * 2.0,
            ..spec.clone()
        };
        let ring = PadRing::uniform(5);
        let a = solve_sor(&spec, &ring).unwrap();
        let b = solve_sor(&double, &ring).unwrap();
        assert!((b.max_drop() / a.max_drop() - 2.0).abs() < 1e-6);
    }
}
