//! Pad placements beyond the boundary ring: flip-chip area arrays.
//!
//! The paper (§2.4) adopts wire-bond packaging, noting that "the IR-drop
//! problem of a wire-bond package is worse than a flip-chip package"
//! because flip-chip feeds the core from an **area array** of bumps over
//! the whole die rather than from the boundary. This module models both so
//! the claim can be measured (see the `flipchip` example and the A4 study
//! in `EXPERIMENTS.md`).

use serde::{Deserialize, Serialize};

use crate::{GridSpec, PadRing, PowerError};

/// A uniform flip-chip power-bump array: `nx × ny` pads spread over the
/// die interior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PadArray {
    /// Pads per row.
    pub nx: usize,
    /// Pads per column.
    pub ny: usize,
}

impl PadArray {
    /// Creates an array.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::NoPads`] if either dimension is zero.
    pub fn new(nx: usize, ny: usize) -> Result<Self, PowerError> {
        if nx == 0 || ny == 0 {
            return Err(PowerError::NoPads);
        }
        Ok(Self { nx, ny })
    }

    /// Total pad count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// Whether the array is empty (never true for a constructed array).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Grid nodes clamped by the array: pads at the cell centres of an
    /// `nx × ny` partition of the die.
    #[must_use]
    pub fn clamp_nodes(&self, spec: &GridSpec) -> Vec<(usize, usize)> {
        let mut nodes = Vec::with_capacity(self.len());
        for pj in 0..self.ny {
            for pi in 0..self.nx {
                let fx = (pi as f64 + 0.5) / self.nx as f64;
                let fy = (pj as f64 + 0.5) / self.ny as f64;
                let i = ((fx * spec.nx as f64) as usize).min(spec.nx - 1);
                let j = ((fy * spec.ny as f64) as usize).min(spec.ny - 1);
                nodes.push((i, j));
            }
        }
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

/// Where the supply pads sit: the package style.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PadPlan {
    /// Wire-bond style: pads on the die boundary (the paper's setting).
    WireBond(PadRing),
    /// Flip-chip style: an area array over the die.
    FlipChip(PadArray),
    /// Explicit grid nodes (escape hatch for irregular plans).
    Explicit(Vec<(usize, usize)>),
}

impl PadPlan {
    /// The grid nodes this plan clamps to `Vdd`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::NoPads`] if the plan clamps nothing, or
    /// [`PowerError::BadSpec`] if an explicit node is outside the grid.
    pub fn clamp_nodes(&self, spec: &GridSpec) -> Result<Vec<(usize, usize)>, PowerError> {
        let nodes = match self {
            Self::WireBond(ring) => ring.clamp_nodes(spec),
            Self::FlipChip(array) => array.clamp_nodes(spec),
            Self::Explicit(nodes) => {
                for &(i, j) in nodes {
                    if i >= spec.nx || j >= spec.ny {
                        return Err(PowerError::BadSpec {
                            parameter: "pad node",
                        });
                    }
                }
                let mut nodes = nodes.clone();
                nodes.sort_unstable();
                nodes.dedup();
                nodes
            }
        };
        if nodes.is_empty() {
            return Err(PowerError::NoPads);
        }
        Ok(nodes)
    }

    /// Number of distinct pads in the plan (before grid snapping).
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Self::WireBond(ring) => ring.len(),
            Self::FlipChip(array) => array.len(),
            Self::Explicit(nodes) => nodes.len(),
        }
    }

    /// Whether the plan has no pads.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_plan, Solver};

    #[test]
    fn array_nodes_cover_the_interior() {
        let spec = GridSpec::default_chip(16);
        let array = PadArray::new(3, 3).unwrap();
        let nodes = array.clamp_nodes(&spec);
        assert_eq!(nodes.len(), 9);
        for (i, j) in nodes {
            assert!(i > 0 && i < 15 && j > 0 && j < 15, "({i},{j}) not interior");
        }
    }

    #[test]
    fn degenerate_arrays_are_rejected() {
        assert!(PadArray::new(0, 3).is_err());
        assert!(PadArray::new(3, 0).is_err());
        assert!(!PadArray::new(2, 2).unwrap().is_empty());
    }

    #[test]
    fn explicit_nodes_validate_bounds() {
        let spec = GridSpec::default_chip(8);
        let ok = PadPlan::Explicit(vec![(0, 0), (7, 7), (0, 0)]);
        assert_eq!(ok.clamp_nodes(&spec).unwrap().len(), 2);
        let bad = PadPlan::Explicit(vec![(8, 0)]);
        assert!(bad.clamp_nodes(&spec).is_err());
        let empty = PadPlan::Explicit(vec![]);
        assert!(empty.clamp_nodes(&spec).is_err());
    }

    #[test]
    fn flip_chip_beats_wire_bond_at_equal_pad_count() {
        // The §2.4 claim, quantified: 16 boundary pads vs a 4×4 area array.
        let spec = GridSpec::default_chip(24);
        let wire_bond = PadPlan::WireBond(crate::PadRing::uniform(16));
        let flip_chip = PadPlan::FlipChip(PadArray::new(4, 4).unwrap());
        let wb = solve_plan(&spec, &wire_bond, Solver::Sor).unwrap();
        let fc = solve_plan(&spec, &flip_chip, Solver::Sor).unwrap();
        assert!(
            fc.max_drop() < wb.max_drop() / 2.0,
            "flip-chip {:.4} !<< wire-bond {:.4}",
            fc.max_drop(),
            wb.max_drop()
        );
    }

    #[test]
    fn plan_len_reports_pad_counts() {
        assert_eq!(PadPlan::WireBond(crate::PadRing::uniform(5)).len(), 5);
        assert_eq!(PadPlan::FlipChip(PadArray::new(2, 3).unwrap()).len(), 6);
        assert_eq!(PadPlan::Explicit(vec![(0, 0)]).len(), 1);
    }
}
