//! Power-grid specification: the discretised Eq. 1 of the paper.

use serde::{Deserialize, Serialize};

use crate::PowerError;

/// A circular region of elevated power density — the hotspot structure of
/// real designs (the uniform-`J₀` assumption of Eq. 1 is the paper's
/// simplification; the finite-difference substrate handles any `J(x,y)`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hotspot {
    /// Centre x, as a fraction of the die width in `[0, 1]`.
    pub cx: f64,
    /// Centre y, as a fraction of the die height in `[0, 1]`.
    pub cy: f64,
    /// Radius, as a fraction of the die width.
    pub radius: f64,
    /// Current-density multiplier inside the region (≥ 0; 1 = no change).
    pub multiplier: f64,
}

/// Specification of the on-chip power distribution grid.
///
/// The paper's Eq. 1 (after Shakeri–Meindl) balances, at every grid point,
/// the currents to the four neighbours against the uniform consumption
/// `J₀·Δx·Δy`. On a uniform square mesh this reduces to a weighted
/// 5-point Laplacian with edge conductances `1/R_sx` (horizontal) and
/// `1/R_sy` (vertical) and a constant current sink per node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Nodes per side in x.
    pub nx: usize,
    /// Nodes per side in y.
    pub ny: usize,
    /// Mesh pitch Δx = Δy (µm).
    pub pitch: f64,
    /// Sheet resistance of horizontal straps (Ω/sq).
    pub r_sheet_x: f64,
    /// Sheet resistance of vertical straps (Ω/sq).
    pub r_sheet_y: f64,
    /// Uniform current density J₀ (A/µm²): every node sinks `J₀·Δx·Δy`.
    pub current_density: f64,
    /// Supply voltage clamped at the power pads (V).
    pub vdd: f64,
    /// Regions of elevated power density (empty = the paper's uniform J₀).
    #[serde(default)]
    pub hotspots: Vec<Hotspot>,
}

impl GridSpec {
    /// A representative sub-100 nm chip power grid with `n × n` nodes:
    /// 1 V supply, 0.04 Ω/sq straps, and a current density calibrated so a
    /// reasonable pad ring produces drops in the tens of millivolts — the
    /// regime of the paper's Fig. 6 (117.4 / 77.3 / 55.2 mV).
    #[must_use]
    pub fn default_chip(n: usize) -> Self {
        Self {
            nx: n,
            ny: n,
            pitch: 100.0,
            r_sheet_x: 0.04,
            r_sheet_y: 0.04,
            current_density: 2.0e-8,
            vdd: 1.0,
            hotspots: Vec::new(),
        }
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::BadSpec`] naming the first invalid parameter.
    /// The grid must be at least 2×2 and all physical values positive and
    /// finite.
    pub fn validate(&self) -> Result<(), PowerError> {
        if self.nx < 2 {
            return Err(PowerError::BadSpec { parameter: "nx" });
        }
        if self.ny < 2 {
            return Err(PowerError::BadSpec { parameter: "ny" });
        }
        let positives: [(&'static str, f64); 5] = [
            ("pitch", self.pitch),
            ("r_sheet_x", self.r_sheet_x),
            ("r_sheet_y", self.r_sheet_y),
            ("current_density", self.current_density),
            ("vdd", self.vdd),
        ];
        for (parameter, v) in positives {
            if !(v.is_finite() && v > 0.0) {
                return Err(PowerError::BadSpec { parameter });
            }
        }
        for h in &self.hotspots {
            let in_unit = |v: f64| v.is_finite() && (0.0..=1.0).contains(&v);
            if !(in_unit(h.cx) && in_unit(h.cy)) {
                return Err(PowerError::BadSpec {
                    parameter: "hotspot centre",
                });
            }
            if !(h.radius.is_finite() && h.radius > 0.0) {
                return Err(PowerError::BadSpec {
                    parameter: "hotspot radius",
                });
            }
            if !(h.multiplier.is_finite() && h.multiplier >= 0.0) {
                return Err(PowerError::BadSpec {
                    parameter: "hotspot multiplier",
                });
            }
        }
        Ok(())
    }

    /// Total node count.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nx * self.ny
    }

    /// Horizontal edge conductance `1/R_sx` (square cells).
    #[must_use]
    pub fn gx(&self) -> f64 {
        1.0 / self.r_sheet_x
    }

    /// Vertical edge conductance `1/R_sy`.
    #[must_use]
    pub fn gy(&self) -> f64 {
        1.0 / self.r_sheet_y
    }

    /// Uniform current sunk per node: `J₀·Δx·Δy` (A).
    #[must_use]
    pub fn node_current(&self) -> f64 {
        self.current_density * self.pitch * self.pitch
    }

    /// Current sunk at node `(i, j)`, including hotspot multipliers.
    /// Overlapping hotspots multiply.
    #[must_use]
    pub fn node_current_at(&self, i: usize, j: usize) -> f64 {
        let mut current = self.node_current();
        if self.hotspots.is_empty() {
            return current;
        }
        let fx = (i as f64 + 0.5) / self.nx as f64;
        let fy = (j as f64 + 0.5) / self.ny as f64;
        for h in &self.hotspots {
            let d = (fx - h.cx).hypot(fy - h.cy);
            if d <= h.radius {
                current *= h.multiplier;
            }
        }
        current
    }

    /// Linear node index of `(i, j)`.
    #[must_use]
    pub fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny);
        j * self.nx + i
    }

    /// Number of boundary nodes (the candidate pad locations).
    #[must_use]
    pub fn boundary_len(&self) -> usize {
        if self.nx < 2 || self.ny < 2 {
            return self.node_count();
        }
        2 * self.nx + 2 * self.ny - 4
    }

    /// The `k`-th boundary node, walking the perimeter counter-clockwise
    /// from the bottom-left corner: bottom edge left→right, right edge
    /// bottom→top, top edge right→left, left edge top→bottom.
    ///
    /// # Panics
    ///
    /// Panics if `k ≥ boundary_len()`.
    #[must_use]
    pub fn boundary_node(&self, k: usize) -> (usize, usize) {
        let (nx, ny) = (self.nx, self.ny);
        assert!(k < self.boundary_len(), "boundary index out of range");
        if k < nx {
            (k, 0)
        } else if k < nx + ny - 1 {
            (nx - 1, k - nx + 1)
        } else if k < 2 * nx + ny - 2 {
            (nx - 1 - (k - (nx + ny - 2)), ny - 1)
        } else {
            (0, ny - 1 - (k - (2 * nx + ny - 3)))
        }
    }

    /// All boundary nodes as a dense table indexed by the perimeter
    /// coordinate `k` of [`GridSpec::boundary_node`], built in one
    /// branch-free walk. Callers that map many pads to nodes (pad rings,
    /// the placement search) index this once instead of re-deriving each
    /// node from the branchy per-`k` form.
    #[must_use]
    pub fn boundary_nodes(&self) -> Vec<(usize, usize)> {
        let (nx, ny) = (self.nx, self.ny);
        let mut nodes = Vec::with_capacity(self.boundary_len());
        nodes.extend((0..nx).map(|i| (i, 0)));
        nodes.extend((1..ny).map(|j| (nx - 1, j)));
        nodes.extend((1..nx).rev().map(|i| (i - 1, ny - 1)));
        nodes.extend((1..ny - 1).rev().map(|j| (0, j)));
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_chip_is_valid() {
        assert!(GridSpec::default_chip(16).validate().is_ok());
    }

    #[test]
    fn validation_catches_each_parameter() {
        let base = GridSpec::default_chip(8);
        let cases = [
            GridSpec {
                nx: 1,
                ..base.clone()
            },
            GridSpec {
                ny: 0,
                ..base.clone()
            },
            GridSpec {
                pitch: 0.0,
                ..base.clone()
            },
            GridSpec {
                r_sheet_x: -1.0,
                ..base.clone()
            },
            GridSpec {
                r_sheet_y: f64::NAN,
                ..base.clone()
            },
            GridSpec {
                current_density: 0.0,
                ..base.clone()
            },
            GridSpec {
                vdd: f64::INFINITY,
                ..base
            },
        ];
        for bad in cases {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn boundary_walk_visits_each_node_once() {
        let spec = GridSpec::default_chip(5);
        assert_eq!(spec.boundary_len(), 16);
        let mut seen = std::collections::HashSet::new();
        for k in 0..spec.boundary_len() {
            let (i, j) = spec.boundary_node(k);
            assert!(i == 0 || j == 0 || i == spec.nx - 1 || j == spec.ny - 1);
            assert!(seen.insert((i, j)), "({i},{j}) visited twice");
        }
    }

    #[test]
    fn boundary_walk_is_counter_clockwise() {
        let spec = GridSpec::default_chip(4);
        assert_eq!(spec.boundary_node(0), (0, 0));
        assert_eq!(spec.boundary_node(3), (3, 0)); // bottom-right corner
        assert_eq!(spec.boundary_node(6), (3, 3)); // top-right corner
        assert_eq!(spec.boundary_node(9), (0, 3)); // top-left corner
        assert_eq!(spec.boundary_node(11), (0, 1)); // walking down the left
    }

    #[test]
    fn boundary_table_matches_the_per_k_walk() {
        for n in [2usize, 3, 4, 5, 9] {
            let spec = GridSpec {
                ny: n + 1,
                ..GridSpec::default_chip(n)
            };
            let table = spec.boundary_nodes();
            assert_eq!(table.len(), spec.boundary_len());
            for (k, &node) in table.iter().enumerate() {
                assert_eq!(node, spec.boundary_node(k), "k={k} n={n}");
            }
        }
    }

    #[test]
    fn conductances_and_current_follow_eq1() {
        let spec = GridSpec::default_chip(8);
        assert!((spec.gx() - 25.0).abs() < 1e-12);
        assert!((spec.node_current() - 2.0e-8 * 1e4).abs() < 1e-15);
    }

    #[test]
    fn hotspots_multiply_local_current() {
        let mut spec = GridSpec::default_chip(10);
        spec.hotspots.push(Hotspot {
            cx: 0.25,
            cy: 0.25,
            radius: 0.15,
            multiplier: 5.0,
        });
        assert!(spec.validate().is_ok());
        let inside = spec.node_current_at(2, 2);
        let outside = spec.node_current_at(8, 8);
        assert!((inside / outside - 5.0).abs() < 1e-12);
        assert!((outside - spec.node_current()).abs() < 1e-18);
    }

    #[test]
    fn overlapping_hotspots_compound() {
        let mut spec = GridSpec::default_chip(10);
        let h = Hotspot {
            cx: 0.5,
            cy: 0.5,
            radius: 0.3,
            multiplier: 2.0,
        };
        spec.hotspots.push(h);
        spec.hotspots.push(h);
        let centre = spec.node_current_at(5, 5);
        assert!((centre / spec.node_current() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn bad_hotspots_are_rejected() {
        for h in [
            Hotspot {
                cx: 1.5,
                cy: 0.5,
                radius: 0.1,
                multiplier: 2.0,
            },
            Hotspot {
                cx: 0.5,
                cy: 0.5,
                radius: 0.0,
                multiplier: 2.0,
            },
            Hotspot {
                cx: 0.5,
                cy: 0.5,
                radius: 0.1,
                multiplier: -1.0,
            },
        ] {
            let mut spec = GridSpec::default_chip(8);
            spec.hotspots.push(h);
            assert!(spec.validate().is_err(), "{h:?}");
        }
    }

    #[test]
    fn idx_is_row_major() {
        let spec = GridSpec::default_chip(4);
        assert_eq!(spec.idx(0, 0), 0);
        assert_eq!(spec.idx(3, 0), 3);
        assert_eq!(spec.idx(0, 1), 4);
        assert_eq!(spec.node_count(), 16);
    }
}
