//! Error type for IR-drop analysis.

use std::error::Error;
use std::fmt;

/// Errors raised by power-grid construction and solving.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PowerError {
    /// A grid parameter was non-positive, non-finite, or the grid too small.
    BadSpec {
        /// Name of the offending parameter.
        parameter: &'static str,
    },
    /// A pad ring was built with no pads (the grid would float).
    NoPads,
    /// A pad coordinate was outside `[0, 1)` or not finite.
    BadPadPosition {
        /// The offending coordinate.
        t: f64,
    },
    /// The iterative solver did not reach the tolerance.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Residual when giving up.
        residual: f64,
    },
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadSpec { parameter } => {
                write!(f, "grid parameter `{parameter}` is invalid")
            }
            Self::NoPads => write!(f, "a pad ring needs at least one pad"),
            Self::BadPadPosition { t } => {
                write!(f, "pad position {t} is outside the perimeter range [0, 1)")
            }
            Self::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "solver stalled after {iterations} iterations (residual {residual:.3e})"
            ),
        }
    }
}

impl Error for PowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_nonempty() {
        for e in [
            PowerError::BadSpec { parameter: "vdd" },
            PowerError::NoPads,
            PowerError::BadPadPosition { t: 1.5 },
            PowerError::NoConvergence {
                iterations: 10,
                residual: 1e-3,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<PowerError>();
    }
}
