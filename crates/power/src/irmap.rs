//! IR-drop maps: the solved node voltages.

use serde::{Deserialize, Serialize};

/// Node voltages of a solved power grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IrMap {
    nx: usize,
    ny: usize,
    vdd: f64,
    v: Vec<f64>,
}

impl IrMap {
    /// Wraps solved voltages (row-major, `ny` rows of `nx`).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != nx * ny`.
    #[must_use]
    pub fn new(nx: usize, ny: usize, vdd: f64, v: Vec<f64>) -> Self {
        assert_eq!(v.len(), nx * ny, "voltage vector shape mismatch");
        Self { nx, ny, vdd, v }
    }

    /// Grid width in nodes.
    #[must_use]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in nodes.
    #[must_use]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// The supply voltage the pads clamp to.
    #[must_use]
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Voltage at node `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    #[must_use]
    pub fn voltage(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.nx && j < self.ny, "node out of range");
        self.v[j * self.nx + i]
    }

    /// IR-drop at node `(i, j)`: `Vdd − V(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    #[must_use]
    pub fn drop_at(&self, i: usize, j: usize) -> f64 {
        self.vdd - self.voltage(i, j)
    }

    /// The paper's headline metric: the maximum IR-drop anywhere on the die.
    #[must_use]
    pub fn max_drop(&self) -> f64 {
        let vmin = self.v.iter().copied().fold(f64::INFINITY, f64::min);
        self.vdd - vmin
    }

    /// Node with the worst drop (first one if tied).
    #[must_use]
    pub fn worst_node(&self) -> (usize, usize) {
        let mut best = (0, 0);
        let mut vmin = f64::INFINITY;
        for j in 0..self.ny {
            for i in 0..self.nx {
                let v = self.voltage(i, j);
                if v < vmin {
                    vmin = v;
                    best = (i, j);
                }
            }
        }
        best
    }

    /// Mean IR-drop over all nodes.
    #[must_use]
    pub fn mean_drop(&self) -> f64 {
        let sum: f64 = self.v.iter().map(|&v| self.vdd - v).sum();
        sum / self.v.len() as f64
    }

    /// Raw voltages, row-major.
    #[must_use]
    pub fn voltages(&self) -> &[f64] {
        &self.v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IrMap {
        IrMap::new(2, 2, 1.0, vec![1.0, 0.9, 0.95, 0.8])
    }

    #[test]
    fn accessors_report_shape_and_values() {
        let m = sample();
        assert_eq!((m.nx(), m.ny()), (2, 2));
        assert_eq!(m.vdd(), 1.0);
        assert_eq!(m.voltage(1, 0), 0.9);
        assert!((m.drop_at(1, 1) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn max_drop_and_worst_node_agree() {
        let m = sample();
        assert!((m.max_drop() - 0.2).abs() < 1e-12);
        assert_eq!(m.worst_node(), (1, 1));
        let (i, j) = m.worst_node();
        assert!((m.drop_at(i, j) - m.max_drop()).abs() < 1e-12);
    }

    #[test]
    fn mean_drop_averages() {
        let m = sample();
        assert!((m.mean_drop() - (0.0 + 0.1 + 0.05 + 0.2) / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn wrong_shape_is_rejected() {
        let _ = IrMap::new(2, 2, 1.0, vec![1.0; 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        let _ = sample().voltage(2, 0);
    }
}
