//! The fast pad-spacing proxy the exchange step optimises.
//!
//! Directly solving Eq. 1 for every simulated-annealing move is far too
//! slow (the paper: "the analysis time for the chip is very long"), so the
//! paper instead "compute\[s\] the variation of Δx and Δy to be the IR-drop
//! improvement when the location of the power pad is exchanged": pads that
//! are spread evenly along the die boundary minimise the worst distance any
//! grid region has to a supply, which Eq. 1 translates into lower drops.
//!
//! [`PadSpacingProxy`] scores a pad ring by how uneven its perimeter gaps
//! are. Zero means perfectly uniform; larger is worse. The proxy is
//! validated against the full solver in this crate's tests and in the
//! `ablation` experiment (A3 in `DESIGN.md`).

use serde::{Deserialize, Serialize};

use crate::PowerError;

/// Gap-uniformity score of a power-pad ring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PadSpacingProxy {
    gaps: Vec<f64>,
    ideal: f64,
}

impl PadSpacingProxy {
    /// Builds the proxy from perimeter coordinates in `[0, 1)` (any order).
    ///
    /// # Errors
    ///
    /// * [`PowerError::NoPads`] for an empty slice.
    /// * [`PowerError::BadPadPosition`] for a coordinate outside `[0, 1)`.
    pub fn new(ts: &[f64]) -> Result<Self, PowerError> {
        if ts.is_empty() {
            return Err(PowerError::NoPads);
        }
        let mut sorted = ts.to_vec();
        for &t in &sorted {
            if !t.is_finite() || !(0.0..1.0).contains(&t) {
                return Err(PowerError::BadPadPosition { t });
            }
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let k = sorted.len();
        let mut gaps = Vec::with_capacity(k);
        for w in sorted.windows(2) {
            gaps.push(w[1] - w[0]);
        }
        // Wrap-around gap closes the ring.
        gaps.push(1.0 - sorted[k - 1] + sorted[0]);
        Ok(Self {
            gaps,
            ideal: 1.0 / k as f64,
        })
    }

    /// The perimeter gaps between circularly adjacent pads (sums to 1).
    #[must_use]
    pub fn gaps(&self) -> &[f64] {
        &self.gaps
    }

    /// The largest gap — the most starved stretch of boundary.
    #[must_use]
    pub fn max_gap(&self) -> f64 {
        self.gaps.iter().copied().fold(0.0, f64::max)
    }

    /// The paper's "total variation of Δx and Δy": sum of squared
    /// deviations of each gap from the uniform ideal. Zero iff the ring is
    /// perfectly uniform.
    #[must_use]
    pub fn delta_ir(&self) -> f64 {
        self.gaps.iter().map(|g| (g - self.ideal).powi(2)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_sor, GridSpec, PadRing};

    #[test]
    fn uniform_ring_scores_zero() {
        let p = PadSpacingProxy::new(&[0.125, 0.375, 0.625, 0.875]).unwrap();
        assert!(p.delta_ir() < 1e-15);
        assert!((p.max_gap() - 0.25).abs() < 1e-12);
        assert_eq!(p.gaps().len(), 4);
    }

    #[test]
    fn clustering_raises_the_score() {
        let uniform = PadSpacingProxy::new(&[0.1, 0.35, 0.6, 0.85]).unwrap();
        let clustered = PadSpacingProxy::new(&[0.1, 0.12, 0.14, 0.16]).unwrap();
        assert!(clustered.delta_ir() > uniform.delta_ir());
        assert!(clustered.max_gap() > uniform.max_gap());
    }

    #[test]
    fn input_order_does_not_matter() {
        let a = PadSpacingProxy::new(&[0.7, 0.1, 0.4]).unwrap();
        let b = PadSpacingProxy::new(&[0.1, 0.4, 0.7]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn gaps_sum_to_one() {
        let p = PadSpacingProxy::new(&[0.05, 0.3, 0.31, 0.9]).unwrap();
        let sum: f64 = p.gaps().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert!(matches!(PadSpacingProxy::new(&[]), Err(PowerError::NoPads)));
        assert!(PadSpacingProxy::new(&[1.0]).is_err());
        assert!(PadSpacingProxy::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn proxy_ranks_rings_like_the_full_solver() {
        // The whole point of the proxy: orderings by delta_ir must agree
        // with orderings by solved max drop for progressively clustered
        // rings.
        let spec = GridSpec::default_chip(16);
        let rings = [
            vec![0.125, 0.375, 0.625, 0.875], // uniform
            vec![0.10, 0.30, 0.60, 0.90],     // mildly uneven
            vec![0.05, 0.15, 0.55, 0.65],     // paired
            vec![0.02, 0.06, 0.10, 0.14],     // fully clustered
        ];
        let mut scores = Vec::new();
        for ts in &rings {
            let proxy = PadSpacingProxy::new(ts).unwrap().delta_ir();
            let drop = solve_sor(&spec, &PadRing::from_ts(ts.iter().copied()).unwrap())
                .unwrap()
                .max_drop();
            scores.push((proxy, drop));
        }
        for w in scores.windows(2) {
            assert!(w[0].0 <= w[1].0, "proxy ordering broken: {scores:?}");
            assert!(w[0].1 <= w[1].1, "solver ordering broken: {scores:?}");
        }
    }
}
