//! Planar points and small geometric helpers.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

/// A point in the package plane, in micrometres.
///
/// ```
/// use copack_geom::Point;
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate (µm), growing rightwards.
    pub x: f64,
    /// Vertical coordinate (µm), growing from the ball grid towards the die.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    #[must_use]
    pub fn distance(self, other: Self) -> f64 {
        (self - other).norm()
    }

    /// Manhattan (L1) distance to `other`.
    #[must_use]
    pub fn manhattan(self, other: Self) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean norm of this point treated as a vector.
    #[must_use]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    ///
    /// `t` is not clamped; values outside `[0, 1]` extrapolate.
    #[must_use]
    pub fn lerp(self, other: Self, t: f64) -> Self {
        Self::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }
}

impl Add for Point {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Self;

    fn sub(self, rhs: Self) -> Self {
        Self::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        assert!((Point::new(1.0, 1.0).distance(Point::new(4.0, 5.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_sums_axis_deltas() {
        assert_eq!(Point::new(1.0, 2.0).manhattan(Point::new(-2.0, 4.0)), 5.0);
    }

    #[test]
    fn lerp_hits_endpoints_and_midpoint() {
        let a = Point::new(0.0, 10.0);
        let b = Point::new(4.0, -10.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(2.0, 0.0));
    }

    #[test]
    fn add_and_sub_are_componentwise() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
    }
}
