//! Two-layer BGA package and problem model for chip-package co-design.
//!
//! This crate is the geometric and structural substrate for the `copack`
//! workspace, which reproduces *"Package routability- and IR-drop-aware
//! finger/pad assignment in chip-package co-design"* (Lu, Chen, Liu, Shih;
//! DATE 2009, extended in INTEGRATION 2012).
//!
//! # Model
//!
//! The paper's package (its Fig. 2) is a two-layer ball-grid-array substrate:
//!
//! * the die sits on **Layer 1**, surrounded by a rectangular ring of
//!   *fingers* (landing pads) that receive bonding wires from the die pads;
//! * *bump balls* are uniformly distributed on **Layer 2** and connect to the
//!   PCB;
//! * each net runs finger → (Layer 1 wire) → via → (Layer 2 wire) → ball,
//!   with **at most one via per net**, placed at the bottom-left corner of
//!   the net's bump ball;
//! * the package is cut into four triangular quadrants that are planned
//!   independently.
//!
//! The central type is [`Quadrant`]: one triangle of the package, holding a
//! finger row facing a grid of bump-ball rows. [`Package`] composes four
//! quadrants and maps finger slots onto the die perimeter (needed by the
//! IR-drop model). [`Assignment`] is a net → finger-slot mapping, the output
//! of the planning algorithms in `copack-core`.
//!
//! # Coordinates
//!
//! Within a quadrant, `x` grows to the right and `y` grows **away from the
//! ball grid towards the fingers**: ball row `1` is the lowest (farthest from
//! the die), row `n` the highest (closest to the fingers), and the finger row
//! sits above row `n`. This matches the paper's figures, where the
//! "highest horizontal line" (`y = n`) is processed first by the assignment
//! algorithms and carries the highest wire density.
//!
//! # Example
//!
//! ```
//! use copack_geom::{NetKind, Quadrant};
//!
//! # fn main() -> Result<(), copack_geom::GeomError> {
//! // The 12-net instance of the paper's Fig. 5: three ball rows of
//! // 3, 4 and 5 balls (row 3 is the highest, listed last).
//! let quadrant = Quadrant::builder()
//!     .row([10, 2, 4, 7, 0])  // y = 1 (lowest)
//!     .row([1, 3, 5, 8])      // y = 2
//!     .row([11, 6, 9])        // y = 3 (highest)
//!     .net_kind(0, NetKind::Power)
//!     .build()?;
//!
//! assert_eq!(quadrant.net_count(), 12);
//! assert_eq!(quadrant.row_count(), 3);
//! assert_eq!(quadrant.row(3).len(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod ball;
mod error;
mod ids;
mod net;
mod package;
mod point;
mod quadrant;
mod tier;

pub use assignment::Assignment;
pub use ball::BallRef;
pub use error::GeomError;
pub use ids::{FingerIdx, NetId, QuadrantSide, RowIdx};
pub use net::{Net, NetKind};
pub use package::{Package, PackageBuilder, PerimeterSlot};
pub use point::Point;
pub use quadrant::{NetIndex, Quadrant, QuadrantBuilder, QuadrantGeometry};
pub use tier::{StackConfig, TierId};
