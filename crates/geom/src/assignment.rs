//! Net → finger-slot assignments, the output of the planning algorithms.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{FingerIdx, GeomError, NetId, Quadrant};

/// Raw-id ceiling of the direct position table. Net ids below this (every
/// generated instance; the generators emit `1..=β`) resolve positions
/// through a flat `Vec` in `O(1)`; the rare hand-written id above it falls
/// into a keyed overflow map so a stray huge id cannot balloon memory.
const DIRECT_POS_LIMIT: usize = 1 << 20;

/// Sentinel in the direct position table for "net not placed".
const UNPLACED: u32 = u32::MAX;

/// An assignment of nets to finger slots within one quadrant: the paper's
/// output "assignment of net `N_b` to finger/pad locations `F_a`".
///
/// Slots may be empty when a quadrant has more fingers than nets; the
/// planning algorithms keep nets in *relative* order, so the dense
/// [`Assignment::order`] view is what most consumers want.
///
/// The net → slot reverse index is a dense array over raw net ids, so
/// [`Assignment::position_of`] and [`Assignment::swap`] — the annealer's
/// reference-kernel inner loop — never walk a tree.
///
/// ```
/// use copack_geom::{Assignment, NetId};
///
/// let a = Assignment::from_order([3u32, 1, 2]);
/// assert_eq!(a.position_of(NetId::new(1)).unwrap().get(), 2);
/// assert_eq!(a.order(), vec![NetId::new(3), NetId::new(1), NetId::new(2)]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Assignment {
    slots: Vec<Option<NetId>>,
    /// Raw id → 0-based slot ([`UNPLACED`] = absent), ids below
    /// [`DIRECT_POS_LIMIT`] only; grown on demand.
    #[serde(skip)]
    pos: Vec<u32>,
    /// Positions of the rare nets with raw ids ≥ [`DIRECT_POS_LIMIT`].
    #[serde(skip)]
    pos_overflow: BTreeMap<NetId, usize>,
    /// Number of occupied slots.
    #[serde(skip)]
    placed: usize,
}

/// Equality is over the slots alone: the reverse index is derived state
/// (its backing-array length varies with the largest id seen, never with
/// the assignment's meaning).
impl PartialEq for Assignment {
    fn eq(&self, other: &Self) -> bool {
        self.slots == other.slots
    }
}

impl Eq for Assignment {}

impl Assignment {
    /// Creates an assignment with `fingers` empty slots.
    #[must_use]
    pub fn empty(fingers: usize) -> Self {
        Self {
            slots: vec![None; fingers],
            pos: Vec::new(),
            pos_overflow: BTreeMap::new(),
            placed: 0,
        }
    }

    /// Creates a dense assignment: the `i`-th net occupies slot `i`.
    #[must_use]
    pub fn from_order<I, T>(order: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<NetId>,
    {
        let slots: Vec<Option<NetId>> = order.into_iter().map(|n| Some(n.into())).collect();
        let mut a = Self {
            slots,
            pos: Vec::new(),
            pos_overflow: BTreeMap::new(),
            placed: 0,
        };
        a.rebuild_index();
        a
    }

    fn rebuild_index(&mut self) {
        self.pos.clear();
        self.pos_overflow.clear();
        self.placed = 0;
        for i in 0..self.slots.len() {
            if let Some(net) = self.slots[i] {
                self.set_pos(net, i);
                self.placed += 1;
            }
        }
    }

    fn get_pos(&self, net: NetId) -> Option<usize> {
        let raw = net.raw() as usize;
        if raw < DIRECT_POS_LIMIT {
            match self.pos.get(raw) {
                Some(&p) if p != UNPLACED => Some(p as usize),
                _ => None,
            }
        } else {
            self.pos_overflow.get(&net).copied()
        }
    }

    fn set_pos(&mut self, net: NetId, slot: usize) {
        let raw = net.raw() as usize;
        if raw < DIRECT_POS_LIMIT {
            if raw >= self.pos.len() {
                self.pos.resize(raw + 1, UNPLACED);
            }
            self.pos[raw] = u32::try_from(slot).expect("slot fits u32");
        } else {
            self.pos_overflow.insert(net, slot);
        }
    }

    /// Number of finger slots (occupied or not).
    #[must_use]
    pub fn finger_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied slots.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.placed
    }

    /// Whether no slot is occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.placed == 0
    }

    /// Net occupying finger `a`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `a` exceeds the slot count.
    #[must_use]
    pub fn net_at(&self, a: FingerIdx) -> Option<NetId> {
        self.slots[a.zero_based()]
    }

    /// Finger slot holding `net`, if it is placed.
    #[must_use]
    pub fn position_of(&self, net: NetId) -> Option<FingerIdx> {
        self.get_pos(net).map(FingerIdx::from_zero_based)
    }

    /// Places `net` into slot `a`.
    ///
    /// # Errors
    ///
    /// * [`GeomError::SlotOutOfRange`] if `a` exceeds the slot count.
    /// * [`GeomError::SlotOccupied`] if another net already sits there.
    /// * [`GeomError::DuplicateNet`] if `net` is already placed elsewhere.
    pub fn place(&mut self, net: NetId, a: FingerIdx) -> Result<(), GeomError> {
        let i = a.zero_based();
        if i >= self.slots.len() {
            return Err(GeomError::SlotOutOfRange {
                slot: i,
                fingers: self.slots.len(),
            });
        }
        if let Some(occupant) = self.slots[i] {
            if occupant != net {
                return Err(GeomError::SlotOccupied {
                    slot: i,
                    occupant,
                    incoming: net,
                });
            }
            return Ok(());
        }
        if self.get_pos(net).is_some() {
            return Err(GeomError::DuplicateNet { net });
        }
        self.slots[i] = Some(net);
        self.set_pos(net, i);
        self.placed += 1;
        Ok(())
    }

    /// Swaps the contents of two slots (either may be empty).
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::SlotOutOfRange`] if either index is out of range.
    pub fn swap(&mut self, a: FingerIdx, b: FingerIdx) -> Result<(), GeomError> {
        for idx in [a, b] {
            if idx.zero_based() >= self.slots.len() {
                return Err(GeomError::SlotOutOfRange {
                    slot: idx.zero_based(),
                    fingers: self.slots.len(),
                });
            }
        }
        let (i, j) = (a.zero_based(), b.zero_based());
        self.slots.swap(i, j);
        if let Some(n) = self.slots[i] {
            self.set_pos(n, i);
        }
        if let Some(n) = self.slots[j] {
            self.set_pos(n, j);
        }
        Ok(())
    }

    /// The occupied slots as a dense left-to-right net order — the
    /// "finger order" the paper prints for its examples.
    #[must_use]
    pub fn order(&self) -> Vec<NetId> {
        self.slots.iter().filter_map(|n| *n).collect()
    }

    /// Iterates `(slot, net)` pairs over occupied slots, left to right.
    pub fn iter(&self) -> impl Iterator<Item = (FingerIdx, NetId)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.map(|n| (FingerIdx::from_zero_based(i), n)))
    }

    /// Raw slot view, including empty slots.
    #[must_use]
    pub fn as_slots(&self) -> &[Option<NetId>] {
        &self.slots
    }

    /// Checks that this assignment places **every** net of `quadrant`,
    /// nothing else, and only on fingers the quadrant actually has.
    ///
    /// # Errors
    ///
    /// * [`GeomError::IncompleteAssignment`] if counts disagree.
    /// * [`GeomError::UnknownNet`] if a placed net is not in the quadrant.
    /// * [`GeomError::SlotOutOfRange`] if a net sits beyond the
    ///   quadrant's finger row (e.g. a sparse assignment file with an
    ///   oversized finger index).
    pub fn validate_complete(&self, quadrant: &Quadrant) -> Result<(), GeomError> {
        for (finger, net) in self.iter() {
            if quadrant.net(net).is_none() {
                return Err(GeomError::UnknownNet { net });
            }
            if finger.zero_based() >= quadrant.finger_count() {
                return Err(GeomError::SlotOutOfRange {
                    slot: finger.zero_based(),
                    fingers: quadrant.finger_count(),
                });
            }
        }
        if self.placed != quadrant.net_count() {
            return Err(GeomError::IncompleteAssignment {
                placed: self.placed,
                nets: quadrant.net_count(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for slot in &self.slots {
            if !first {
                f.write_str(",")?;
            }
            first = false;
            match slot {
                Some(n) => write!(f, "{}", n.raw())?,
                None => f.write_str("_")?,
            }
        }
        Ok(())
    }
}

impl FromIterator<NetId> for Assignment {
    fn from_iter<I: IntoIterator<Item = NetId>>(iter: I) -> Self {
        Self::from_order(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Quadrant;

    fn fig5_random() -> Assignment {
        // Paper Fig. 5(A): random finger order.
        Assignment::from_order([10u32, 1, 2, 3, 11, 6, 9, 4, 5, 8, 7, 0])
    }

    #[test]
    fn from_order_places_densely() {
        let a = fig5_random();
        assert_eq!(a.finger_count(), 12);
        assert_eq!(a.net_count(), 12);
        assert_eq!(a.net_at(FingerIdx::new(5)), Some(NetId::new(11)));
        assert_eq!(a.position_of(NetId::new(0)).unwrap().get(), 12);
    }

    #[test]
    fn display_prints_paper_style_order() {
        assert_eq!(fig5_random().to_string(), "10,1,2,3,11,6,9,4,5,8,7,0");
        let mut sparse = Assignment::empty(3);
        sparse.place(NetId::new(7), FingerIdx::new(2)).unwrap();
        assert_eq!(sparse.to_string(), "_,7,_");
    }

    #[test]
    fn place_rejects_conflicts() {
        let mut a = Assignment::empty(2);
        a.place(NetId::new(1), FingerIdx::new(1)).unwrap();
        let err = a.place(NetId::new(2), FingerIdx::new(1)).unwrap_err();
        assert!(matches!(err, GeomError::SlotOccupied { .. }));
        let err = a.place(NetId::new(1), FingerIdx::new(2)).unwrap_err();
        assert!(matches!(err, GeomError::DuplicateNet { .. }));
        let err = a.place(NetId::new(3), FingerIdx::new(9)).unwrap_err();
        assert!(matches!(err, GeomError::SlotOutOfRange { .. }));
    }

    #[test]
    fn placing_same_net_in_same_slot_is_idempotent() {
        let mut a = Assignment::empty(1);
        a.place(NetId::new(1), FingerIdx::new(1)).unwrap();
        assert!(a.place(NetId::new(1), FingerIdx::new(1)).is_ok());
    }

    #[test]
    fn swap_updates_positions() {
        let mut a = fig5_random();
        a.swap(FingerIdx::new(1), FingerIdx::new(12)).unwrap();
        assert_eq!(a.net_at(FingerIdx::new(1)), Some(NetId::new(0)));
        assert_eq!(a.position_of(NetId::new(10)).unwrap().get(), 12);
    }

    #[test]
    fn swap_with_empty_slot_moves_net() {
        let mut a = Assignment::empty(3);
        a.place(NetId::new(5), FingerIdx::new(1)).unwrap();
        a.swap(FingerIdx::new(1), FingerIdx::new(3)).unwrap();
        assert_eq!(a.net_at(FingerIdx::new(1)), None);
        assert_eq!(a.position_of(NetId::new(5)).unwrap().get(), 3);
        assert!(a.swap(FingerIdx::new(1), FingerIdx::new(7)).is_err());
    }

    #[test]
    fn order_skips_empty_slots() {
        let mut a = Assignment::empty(4);
        a.place(NetId::new(2), FingerIdx::new(4)).unwrap();
        a.place(NetId::new(9), FingerIdx::new(1)).unwrap();
        assert_eq!(a.order(), vec![NetId::new(9), NetId::new(2)]);
        let pairs: Vec<(u32, u32)> = a.iter().map(|(f, n)| (f.get(), n.raw())).collect();
        assert_eq!(pairs, vec![(1, 9), (4, 2)]);
    }

    #[test]
    fn validate_complete_checks_membership_and_counts() {
        let q = Quadrant::builder().row([1u32, 2]).build().unwrap();
        let ok = Assignment::from_order([2u32, 1]);
        assert!(ok.validate_complete(&q).is_ok());

        let missing = Assignment::from_order([1u32]);
        assert!(matches!(
            missing.validate_complete(&q),
            Err(GeomError::IncompleteAssignment { placed: 1, nets: 2 })
        ));

        let foreign = Assignment::from_order([1u32, 9]);
        assert!(matches!(
            foreign.validate_complete(&q),
            Err(GeomError::UnknownNet { .. })
        ));

        let mut oversized = Assignment::empty(5);
        oversized.place(NetId::new(1), FingerIdx::new(1)).unwrap();
        oversized.place(NetId::new(2), FingerIdx::new(5)).unwrap();
        assert!(matches!(
            oversized.validate_complete(&q),
            Err(GeomError::SlotOutOfRange {
                slot: 4,
                fingers: 2
            })
        ));
    }

    #[test]
    fn huge_ids_take_the_overflow_path() {
        // Raw ids past the direct-table ceiling must still place, swap and
        // resolve — just through the keyed overflow map.
        let big = NetId::new(3_000_000_000);
        let mut a = Assignment::from_order([big, NetId::new(1)]);
        assert_eq!(a.position_of(big).unwrap().get(), 1);
        a.swap(FingerIdx::new(1), FingerIdx::new(2)).unwrap();
        assert_eq!(a.position_of(big).unwrap().get(), 2);
        assert_eq!(a.position_of(NetId::new(1)).unwrap().get(), 1);
        let err = a.place(big, FingerIdx::new(1)).unwrap_err();
        assert!(matches!(err, GeomError::SlotOccupied { .. }));
    }

    #[test]
    fn equality_ignores_index_capacity() {
        // Same slots, different index growth histories: still equal.
        let a = Assignment::from_order([5u32, 900_000]);
        let mut b = Assignment::empty(2);
        b.place(NetId::new(900_000), FingerIdx::new(2)).unwrap();
        b.place(NetId::new(5), FingerIdx::new(1)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn collects_from_iterator_of_net_ids() {
        let a: Assignment = [NetId::new(4), NetId::new(2)].into_iter().collect();
        assert_eq!(a.order(), vec![NetId::new(4), NetId::new(2)]);
    }
}
