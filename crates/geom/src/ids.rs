//! Strongly typed identifiers used throughout the workspace.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a net (a finger–ball connection).
///
/// Net ids are small integers chosen by the caller; they need not be dense.
/// The paper labels nets `N_1..N_β`; the examples reuse the raw numbers
/// (e.g. net `11` in Fig. 5), which is why this is a thin wrapper over `u32`
/// rather than an index into a table.
///
/// ```
/// use copack_geom::NetId;
/// let n = NetId::new(11);
/// assert_eq!(n.raw(), 11);
/// assert_eq!(n.to_string(), "N11");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NetId(u32);

impl NetId {
    /// Creates a net id from its raw number.
    #[must_use]
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// Returns the raw number of this net id.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for NetId {
    fn from(raw: u32) -> Self {
        Self(raw)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Index of a finger slot within one quadrant, **1-based** and counted from
/// the left, exactly as the paper's `F_1..F_α`.
///
/// ```
/// use copack_geom::FingerIdx;
/// let f = FingerIdx::new(5);
/// assert_eq!(f.get(), 5);
/// assert_eq!(f.zero_based(), 4);
/// assert_eq!(f.to_string(), "F5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct FingerIdx(u32);

impl FingerIdx {
    /// Creates a finger index from a 1-based position.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is zero; finger slots are 1-based like the paper's
    /// `F_1..F_α`.
    #[must_use]
    pub fn new(pos: u32) -> Self {
        assert!(pos > 0, "finger indices are 1-based");
        Self(pos)
    }

    /// Creates a finger index from a 0-based position.
    #[must_use]
    pub fn from_zero_based(pos: usize) -> Self {
        Self(u32::try_from(pos).expect("finger index fits in u32") + 1)
    }

    /// Returns the 1-based position.
    #[must_use]
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Returns the 0-based position, convenient for slice indexing.
    #[must_use]
    pub const fn zero_based(self) -> usize {
        (self.0 - 1) as usize
    }
}

impl fmt::Display for FingerIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

/// Index of a bump-ball row within a quadrant, **1-based from the bottom**:
/// row `1` is farthest from the die, row `n` (the "highest horizontal line"
/// in the paper) is adjacent to the finger row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct RowIdx(u32);

impl RowIdx {
    /// Creates a row index from a 1-based position.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is zero.
    #[must_use]
    pub fn new(pos: u32) -> Self {
        assert!(pos > 0, "row indices are 1-based");
        Self(pos)
    }

    /// Returns the 1-based row number.
    #[must_use]
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Returns the 0-based row number.
    #[must_use]
    pub const fn zero_based(self) -> usize {
        (self.0 - 1) as usize
    }
}

impl fmt::Display for RowIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "y={}", self.0)
    }
}

/// One of the four triangular quadrants the package is cut into (paper
/// Fig. 2: the planning problem is solved independently per quadrant).
///
/// The sides are named after the die edge the quadrant's fingers occupy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum QuadrantSide {
    /// Fingers along the bottom die edge.
    Bottom,
    /// Fingers along the right die edge.
    Right,
    /// Fingers along the top die edge.
    Top,
    /// Fingers along the left die edge.
    Left,
}

impl QuadrantSide {
    /// All four sides in counter-clockwise perimeter order starting at
    /// [`QuadrantSide::Bottom`].
    pub const ALL: [Self; 4] = [Self::Bottom, Self::Right, Self::Top, Self::Left];

    /// Position of this side in [`QuadrantSide::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Self::Bottom => 0,
            Self::Right => 1,
            Self::Top => 2,
            Self::Left => 3,
        }
    }
}

impl fmt::Display for QuadrantSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Bottom => "bottom",
            Self::Right => "right",
            Self::Top => "top",
            Self::Left => "left",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_id_round_trips_raw_value() {
        assert_eq!(NetId::new(7).raw(), 7);
        assert_eq!(NetId::from(9), NetId::new(9));
    }

    #[test]
    fn net_id_display_uses_paper_notation() {
        assert_eq!(NetId::new(0).to_string(), "N0");
    }

    #[test]
    fn finger_idx_converts_between_bases() {
        let f = FingerIdx::new(1);
        assert_eq!(f.zero_based(), 0);
        assert_eq!(FingerIdx::from_zero_based(4), FingerIdx::new(5));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn finger_idx_rejects_zero() {
        let _ = FingerIdx::new(0);
    }

    #[test]
    fn row_idx_is_one_based() {
        assert_eq!(RowIdx::new(3).zero_based(), 2);
        assert_eq!(RowIdx::new(3).to_string(), "y=3");
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn row_idx_rejects_zero() {
        let _ = RowIdx::new(0);
    }

    #[test]
    fn quadrant_sides_enumerate_in_perimeter_order() {
        for (i, side) in QuadrantSide::ALL.iter().enumerate() {
            assert_eq!(side.index(), i);
        }
    }

    #[test]
    fn ids_are_ordered_like_their_raw_values() {
        assert!(NetId::new(1) < NetId::new(2));
        assert!(FingerIdx::new(1) < FingerIdx::new(2));
        assert!(RowIdx::new(1) < RowIdx::new(2));
    }
}
