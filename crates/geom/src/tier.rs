//! Stacking-IC tiers and stack configuration.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::GeomError;

/// Identifier of a stacking tier, 1-based: tier 1 is the base die, larger
/// tiers sit higher in the stack (and are physically smaller).
///
/// The paper's ψ parameter is the number of tiers; each tier `d ∈ 1..=ψ`
/// gets a one-hot ψ-bit "unique parameter" `UP_d` used by the bonding-wire
/// balance metric ω (see `copack_core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TierId(u8);

impl TierId {
    /// The base die of the stack (tier 1); the only tier of a 2-D design.
    pub const BASE: Self = Self(1);

    /// Creates a tier id from a 1-based tier number.
    ///
    /// # Panics
    ///
    /// Panics if `tier` is zero.
    #[must_use]
    pub fn new(tier: u8) -> Self {
        assert!(tier > 0, "tier ids are 1-based");
        Self(tier)
    }

    /// Returns the 1-based tier number.
    #[must_use]
    pub const fn get(self) -> u8 {
        self.0
    }

    /// One-hot "unique parameter" `UP_d` of the paper (§3.2): bit `d − 1`
    /// set. With three tiers, tiers 1..=3 map to `001`, `010`, `100`.
    ///
    /// ```
    /// use copack_geom::TierId;
    /// assert_eq!(TierId::new(1).one_hot(), 0b001);
    /// assert_eq!(TierId::new(3).one_hot(), 0b100);
    /// ```
    #[must_use]
    pub fn one_hot(self) -> u64 {
        1u64 << (self.0 - 1)
    }
}

impl fmt::Display for TierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tier {}", self.0)
    }
}

/// Physical configuration of a die stack, used to compute bonding-wire
/// lengths and to parameterise the exchange step.
///
/// A 2-D design is a stack with a single tier; see [`StackConfig::planar`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StackConfig {
    /// Number of tiers ψ (≥ 1).
    pub tiers: u8,
    /// Vertical drop per tier (µm): the extra wire a pad on tier `d` pays
    /// relative to tier `d − 1`.
    pub tier_drop: f64,
    /// Horizontal shrink per tier (µm): each higher die's edge retreats by
    /// this much, so its pads sit farther from the finger ring.
    pub tier_shrink: f64,
    /// Minimum bond height above the base die (µm).
    pub standoff: f64,
}

impl StackConfig {
    /// Configuration of a conventional single-die (2-D) design.
    #[must_use]
    pub const fn planar() -> Self {
        Self {
            tiers: 1,
            tier_drop: 0.0,
            tier_shrink: 0.0,
            standoff: 5.0,
        }
    }

    /// Creates a stacking configuration with `tiers` dies and default
    /// per-tier geometry (20 µm drop, 50 µm shrink, 5 µm standoff).
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidStack`] if `tiers` is zero or exceeds 64
    /// (the ω metric packs tier one-hots into a `u64`).
    pub fn stacked(tiers: u8) -> Result<Self, GeomError> {
        if tiers == 0 || tiers > 64 {
            return Err(GeomError::InvalidStack { tiers });
        }
        Ok(Self {
            tiers,
            tier_drop: 20.0,
            tier_shrink: 50.0,
            standoff: 5.0,
        })
    }

    /// Whether this is a stacking (multi-tier) design, the paper's ψ ≥ 2.
    #[must_use]
    pub fn is_stacking(&self) -> bool {
        self.tiers >= 2
    }

    /// Validates that a tier id belongs to this stack.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::TierOutOfRange`] when `tier` exceeds
    /// [`StackConfig::tiers`].
    pub fn check_tier(&self, tier: TierId) -> Result<(), GeomError> {
        if tier.get() > self.tiers {
            return Err(GeomError::TierOutOfRange {
                tier: tier.get(),
                tiers: self.tiers,
            });
        }
        Ok(())
    }

    /// Vertical bonding-wire component for a pad on `tier` (µm).
    #[must_use]
    pub fn drop_of(&self, tier: TierId) -> f64 {
        self.standoff + f64::from(tier.get() - 1) * self.tier_drop
    }

    /// Horizontal retreat of `tier`'s die edge relative to the base die (µm).
    #[must_use]
    pub fn shrink_of(&self, tier: TierId) -> f64 {
        f64::from(tier.get() - 1) * self.tier_shrink
    }
}

impl Default for StackConfig {
    fn default() -> Self {
        Self::planar()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_matches_paper_example() {
        // Paper §3.2: with ψ = 3, tiers 1..3 are "001", "010", "100".
        assert_eq!(TierId::new(1).one_hot(), 0b001);
        assert_eq!(TierId::new(2).one_hot(), 0b010);
        assert_eq!(TierId::new(3).one_hot(), 0b100);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn tier_ids_reject_zero() {
        let _ = TierId::new(0);
    }

    #[test]
    fn planar_stack_has_one_tier() {
        let s = StackConfig::planar();
        assert_eq!(s.tiers, 1);
        assert!(!s.is_stacking());
    }

    #[test]
    fn stacked_rejects_degenerate_tier_counts() {
        assert!(StackConfig::stacked(0).is_err());
        assert!(StackConfig::stacked(65).is_err());
        assert!(StackConfig::stacked(4).unwrap().is_stacking());
    }

    #[test]
    fn check_tier_enforces_range() {
        let s = StackConfig::stacked(2).unwrap();
        assert!(s.check_tier(TierId::new(2)).is_ok());
        assert!(s.check_tier(TierId::new(3)).is_err());
    }

    #[test]
    fn drop_and_shrink_grow_with_tier() {
        let s = StackConfig::stacked(3).unwrap();
        assert!(s.drop_of(TierId::new(3)) > s.drop_of(TierId::new(1)));
        assert_eq!(s.shrink_of(TierId::BASE), 0.0);
        assert!(s.shrink_of(TierId::new(2)) > 0.0);
    }
}
