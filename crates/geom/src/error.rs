//! Error type for model construction and validation.

use std::error::Error;
use std::fmt;

use crate::NetId;

/// Errors raised while building or validating package-model structures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GeomError {
    /// The same net id was placed on two bump balls.
    DuplicateNet {
        /// The offending net id.
        net: NetId,
    },
    /// A net id was referenced that is not on any bump ball.
    UnknownNet {
        /// The missing net id.
        net: NetId,
    },
    /// A quadrant was built with no ball rows.
    NoRows,
    /// A ball row was empty.
    EmptyRow {
        /// 1-based row number (bottom-up).
        row: u32,
    },
    /// There are fewer finger slots than nets.
    TooFewFingers {
        /// Number of finger slots requested.
        fingers: usize,
        /// Number of nets that need a slot.
        nets: usize,
    },
    /// A geometric parameter was non-positive or non-finite.
    InvalidGeometry {
        /// Name of the offending parameter.
        parameter: &'static str,
    },
    /// A stack was configured with an unusable tier count.
    InvalidStack {
        /// The requested tier count.
        tiers: u8,
    },
    /// A net refers to a tier outside the configured stack.
    TierOutOfRange {
        /// The offending tier number.
        tier: u8,
        /// Number of tiers in the stack.
        tiers: u8,
    },
    /// An assignment slot index was outside the quadrant's finger row.
    SlotOutOfRange {
        /// 0-based slot index.
        slot: usize,
        /// Number of finger slots.
        fingers: usize,
    },
    /// Two nets were assigned to the same finger slot.
    SlotOccupied {
        /// 0-based slot index.
        slot: usize,
        /// Net already in the slot.
        occupant: NetId,
        /// Net that attempted to claim the slot.
        incoming: NetId,
    },
    /// An assignment does not place every net of the quadrant.
    IncompleteAssignment {
        /// Number of nets placed.
        placed: usize,
        /// Number of nets in the quadrant.
        nets: usize,
    },
    /// A package was built from a number of quadrants other than four.
    WrongQuadrantCount {
        /// Number of quadrants supplied.
        got: usize,
    },
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateNet { net } => write!(f, "net {net} placed on more than one bump ball"),
            Self::UnknownNet { net } => write!(f, "net {net} is not on any bump ball"),
            Self::NoRows => write!(f, "quadrant has no bump-ball rows"),
            Self::EmptyRow { row } => write!(f, "bump-ball row y={row} is empty"),
            Self::TooFewFingers { fingers, nets } => {
                write!(f, "{fingers} finger slots cannot hold {nets} nets")
            }
            Self::InvalidGeometry { parameter } => {
                write!(
                    f,
                    "geometric parameter `{parameter}` must be positive and finite"
                )
            }
            Self::InvalidStack { tiers } => {
                write!(f, "stack tier count {tiers} is outside 1..=64")
            }
            Self::TierOutOfRange { tier, tiers } => {
                write!(f, "tier {tier} exceeds the stack's {tiers} tiers")
            }
            Self::SlotOutOfRange { slot, fingers } => {
                write!(f, "finger slot {slot} is outside 0..{fingers}")
            }
            Self::SlotOccupied {
                slot,
                occupant,
                incoming,
            } => write!(
                f,
                "finger slot {slot} already holds {occupant}, cannot also place {incoming}"
            ),
            Self::IncompleteAssignment { placed, nets } => {
                write!(f, "assignment places {placed} of {nets} nets")
            }
            Self::WrongQuadrantCount { got } => {
                write!(f, "a package needs exactly 4 quadrants, got {got}")
            }
        }
    }
}

impl Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_nonempty() {
        let cases: Vec<GeomError> = vec![
            GeomError::DuplicateNet { net: NetId::new(1) },
            GeomError::UnknownNet { net: NetId::new(2) },
            GeomError::NoRows,
            GeomError::EmptyRow { row: 3 },
            GeomError::TooFewFingers {
                fingers: 1,
                nets: 2,
            },
            GeomError::InvalidGeometry {
                parameter: "ball_pitch",
            },
            GeomError::InvalidStack { tiers: 0 },
            GeomError::TierOutOfRange { tier: 5, tiers: 4 },
            GeomError::SlotOutOfRange {
                slot: 9,
                fingers: 4,
            },
            GeomError::SlotOccupied {
                slot: 0,
                occupant: NetId::new(1),
                incoming: NetId::new(2),
            },
            GeomError::IncompleteAssignment { placed: 3, nets: 4 },
            GeomError::WrongQuadrantCount { got: 3 },
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(
                msg.chars().next().unwrap().is_lowercase()
                    || msg.starts_with(|c: char| c.is_numeric())
            );
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<GeomError>();
    }
}
