//! A full four-quadrant package and the die-perimeter mapping used by the
//! IR-drop model.

use serde::{Deserialize, Serialize};

use crate::{Assignment, FingerIdx, GeomError, NetId, NetKind, Quadrant, QuadrantSide};

/// A finger slot located on the die perimeter.
///
/// `t ∈ [0, 1)` parameterises the perimeter counter-clockwise starting at
/// the bottom-left corner of the die; the bottom edge covers `[0, 0.25)`,
/// the right edge `[0.25, 0.5)`, and so on. The paper's compact IR-drop
/// model only cares about *where along the boundary* each power pad sits, so
/// this normalised coordinate is the natural interface to `copack-power`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerimeterSlot {
    /// Which die edge the slot is on.
    pub side: QuadrantSide,
    /// The finger slot within its quadrant.
    pub finger: FingerIdx,
    /// Normalised perimeter coordinate in `[0, 1)`.
    pub t: f64,
}

/// A complete two-layer BGA package: four independently planned quadrants
/// (paper Fig. 2 cuts the package area into four triangles).
///
/// ```
/// use copack_geom::{Package, Quadrant};
///
/// # fn main() -> Result<(), copack_geom::GeomError> {
/// let q = Quadrant::builder().row([1u32, 2]).row([3u32]).build()?;
/// let package = Package::uniform(q);
/// assert_eq!(package.total_nets(), 4 * 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Package {
    quadrants: Vec<Quadrant>,
}

impl Package {
    /// Builds a package from four quadrants in [`QuadrantSide::ALL`] order.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::WrongQuadrantCount`] unless exactly four
    /// quadrants are supplied.
    pub fn new(quadrants: impl IntoIterator<Item = Quadrant>) -> Result<Self, GeomError> {
        let quadrants: Vec<Quadrant> = quadrants.into_iter().collect();
        if quadrants.len() != 4 {
            return Err(GeomError::WrongQuadrantCount {
                got: quadrants.len(),
            });
        }
        Ok(Self { quadrants })
    }

    /// Builds a package whose four sides are copies of one quadrant —
    /// the symmetric configuration used by the paper's test circuits.
    #[must_use]
    pub fn uniform(quadrant: Quadrant) -> Self {
        Self {
            quadrants: vec![
                quadrant.clone(),
                quadrant.clone(),
                quadrant.clone(),
                quadrant,
            ],
        }
    }

    /// Starts building a package side by side.
    #[must_use]
    pub fn builder() -> PackageBuilder {
        PackageBuilder::default()
    }

    /// The quadrant on `side`.
    #[must_use]
    pub fn quadrant(&self, side: QuadrantSide) -> &Quadrant {
        &self.quadrants[side.index()]
    }

    /// Iterates `(side, quadrant)` pairs in perimeter order.
    pub fn quadrants(&self) -> impl Iterator<Item = (QuadrantSide, &Quadrant)> {
        QuadrantSide::ALL.iter().copied().zip(self.quadrants.iter())
    }

    /// Total net count over all four quadrants (the paper's finger/pad
    /// count column in Table 1).
    #[must_use]
    pub fn total_nets(&self) -> usize {
        self.quadrants.iter().map(Quadrant::net_count).sum()
    }

    /// Normalised perimeter coordinate of finger `a` on `side`.
    ///
    /// Fingers are spread uniformly along their quarter of the perimeter;
    /// finger 1 sits closest to the side's starting corner.
    ///
    /// # Panics
    ///
    /// Panics if `a` exceeds the side's finger count.
    #[must_use]
    pub fn perimeter_t(&self, side: QuadrantSide, a: FingerIdx) -> f64 {
        let fingers = self.quadrant(side).finger_count();
        assert!(a.zero_based() < fingers, "finger index out of range");
        let frac = (a.zero_based() as f64 + 0.5) / fingers as f64;
        (side.index() as f64 + frac) / 4.0
    }

    /// Perimeter positions of all pads of the given `kind`, given one
    /// [`Assignment`] per side (in [`QuadrantSide::ALL`] order).
    ///
    /// This is the bridge to the IR-drop model: pass the power pads'
    /// positions to `copack_power::PadRing`.
    ///
    /// # Errors
    ///
    /// Returns the first validation error if an assignment does not match
    /// its quadrant.
    pub fn pads_of_kind(
        &self,
        assignments: &[Assignment; 4],
        kind: NetKind,
    ) -> Result<Vec<(NetId, PerimeterSlot)>, GeomError> {
        let mut out = Vec::new();
        for (side, quadrant) in self.quadrants() {
            let assignment = &assignments[side.index()];
            assignment.validate_complete(quadrant)?;
            for (finger, net) in assignment.iter() {
                let n = quadrant.net(net).ok_or(GeomError::UnknownNet { net })?;
                if n.kind == kind {
                    out.push((
                        net,
                        PerimeterSlot {
                            side,
                            finger,
                            t: self.perimeter_t(side, finger),
                        },
                    ));
                }
            }
        }
        Ok(out)
    }
}

/// Builder assembling a [`Package`] from per-side quadrants.
#[derive(Debug, Clone, Default)]
pub struct PackageBuilder {
    sides: [Option<Quadrant>; 4],
}

impl PackageBuilder {
    /// Sets the quadrant for one side (replacing any previous one).
    #[must_use]
    pub fn side(mut self, side: QuadrantSide, quadrant: Quadrant) -> Self {
        self.sides[side.index()] = Some(quadrant);
        self
    }

    /// Builds the package.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::WrongQuadrantCount`] if any side is missing.
    pub fn build(self) -> Result<Package, GeomError> {
        let got = self.sides.iter().flatten().count();
        if got != 4 {
            return Err(GeomError::WrongQuadrantCount { got });
        }
        Ok(Package {
            quadrants: self.sides.into_iter().map(Option::unwrap).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetKind;

    fn small_quadrant() -> Quadrant {
        Quadrant::builder()
            .row([1u32, 2, 3])
            .row([4u32, 5])
            .net_kind(1u32, NetKind::Power)
            .net_kind(4u32, NetKind::Ground)
            .build()
            .unwrap()
    }

    #[test]
    fn uniform_package_replicates_quadrant() {
        let p = Package::uniform(small_quadrant());
        assert_eq!(p.total_nets(), 20);
        for (_, q) in p.quadrants() {
            assert_eq!(q.net_count(), 5);
        }
    }

    #[test]
    fn new_requires_exactly_four() {
        let q = small_quadrant();
        assert!(matches!(
            Package::new(vec![q.clone(), q.clone()]),
            Err(GeomError::WrongQuadrantCount { got: 2 })
        ));
    }

    #[test]
    fn builder_requires_all_sides() {
        let q = small_quadrant();
        let err = Package::builder()
            .side(QuadrantSide::Bottom, q.clone())
            .build()
            .unwrap_err();
        assert!(matches!(err, GeomError::WrongQuadrantCount { got: 1 }));

        let ok = Package::builder()
            .side(QuadrantSide::Bottom, q.clone())
            .side(QuadrantSide::Right, q.clone())
            .side(QuadrantSide::Top, q.clone())
            .side(QuadrantSide::Left, q)
            .build();
        assert!(ok.is_ok());
    }

    #[test]
    fn perimeter_t_covers_each_quarter() {
        let p = Package::uniform(small_quadrant());
        let t_first = p.perimeter_t(QuadrantSide::Bottom, FingerIdx::new(1));
        let t_last = p.perimeter_t(QuadrantSide::Bottom, FingerIdx::new(5));
        assert!(t_first > 0.0 && t_last < 0.25);
        assert!(t_first < t_last);
        let t_right = p.perimeter_t(QuadrantSide::Right, FingerIdx::new(1));
        assert!((0.25..0.5).contains(&t_right));
        let t_left = p.perimeter_t(QuadrantSide::Left, FingerIdx::new(5));
        assert!((0.75..1.0).contains(&t_left));
    }

    #[test]
    fn pads_of_kind_filters_by_kind() {
        let p = Package::uniform(small_quadrant());
        let a = Assignment::from_order([1u32, 2, 3, 4, 5]);
        let assignments = [a.clone(), a.clone(), a.clone(), a];
        let power = p.pads_of_kind(&assignments, NetKind::Power).unwrap();
        assert_eq!(power.len(), 4); // one power net per side
        for (net, slot) in &power {
            assert_eq!(*net, NetId::new(1));
            assert_eq!(slot.finger, FingerIdx::new(1));
        }
        let ground = p.pads_of_kind(&assignments, NetKind::Ground).unwrap();
        assert_eq!(ground.len(), 4);
    }

    #[test]
    fn pads_of_kind_rejects_incomplete_assignments() {
        let p = Package::uniform(small_quadrant());
        let bad = Assignment::from_order([1u32, 2]);
        let good = Assignment::from_order([1u32, 2, 3, 4, 5]);
        let assignments = [bad, good.clone(), good.clone(), good];
        assert!(p.pads_of_kind(&assignments, NetKind::Power).is_err());
    }
}
