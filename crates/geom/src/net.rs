//! Nets and net kinds.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{NetId, TierId};

/// Electrical role of a net.
///
/// The congestion-driven assignment treats every net alike; the exchange
/// step of the paper moves only **power** pads in a 2-D design (its Fig. 14,
/// line 7) because only they influence the core's IR-drop.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum NetKind {
    /// An ordinary signal net.
    #[default]
    Signal,
    /// A Vdd supply net; its pad location affects core IR-drop.
    Power,
    /// A ground return net.
    Ground,
}

impl NetKind {
    /// Whether this net participates in power delivery (power or ground).
    #[must_use]
    pub fn is_supply(self) -> bool {
        matches!(self, Self::Power | Self::Ground)
    }
}

impl fmt::Display for NetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Signal => "signal",
            Self::Power => "power",
            Self::Ground => "ground",
        };
        f.write_str(s)
    }
}

/// A net: one finger–ball connection with an electrical kind and, for
/// stacking ICs, the tier its die-side pad lives on.
///
/// ```
/// use copack_geom::{Net, NetId, NetKind, TierId};
/// let net = Net::new(NetId::new(3), NetKind::Power, TierId::BASE);
/// assert!(net.kind.is_supply());
/// assert_eq!(net.tier, TierId::BASE);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Net {
    /// Identifier of the net.
    pub id: NetId,
    /// Electrical role.
    pub kind: NetKind,
    /// Stacking tier of the die-side pad (always [`TierId::BASE`] for 2-D).
    pub tier: TierId,
}

impl Net {
    /// Creates a net.
    #[must_use]
    pub const fn new(id: NetId, kind: NetKind, tier: TierId) -> Self {
        Self { id, kind, tier }
    }

    /// Creates a 2-D signal net on the base tier.
    #[must_use]
    pub const fn signal(id: NetId) -> Self {
        Self::new(id, NetKind::Signal, TierId::BASE)
    }
}

impl fmt::Display for Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, {})", self.id, self.kind, self.tier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supply_covers_power_and_ground() {
        assert!(NetKind::Power.is_supply());
        assert!(NetKind::Ground.is_supply());
        assert!(!NetKind::Signal.is_supply());
    }

    #[test]
    fn default_kind_is_signal() {
        assert_eq!(NetKind::default(), NetKind::Signal);
    }

    #[test]
    fn signal_constructor_uses_base_tier() {
        let n = Net::signal(NetId::new(1));
        assert_eq!(n.kind, NetKind::Signal);
        assert_eq!(n.tier, TierId::BASE);
    }

    #[test]
    fn display_is_nonempty_and_mentions_kind() {
        let n = Net::new(NetId::new(2), NetKind::Ground, TierId::BASE);
        let s = n.to_string();
        assert!(s.contains("ground"));
        assert!(s.contains("N2"));
    }
}
