//! One triangular quadrant of the package: a finger row facing a ball grid.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{BallRef, FingerIdx, GeomError, Net, NetId, NetKind, Point, RowIdx, TierId};

/// Physical parameters of a quadrant, in micrometres.
///
/// The defaults follow the paper's experimental setup (§4): via diameter
/// 0.1 µm, ball diameter 0.2 µm, and circuit-3-like pitches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuadrantGeometry {
    /// Minimal spacing between two adjacent bump balls (Table 1's
    /// "bump ball space").
    pub ball_pitch: f64,
    /// Centre-to-centre spacing of adjacent fingers
    /// (finger width + finger space in Table 1).
    pub finger_pitch: f64,
    /// Finger width.
    pub finger_width: f64,
    /// Finger height.
    pub finger_height: f64,
    /// Via diameter.
    pub via_diameter: f64,
    /// Bump-ball diameter.
    pub ball_diameter: f64,
}

impl QuadrantGeometry {
    /// Validates that every parameter is positive and finite.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidGeometry`] naming the first bad parameter.
    pub fn validate(&self) -> Result<(), GeomError> {
        let checks: [(&'static str, f64); 6] = [
            ("ball_pitch", self.ball_pitch),
            ("finger_pitch", self.finger_pitch),
            ("finger_width", self.finger_width),
            ("finger_height", self.finger_height),
            ("via_diameter", self.via_diameter),
            ("ball_diameter", self.ball_diameter),
        ];
        for (parameter, v) in checks {
            if !(v.is_finite() && v > 0.0) {
                return Err(GeomError::InvalidGeometry { parameter });
            }
        }
        Ok(())
    }
}

impl Default for QuadrantGeometry {
    fn default() -> Self {
        Self {
            ball_pitch: 1.2,
            finger_pitch: 0.013,
            finger_width: 0.006,
            finger_height: 0.2,
            via_diameter: 0.1,
            ball_diameter: 0.2,
        }
    }
}

/// Sentinel in [`NetIndex`]'s direct table for "no net with this raw id".
const NO_INDEX: u32 = u32::MAX;

/// Contiguous `NetId → usize` interning over one quadrant's net set.
///
/// [`NetId`]s need not be dense, but every per-net lookup on the
/// annealer's hot path wants a flat array. The index assigns each net the
/// position of its id in ascending id order — the same order
/// [`Quadrant::nets`] iterates and every dense cache in the workspace
/// (range cache, section tracker, exchange driver) already uses — so a
/// dense index resolved here addresses all of them interchangeably.
///
/// Resolution is `O(1)`: a direct raw-id → index table when the id space
/// is reasonably compact (the generators emit `1..=β`), falling back to a
/// branch-predictable binary search over the sorted id list for
/// pathologically sparse hand-written instances, so a stray huge id can
/// never balloon memory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetIndex {
    /// Net ids in ascending order; position = dense index.
    ids: Vec<NetId>,
    /// Raw id → dense index ([`NO_INDEX`] = absent); empty when the id
    /// space is too sparse for a direct table.
    direct: Vec<u32>,
}

impl NetIndex {
    /// Builds the index from ids already sorted ascending and unique.
    fn from_sorted_ids(ids: Vec<NetId>) -> Self {
        let max_raw = ids.last().map_or(0, |id| id.raw()) as usize;
        let direct = if max_raw < ids.len().saturating_mul(8) + 1024 {
            let mut direct = vec![NO_INDEX; max_raw + 1];
            for (i, id) in ids.iter().enumerate() {
                direct[id.raw() as usize] = u32::try_from(i).expect("net count fits u32");
            }
            direct
        } else {
            Vec::new()
        };
        Self { ids, direct }
    }

    /// Dense index of `net`, or `None` for an id outside the set.
    #[must_use]
    pub fn get(&self, net: NetId) -> Option<usize> {
        if self.direct.is_empty() {
            return self.ids.binary_search(&net).ok();
        }
        match self.direct.get(net.raw() as usize) {
            Some(&i) if i != NO_INDEX => Some(i as usize),
            _ => None,
        }
    }

    /// The net id at dense index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn id(&self, idx: usize) -> NetId {
        self.ids[idx]
    }

    /// All ids in dense-index (ascending id) order.
    #[must_use]
    pub fn ids(&self) -> &[NetId] {
        &self.ids
    }

    /// Number of interned nets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// One quadrant of the two-layer BGA package (paper Fig. 2): `α` finger
/// slots facing `n` rows of bump balls, planned independently of the other
/// three quadrants.
///
/// Rows are indexed bottom-up: row `1` is farthest from the die, row `n`
/// ("the highest horizontal line") abuts the finger row. Within a row,
/// balls are listed left to right. Each ball carries exactly one net.
///
/// Per-net state lives in dense arrays over the [`NetIndex`] interning
/// layer, built once at construction; keyed `BTreeMap`s appear only at the
/// build/serialization boundary (the builder and the text formats), never
/// on a lookup path.
///
/// Construct with [`Quadrant::builder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Quadrant {
    /// `rows[0]` is row `y = 1` (bottom).
    rows: Vec<Vec<NetId>>,
    index: NetIndex,
    /// Dense by [`NetIndex`] position.
    nets: Vec<Net>,
    /// Dense by [`NetIndex`] position.
    balls: Vec<BallRef>,
    fingers: usize,
    geometry: QuadrantGeometry,
}

impl Quadrant {
    /// Starts building a quadrant.
    #[must_use]
    pub fn builder() -> QuadrantBuilder {
        QuadrantBuilder::new()
    }

    /// Number of bump-ball rows `n`.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The highest row index (`y = n`), the row adjacent to the fingers.
    ///
    /// # Panics
    ///
    /// Never panics: a built quadrant always has at least one row.
    #[must_use]
    pub fn top_row(&self) -> RowIdx {
        RowIdx::new(u32::try_from(self.rows.len()).expect("row count fits in u32"))
    }

    /// Nets of row `y`, left to right.
    ///
    /// # Panics
    ///
    /// Panics if `y` exceeds [`Quadrant::row_count`]. Accepts either a
    /// [`RowIdx`] or a raw 1-based `u32`.
    #[must_use]
    pub fn row(&self, y: impl Into<RowIdx>) -> &[NetId] {
        &self.rows[y.into().zero_based()]
    }

    /// Iterates rows from the highest (`y = n`) down to the lowest (`y = 1`),
    /// the processing order of the paper's assignment algorithms.
    pub fn rows_top_down(&self) -> impl Iterator<Item = (RowIdx, &[NetId])> {
        (1..=self.rows.len() as u32)
            .rev()
            .map(move |y| (RowIdx::new(y), self.rows[(y - 1) as usize].as_slice()))
    }

    /// Iterates rows from the lowest (`y = 1`) up to the highest.
    pub fn rows_bottom_up(&self) -> impl Iterator<Item = (RowIdx, &[NetId])> {
        (1..=self.rows.len() as u32)
            .map(move |y| (RowIdx::new(y), self.rows[(y - 1) as usize].as_slice()))
    }

    /// Total number of nets β.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of finger slots α (≥ net count).
    #[must_use]
    pub fn finger_count(&self) -> usize {
        self.fingers
    }

    /// Looks up a net by id.
    #[must_use]
    pub fn net(&self, id: NetId) -> Option<&Net> {
        self.index.get(id).map(|i| &self.nets[i])
    }

    /// The dense `NetId → usize` interning of this quadrant's nets.
    ///
    /// Hot-path caches resolve ids through this once at construction and
    /// address each other with the resulting indices.
    #[must_use]
    pub fn net_index(&self) -> &NetIndex {
        &self.index
    }

    /// The net at dense index `idx` (see [`Quadrant::net_index`]).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn net_at_index(&self, idx: usize) -> &Net {
        &self.nets[idx]
    }

    /// The ball of the net at dense index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn ball_at_index(&self, idx: usize) -> BallRef {
        self.balls[idx]
    }

    /// Iterates all nets in id order.
    pub fn nets(&self) -> impl Iterator<Item = &Net> {
        self.nets.iter()
    }

    /// Net ids of a given kind, in id order.
    pub fn nets_of_kind(&self, kind: NetKind) -> impl Iterator<Item = NetId> + '_ {
        self.nets
            .iter()
            .filter(move |n| n.kind == kind)
            .map(|n| n.id)
    }

    /// The bump ball a net terminates on.
    #[must_use]
    pub fn ball_of(&self, net: NetId) -> Option<BallRef> {
        self.index.get(net).map(|i| self.balls[i])
    }

    /// Physical parameters of this quadrant.
    #[must_use]
    pub fn geometry(&self) -> &QuadrantGeometry {
        &self.geometry
    }

    /// Centre of the ball at `(row, col)`. Rows are centred horizontally so
    /// that a triangular quadrant (wider rows at the bottom) is symmetric.
    ///
    /// # Panics
    ///
    /// Panics if the row or column does not exist.
    #[must_use]
    pub fn ball_center(&self, row: RowIdx, col: u32) -> Point {
        let m = self.rows[row.zero_based()].len() as f64;
        assert!(col >= 1 && f64::from(col) <= m, "ball column out of range");
        let p = self.geometry.ball_pitch;
        Point::new(
            (f64::from(col) - (m + 1.0) / 2.0) * p,
            f64::from(row.get()) * p,
        )
    }

    /// Number of candidate via sites on the horizontal line of `row`:
    /// one at the bottom-left of each ball plus one at the right end
    /// (the paper's "Total Via Number" = balls + 1; see DESIGN.md).
    ///
    /// # Panics
    ///
    /// Panics if the row does not exist.
    #[must_use]
    pub fn via_site_count(&self, row: RowIdx) -> usize {
        self.rows[row.zero_based()].len() + 1
    }

    /// x-coordinate of via site `s ∈ 1..=m+1` on `row`'s line: site `s ≤ m`
    /// sits half a pitch left of ball `s`; site `m + 1` sits half a pitch
    /// right of the last ball.
    ///
    /// # Panics
    ///
    /// Panics if the row does not exist or `s` is outside `1..=m+1`.
    #[must_use]
    pub fn via_site_x(&self, row: RowIdx, s: u32) -> f64 {
        let m = self.rows[row.zero_based()].len() as u32;
        assert!((1..=m + 1).contains(&s), "via site out of range");
        let half = self.geometry.ball_pitch / 2.0;
        if s <= m {
            self.ball_center(row, s).x - half
        } else {
            self.ball_center(row, m).x + half
        }
    }

    /// Via location of `net`: the bottom-left corner of its bump ball
    /// (paper §3.1 fixes the connected via there).
    ///
    /// # Panics
    ///
    /// Panics if the net is not in this quadrant.
    #[must_use]
    pub fn via_of(&self, net: NetId) -> Point {
        let ball = self.ball_of(net).expect("net not in quadrant");
        Point::new(self.via_site_x(ball.row, ball.col), self.line_y(ball.row))
    }

    /// y-coordinate of `row`'s horizontal grid line.
    #[must_use]
    pub fn line_y(&self, row: RowIdx) -> f64 {
        f64::from(row.get()) * self.geometry.ball_pitch
    }

    /// y-coordinate of the finger row (one ball pitch above the top ball
    /// row).
    #[must_use]
    pub fn finger_line_y(&self) -> f64 {
        (self.rows.len() as f64 + 1.0) * self.geometry.ball_pitch
    }

    /// Centre of finger slot `a` (fingers are centred over the ball grid).
    ///
    /// # Panics
    ///
    /// Panics if `a` exceeds [`Quadrant::finger_count`].
    #[must_use]
    pub fn finger_center(&self, a: FingerIdx) -> Point {
        assert!(a.zero_based() < self.fingers, "finger index out of range");
        let alpha = self.fingers as f64;
        Point::new(
            (f64::from(a.get()) - (alpha + 1.0) / 2.0) * self.geometry.finger_pitch,
            self.finger_line_y(),
        )
    }
}

/// Builder for [`Quadrant`]; see [`Quadrant::builder`].
///
/// Rows are added bottom-up: the first [`QuadrantBuilder::row`] call defines
/// row `y = 1`, the last the highest row. Net kinds and tiers default to
/// [`NetKind::Signal`] on [`TierId::BASE`] and can be overridden per net.
#[derive(Debug, Clone, Default)]
pub struct QuadrantBuilder {
    rows: Vec<Vec<NetId>>,
    kinds: BTreeMap<NetId, NetKind>,
    tiers: BTreeMap<NetId, TierId>,
    fingers: Option<usize>,
    geometry: QuadrantGeometry,
}

impl QuadrantBuilder {
    /// Creates an empty builder with default geometry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one ball row (bottom-up); items are net ids left to right.
    #[must_use]
    pub fn row<I, T>(mut self, nets: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<NetId>,
    {
        self.rows.push(nets.into_iter().map(Into::into).collect());
        self
    }

    /// Overrides the electrical kind of one net.
    #[must_use]
    pub fn net_kind(mut self, net: impl Into<NetId>, kind: NetKind) -> Self {
        self.kinds.insert(net.into(), kind);
        self
    }

    /// Places one net's die-side pad on a stacking tier.
    #[must_use]
    pub fn net_tier(mut self, net: impl Into<NetId>, tier: TierId) -> Self {
        self.tiers.insert(net.into(), tier);
        self
    }

    /// Sets the number of finger slots α (default: one per net).
    #[must_use]
    pub fn fingers(mut self, fingers: usize) -> Self {
        self.fingers = Some(fingers);
        self
    }

    /// Sets the physical parameters.
    #[must_use]
    pub fn geometry(mut self, geometry: QuadrantGeometry) -> Self {
        self.geometry = geometry;
        self
    }

    /// Validates and builds the quadrant.
    ///
    /// # Errors
    ///
    /// * [`GeomError::NoRows`] if no row was added.
    /// * [`GeomError::EmptyRow`] if a row has no balls.
    /// * [`GeomError::DuplicateNet`] if a net id appears on two balls.
    /// * [`GeomError::UnknownNet`] if a kind/tier override names a net that
    ///   is on no ball.
    /// * [`GeomError::TooFewFingers`] if `fingers` < net count.
    /// * [`GeomError::InvalidGeometry`] for non-positive parameters.
    pub fn build(self) -> Result<Quadrant, GeomError> {
        if self.rows.is_empty() {
            return Err(GeomError::NoRows);
        }
        self.geometry.validate()?;
        let mut nets = BTreeMap::new();
        let mut balls = BTreeMap::new();
        for (i, row) in self.rows.iter().enumerate() {
            let y = RowIdx::new(i as u32 + 1);
            if row.is_empty() {
                return Err(GeomError::EmptyRow { row: y.get() });
            }
            for (j, &net) in row.iter().enumerate() {
                let ball = BallRef::new(net, y, j as u32 + 1);
                if balls.insert(net, ball).is_some() {
                    return Err(GeomError::DuplicateNet { net });
                }
                let kind = self.kinds.get(&net).copied().unwrap_or_default();
                let tier = self.tiers.get(&net).copied().unwrap_or(TierId::BASE);
                nets.insert(net, Net::new(net, kind, tier));
            }
        }
        for net in self.kinds.keys().chain(self.tiers.keys()) {
            if !balls.contains_key(net) {
                return Err(GeomError::UnknownNet { net: *net });
            }
        }
        let fingers = self.fingers.unwrap_or(nets.len());
        if fingers < nets.len() {
            return Err(GeomError::TooFewFingers {
                fingers,
                nets: nets.len(),
            });
        }
        // Flatten the keyed build-time maps into the dense interned form;
        // BTreeMap iteration is ascending, so position == dense index.
        let index = NetIndex::from_sorted_ids(nets.keys().copied().collect());
        let dense_balls = nets.keys().map(|id| balls[id]).collect();
        let dense_nets = nets.into_values().collect();
        Ok(Quadrant {
            rows: self.rows,
            index,
            nets: dense_nets,
            balls: dense_balls,
            fingers,
            geometry: self.geometry,
        })
    }
}

impl From<u32> for RowIdx {
    fn from(y: u32) -> Self {
        Self::new(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 12-net instance of the paper's Fig. 5 used throughout the tests.
    fn fig5() -> Quadrant {
        Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .build()
            .unwrap()
    }

    #[test]
    fn fig5_structure_matches_paper() {
        let q = fig5();
        assert_eq!(q.net_count(), 12);
        assert_eq!(q.finger_count(), 12);
        assert_eq!(q.row_count(), 3);
        assert_eq!(q.top_row(), RowIdx::new(3));
        assert_eq!(q.row(3u32), &[NetId::new(11), NetId::new(6), NetId::new(9)]);
    }

    #[test]
    fn rows_top_down_starts_at_highest_line() {
        let q = fig5();
        let ys: Vec<u32> = q.rows_top_down().map(|(y, _)| y.get()).collect();
        assert_eq!(ys, vec![3, 2, 1]);
        let ys: Vec<u32> = q.rows_bottom_up().map(|(y, _)| y.get()).collect();
        assert_eq!(ys, vec![1, 2, 3]);
    }

    #[test]
    fn ball_of_locates_nets() {
        let q = fig5();
        let b = q.ball_of(NetId::new(6)).unwrap();
        assert_eq!(b.row.get(), 3);
        assert_eq!(b.col, 2);
        assert!(q.ball_of(NetId::new(99)).is_none());
    }

    #[test]
    fn rows_are_horizontally_centred() {
        let q = fig5();
        // Row 3 has 3 balls: middle ball at x = 0.
        assert!(q.ball_center(RowIdx::new(3), 2).x.abs() < 1e-12);
        // Row 2 has 4 balls: symmetric about 0.
        let l = q.ball_center(RowIdx::new(2), 1).x;
        let r = q.ball_center(RowIdx::new(2), 4).x;
        assert!((l + r).abs() < 1e-12);
    }

    #[test]
    fn via_sites_are_balls_plus_one() {
        let q = fig5();
        assert_eq!(q.via_site_count(RowIdx::new(3)), 4);
        assert_eq!(q.via_site_count(RowIdx::new(1)), 6);
        // Site s is left of ball s; the last site is right of the last ball.
        let row = RowIdx::new(3);
        assert!(q.via_site_x(row, 1) < q.ball_center(row, 1).x);
        assert!(q.via_site_x(row, 4) > q.ball_center(row, 3).x);
        // Sites are strictly increasing.
        for s in 1..4 {
            assert!(q.via_site_x(row, s) < q.via_site_x(row, s + 1));
        }
    }

    #[test]
    fn via_of_is_bottom_left_of_ball() {
        let q = fig5();
        let b = q.ball_of(NetId::new(6)).unwrap();
        let via = q.via_of(NetId::new(6));
        let ball = q.ball_center(b.row, b.col);
        assert!(via.x < ball.x);
        assert_eq!(via.y, q.line_y(b.row));
    }

    #[test]
    fn finger_line_sits_above_top_row() {
        let q = fig5();
        assert!(q.finger_line_y() > q.line_y(q.top_row()));
        let f1 = q.finger_center(FingerIdx::new(1));
        let f12 = q.finger_center(FingerIdx::new(12));
        assert!((f1.x + f12.x).abs() < 1e-9, "finger row is centred");
        assert!(f1.x < f12.x);
    }

    #[test]
    fn builder_rejects_duplicate_nets() {
        let err = Quadrant::builder()
            .row([1u32, 2])
            .row([2u32])
            .build()
            .unwrap_err();
        assert_eq!(err, GeomError::DuplicateNet { net: NetId::new(2) });
    }

    #[test]
    fn builder_rejects_empty_inputs() {
        assert_eq!(Quadrant::builder().build().unwrap_err(), GeomError::NoRows);
        assert_eq!(
            Quadrant::builder()
                .row(Vec::<NetId>::new())
                .build()
                .unwrap_err(),
            GeomError::EmptyRow { row: 1 }
        );
    }

    #[test]
    fn builder_rejects_unknown_overrides() {
        let err = Quadrant::builder()
            .row([1u32])
            .net_kind(5u32, NetKind::Power)
            .build()
            .unwrap_err();
        assert_eq!(err, GeomError::UnknownNet { net: NetId::new(5) });
    }

    #[test]
    fn builder_rejects_too_few_fingers() {
        let err = Quadrant::builder()
            .row([1u32, 2, 3])
            .fingers(2)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            GeomError::TooFewFingers {
                fingers: 2,
                nets: 3
            }
        );
    }

    #[test]
    fn builder_rejects_bad_geometry() {
        let geometry = QuadrantGeometry {
            ball_pitch: 0.0,
            ..QuadrantGeometry::default()
        };
        let err = Quadrant::builder()
            .row([1u32])
            .geometry(geometry)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            GeomError::InvalidGeometry {
                parameter: "ball_pitch"
            }
        );
    }

    #[test]
    fn net_index_interns_ids_in_quadrant_order() {
        let q = fig5();
        let index = q.net_index();
        assert_eq!(index.len(), 12);
        assert!(!index.is_empty());
        for (i, net) in q.nets().enumerate() {
            assert_eq!(index.get(net.id), Some(i), "net {}", net.id.raw());
            assert_eq!(index.id(i), net.id);
            assert_eq!(q.net_at_index(i).id, net.id);
            assert_eq!(q.ball_at_index(i), q.ball_of(net.id).unwrap());
        }
        assert_eq!(index.get(NetId::new(99)), None);
        assert_eq!(index.ids().len(), 12);
    }

    #[test]
    fn sparse_id_spaces_fall_back_to_search() {
        // Ids far apart force the binary-search representation; lookups
        // must behave identically.
        let q = Quadrant::builder()
            .row([7u32, 4_000_000_000, 123_456])
            .build()
            .unwrap();
        let index = q.net_index();
        assert_eq!(index.get(NetId::new(7)), Some(0));
        assert_eq!(index.get(NetId::new(123_456)), Some(1));
        assert_eq!(index.get(NetId::new(4_000_000_000)), Some(2));
        assert_eq!(index.get(NetId::new(8)), None);
        assert!(q.net(NetId::new(4_000_000_000)).is_some());
    }

    #[test]
    fn net_overrides_apply() {
        let q = Quadrant::builder()
            .row([1u32, 2])
            .net_kind(1u32, NetKind::Power)
            .net_tier(2u32, TierId::new(2))
            .build()
            .unwrap();
        assert_eq!(q.net(NetId::new(1)).unwrap().kind, NetKind::Power);
        assert_eq!(q.net(NetId::new(2)).unwrap().tier, TierId::new(2));
        let power: Vec<NetId> = q.nets_of_kind(NetKind::Power).collect();
        assert_eq!(power, vec![NetId::new(1)]);
    }
}
