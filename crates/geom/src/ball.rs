//! Bump-ball references.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{NetId, RowIdx};

/// Location of one bump ball inside a quadrant: the paper's `B_{γ,δ,ε}`
/// (net name γ at column δ of row ε).
///
/// Columns are 1-based from the left within their row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BallRef {
    /// Net connected to this ball.
    pub net: NetId,
    /// Ball row (1-based from the bottom of the quadrant).
    pub row: RowIdx,
    /// Ball column within the row (1-based from the left).
    pub col: u32,
}

impl BallRef {
    /// Creates a ball reference.
    ///
    /// # Panics
    ///
    /// Panics if `col` is zero (columns are 1-based).
    #[must_use]
    pub fn new(net: NetId, row: RowIdx, col: u32) -> Self {
        assert!(col > 0, "ball columns are 1-based");
        Self { net, row, col }
    }

    /// 0-based column, convenient for slice indexing.
    #[must_use]
    pub const fn col_zero_based(self) -> usize {
        (self.col - 1) as usize
    }
}

impl fmt::Display for BallRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B[{}, x={}, {}]", self.net, self.col, self.row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ball_ref_round_trips_fields() {
        let b = BallRef::new(NetId::new(6), RowIdx::new(3), 2);
        assert_eq!(b.net, NetId::new(6));
        assert_eq!(b.row.get(), 3);
        assert_eq!(b.col_zero_based(), 1);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn ball_columns_reject_zero() {
        let _ = BallRef::new(NetId::new(1), RowIdx::new(1), 0);
    }

    #[test]
    fn display_mentions_net_and_row() {
        let b = BallRef::new(NetId::new(9), RowIdx::new(2), 4);
        let s = b.to_string();
        assert!(s.contains("N9"));
        assert!(s.contains("y=2"));
    }
}
