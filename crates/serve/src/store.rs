//! The persistent tier of the result cache: one file per fingerprint.
//!
//! On-disk format (version-tagged, length-prefixed, checksummed):
//!
//! ```text
//! copack-cache v1\n
//! key <016x>\n
//! name <len>\n<bytes>
//! report <len>\n<bytes>
//! assignment <len>\n<bytes>
//! checksum <016x>\n
//! ```
//!
//! The checksum is fnv1a64 over everything before the `checksum` line,
//! so truncation, bit rot, and partially-written files are all caught
//! on load. Writes go to a `.tmp` sibling and are published with an
//! atomic `rename`, so a crash (even SIGKILL) can never leave a
//! half-written entry under a live name — at worst it leaves a stale
//! `.tmp` file, which [`DiskStore::open`] sweeps on boot.
//!
//! A file that exists but fails validation is **quarantined**: renamed
//! to `<key>.quarantine` so it is never served, never retried, and
//! still available for post-mortem inspection.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::process;

use copack_io::fnv1a64;

use crate::job::JobOutput;

/// Suffix of live cache entries.
const ENTRY_EXT: &str = "entry";
/// Suffix a corrupt entry is renamed to.
const QUARANTINE_EXT: &str = "quarantine";
/// Magic first line of every entry file.
const MAGIC: &str = "copack-cache v1";

/// How a disk lookup resolved.
#[derive(Debug)]
pub(crate) enum DiskLookup {
    /// A validated entry.
    Ready(JobOutput),
    /// No file for this key.
    Absent,
    /// A file existed but failed validation; it has been quarantined.
    Quarantined,
}

/// The on-disk store. All operations are keyed by the same fnv1a64
/// fingerprint as the memory tier.
#[derive(Debug)]
pub(crate) struct DiskStore {
    dir: PathBuf,
}

impl DiskStore {
    /// Opens (creating if needed) the store directory, sweeps stale
    /// temp files from interrupted writes, and counts live entries.
    pub(crate) fn open(dir: &Path) -> io::Result<(Self, u64)> {
        fs::create_dir_all(dir)?;
        let mut entries = 0u64;
        for item in fs::read_dir(dir)? {
            let item = item?;
            let name = item.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".tmp") {
                // A write interrupted mid-flight; the live name was
                // never touched, so the temp file is pure garbage.
                let _ = fs::remove_file(item.path());
            } else if parse_entry_name(&name).is_some() {
                entries += 1;
            }
        }
        Ok((
            Self {
                dir: dir.to_path_buf(),
            },
            entries,
        ))
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.{ENTRY_EXT}"))
    }

    /// Persists `output` under `key` atomically (write temp, rename).
    pub(crate) fn store(&self, key: u64, output: &JobOutput) -> io::Result<()> {
        let bytes = encode_entry(key, output);
        let tmp = self.dir.join(format!("{key:016x}.{}.tmp", process::id()));
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        match fs::rename(&tmp, self.entry_path(key)) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Loads and validates the entry for `key`. Anything unreadable or
    /// failing validation is quarantined on the spot.
    pub(crate) fn load(&self, key: u64) -> DiskLookup {
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return DiskLookup::Absent,
            Err(_) => {
                self.quarantine(key);
                return DiskLookup::Quarantined;
            }
        };
        match decode_entry(key, &bytes) {
            Some(output) => DiskLookup::Ready(output),
            None => {
                self.quarantine(key);
                DiskLookup::Quarantined
            }
        }
    }

    /// Moves the entry for `key` out of the live namespace.
    pub(crate) fn quarantine(&self, key: u64) {
        let from = self.entry_path(key);
        let to = self.dir.join(format!("{key:016x}.{QUARANTINE_EXT}"));
        if fs::rename(&from, &to).is_err() {
            // Renaming failed (permissions, races): deletion is the
            // fallback that still guarantees the entry is never served.
            let _ = fs::remove_file(&from);
        }
    }
}

/// Parses a live entry filename back into its key.
fn parse_entry_name(name: &str) -> Option<u64> {
    let stem = name.strip_suffix(&format!(".{ENTRY_EXT}"))?;
    if stem.len() != 16 {
        return None;
    }
    u64::from_str_radix(stem, 16).ok()
}

fn encode_entry(key: u64, output: &JobOutput) -> Vec<u8> {
    let mut bytes =
        Vec::with_capacity(output.name.len() + output.report.len() + output.assignment.len() + 128);
    bytes.extend_from_slice(MAGIC.as_bytes());
    bytes.push(b'\n');
    bytes.extend_from_slice(format!("key {key:016x}\n").as_bytes());
    for (tag, payload) in [
        ("name", &output.name),
        ("report", &output.report),
        ("assignment", &output.assignment),
    ] {
        bytes.extend_from_slice(format!("{tag} {}\n", payload.len()).as_bytes());
        bytes.extend_from_slice(payload.as_bytes());
    }
    let checksum = fnv1a64(&bytes);
    bytes.extend_from_slice(format!("checksum {checksum:016x}\n").as_bytes());
    bytes
}

fn decode_entry(key: u64, bytes: &[u8]) -> Option<JobOutput> {
    let mut cursor = bytes;
    let line = take_line(&mut cursor)?;
    if line != MAGIC.as_bytes() {
        return None;
    }
    let line = take_line(&mut cursor)?;
    let stored_key = std::str::from_utf8(line.strip_prefix(b"key ")?).ok()?;
    if u64::from_str_radix(stored_key, 16).ok()? != key {
        return None;
    }
    let mut sections = Vec::with_capacity(3);
    for tag in ["name", "report", "assignment"] {
        let header = take_line(&mut cursor)?;
        let len_text = header.strip_prefix(tag.as_bytes())?.strip_prefix(b" ")?;
        let len: usize = std::str::from_utf8(len_text).ok()?.parse().ok()?;
        if cursor.len() < len {
            return None;
        }
        let (payload, rest) = cursor.split_at(len);
        sections.push(String::from_utf8(payload.to_vec()).ok()?);
        cursor = rest;
    }
    let trailer_at = bytes.len() - cursor.len();
    let line = take_line(&mut cursor)?;
    let stored = std::str::from_utf8(line.strip_prefix(b"checksum ")?).ok()?;
    let stored = u64::from_str_radix(stored, 16).ok()?;
    if !cursor.is_empty() || fnv1a64(&bytes[..trailer_at]) != stored {
        return None;
    }
    let mut sections = sections.into_iter();
    Some(JobOutput {
        name: sections.next()?,
        report: sections.next()?,
        assignment: sections.next()?,
    })
}

/// Splits the next `\n`-terminated line off the front of `cursor`
/// (newline excluded from the returned slice, consumed from the input).
fn take_line<'a>(cursor: &mut &'a [u8]) -> Option<&'a [u8]> {
    let pos = cursor.iter().position(|&b| b == b'\n')?;
    let (line, rest) = cursor.split_at(pos);
    *cursor = &rest[1..];
    Some(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "copack-store-{tag}-{}-{:?}",
            process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn output(tag: &str) -> JobOutput {
        JobOutput {
            name: tag.to_owned(),
            report: format!("{tag}: dfa(n=1) -> ok\nnewlines \u{1F980} survive\n"),
            assignment: format!("assignment {tag}\norder 1 2 3\n"),
        }
    }

    #[test]
    fn a_stored_entry_loads_byte_identically() {
        let dir = scratch_dir("roundtrip");
        let (store, boot) = DiskStore::open(&dir).expect("open");
        assert_eq!(boot, 0);
        store.store(0xdead_beef, &output("demo")).expect("store");
        match store.load(0xdead_beef) {
            DiskLookup::Ready(loaded) => assert_eq!(loaded, output("demo")),
            other => panic!("expected a ready entry, got {other:?}"),
        }
        // Reopening counts the persisted entry.
        let (_, entries) = DiskStore::open(&dir).expect("reopen");
        assert_eq!(entries, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_keys_are_absent_not_errors() {
        let dir = scratch_dir("absent");
        let (store, _) = DiskStore::open(&dir).expect("open");
        assert!(matches!(store.load(42), DiskLookup::Absent));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_and_truncation_are_quarantined_not_served() {
        let dir = scratch_dir("corrupt");
        let (store, _) = DiskStore::open(&dir).expect("open");
        store.store(1, &output("flip")).expect("store");
        store.store(2, &output("trunc")).expect("store");
        store.store(3, &output("garbage")).expect("store");

        // Flip a payload byte in entry 1.
        let path = dir.join(format!("{:016x}.entry", 1));
        let mut bytes = fs::read(&path).expect("read");
        let at = bytes.len() / 2;
        bytes[at] ^= 0x20;
        fs::write(&path, &bytes).expect("rewrite");
        // Truncate entry 2 (a torn write that somehow got the live name).
        let path = dir.join(format!("{:016x}.entry", 2));
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        // Replace entry 3 with plain garbage.
        fs::write(dir.join(format!("{:016x}.entry", 3)), b"not an entry").expect("garbage");

        for key in [1, 2, 3] {
            assert!(
                matches!(store.load(key), DiskLookup::Quarantined),
                "key {key} must be quarantined"
            );
            assert!(
                dir.join(format!("{key:016x}.quarantine")).exists(),
                "key {key} must leave a quarantine file"
            );
            // The live name is gone: the next load is a plain miss.
            assert!(matches!(store.load(key), DiskLookup::Absent));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_mismatched_key_in_a_valid_file_is_rejected() {
        // Catches a file copied/renamed onto the wrong fingerprint.
        let dir = scratch_dir("renamed");
        let (store, _) = DiskStore::open(&dir).expect("open");
        store.store(7, &output("seven")).expect("store");
        fs::rename(
            dir.join(format!("{:016x}.entry", 7)),
            dir.join(format!("{:016x}.entry", 8)),
        )
        .expect("rename");
        assert!(matches!(store.load(8), DiskLookup::Quarantined));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn boot_sweeps_stale_temp_files() {
        let dir = scratch_dir("sweep");
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join("0000000000000001.12345.tmp"), b"torn").expect("tmp");
        let (_, entries) = DiskStore::open(&dir).expect("open");
        assert_eq!(entries, 0);
        assert!(
            !dir.join("0000000000000001.12345.tmp").exists(),
            "stale temp files are removed on boot"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
