//! A minimal, dependency-free JSON reader for the wire protocol.
//!
//! The workspace builds without crates.io access, so the daemon carries
//! its own parser: a strict recursive-descent reader producing a
//! [`Json`] tree. Two deliberate choices keep it honest for this use:
//!
//! * **Numbers keep their literal text.** Seeds are full-range `u64`s;
//!   routing them through `f64` would silently round values above 2⁵³
//!   and split or merge cache keys. [`Json::as_u64`] parses the literal
//!   directly.
//! * **Strictness over leniency.** Trailing garbage, unterminated
//!   strings, bare words, and deep nesting are all hard errors — a
//!   malformed frame must become a typed protocol error, never a
//!   half-parsed request.

use std::fmt::Write as _;

/// Maximum container nesting the reader accepts; the protocol never
/// nests more than two levels, so this only bounds hostile input.
const MAX_DEPTH: usize = 32;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its literal text (see the module docs).
    Num(String),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in declaration order (duplicate keys rejected).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document; trailing non-whitespace is an
    /// error.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Self, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    /// Looks a key up in an object (`None` for other variants).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer literal
    /// in range (exact — no float round trip).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".to_owned());
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected `{}` at byte {}", *c as char, *pos)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs: Vec<(String, Json)> = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        if pairs.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate key `{key}`"));
        }
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".to_owned());
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_owned());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let first = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: require the paired low one.
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let second = parse_hex4(bytes, pos)?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err("unpaired surrogate".to_owned());
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                return Err("unpaired surrogate".to_owned());
                            }
                        } else if (0xDC00..0xE000).contains(&first) {
                            return Err("unpaired surrogate".to_owned());
                        } else {
                            first
                        };
                        out.push(char::from_u32(code).ok_or_else(|| "bad code point".to_owned())?);
                    }
                    other => return Err(format!("bad escape `\\{}`", other as char)),
                }
            }
            0x00..=0x1F => return Err("raw control character in string".to_owned()),
            _ => {
                // Re-borrow the full UTF-8 sequence starting one byte back.
                let start = *pos - 1;
                let rest = &bytes[start..];
                let s = std::str::from_utf8(&rest[..rest.len().min(4)]).map_or_else(
                    |e| {
                        if e.valid_up_to() == 0 {
                            Err("invalid utf-8 in string".to_owned())
                        } else {
                            Ok(std::str::from_utf8(&rest[..e.valid_up_to()]).expect("validated"))
                        }
                    },
                    Ok,
                )?;
                let c = s
                    .chars()
                    .next()
                    .ok_or_else(|| "invalid utf-8 in string".to_owned())?;
                out.push(c);
                *pos = start + c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    if bytes.len() < *pos + 4 {
        return Err("truncated \\u escape".to_owned());
    }
    let hex =
        std::str::from_utf8(&bytes[*pos..*pos + 4]).map_err(|_| "bad \\u escape".to_owned())?;
    let v = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_owned())?;
    *pos += 4;
    Ok(v)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    let int_digits = eat_digits(bytes, pos);
    if int_digits == 0 || (int_digits > 1 && bytes[int_start] == b'0') {
        return Err(format!("bad number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(bytes, pos) == 0 {
            return Err(format!("bad number at byte {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(bytes, pos) == 0 {
            return Err(format!("bad number at byte {start}"));
        }
    }
    let raw = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ascii");
    Ok(Json::Num(raw.to_owned()))
}

fn eat_digits(bytes: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while matches!(bytes.get(*pos), Some(b) if b.is_ascii_digit()) {
        *pos += 1;
    }
    *pos - start
}

/// Appends `s` JSON-escaped (with surrounding quotes) to `out`; matches
/// the escaping `copack-obs` uses for trace lines.
pub fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let j = Json::parse(
            r#"{"op":"plan","circuit":"quadrant a\nrow 1 2\n","exchange":true,"psi":2,"seed":42}"#,
        )
        .unwrap();
        assert_eq!(j.get("op").and_then(Json::as_str), Some("plan"));
        assert_eq!(
            j.get("circuit").and_then(Json::as_str),
            Some("quadrant a\nrow 1 2\n")
        );
        assert_eq!(j.get("exchange").and_then(Json::as_bool), Some(true));
        assert_eq!(j.get("psi").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn u64_survives_beyond_f64_precision() {
        let j = Json::parse(r#"{"seed":18446744073709551615}"#).unwrap();
        assert_eq!(j.get("seed").and_then(Json::as_u64), Some(u64::MAX));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "{\"a\":1} trailing",
            "{\"a\":1,\"a\":2}",
            "\"unterminated",
            "{\"a\":01}",
            "nul",
            "\"bad \\x escape\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(64) + &"]".repeat(64);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn escapes_round_trip_through_the_writer() {
        let original = "a\"b\\c\nd\te\u{1}f µ 💡";
        let mut encoded = String::new();
        write_json_str(&mut encoded, original);
        let parsed = Json::parse(&encoded).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn surrogate_pairs_decode() {
        let j = Json::parse("\"\\ud83d\\udca1\"").unwrap();
        assert_eq!(j.as_str(), Some("💡"));
        assert!(Json::parse("\"\\ud83d alone\"").is_err());
    }

    #[test]
    fn numbers_parse_as_floats_too() {
        let j = Json::parse(r#"{"x":-1.5e3}"#).unwrap();
        assert_eq!(j.get("x").and_then(Json::as_f64), Some(-1500.0));
        assert_eq!(j.get("x").and_then(Json::as_u64), None);
    }
}
