//! Typed errors for the serving layer.
//!
//! Every failure a client can observe is one of a small closed set of
//! kinds, carried on the wire as `{"ok":false,"error":{"kind":...,
//! "message":...}}`. Kinds are stable protocol vocabulary — tests and
//! scripts match on them — while messages are free-form diagnostics.

use std::fmt;

/// Machine-readable failure category (the wire `kind` tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorKind {
    /// The frame was not a syntactically valid request (bad JSON, wrong
    /// shape, non-UTF-8 bytes).
    BadFrame,
    /// The frame exceeded [`crate::protocol::MAX_FRAME`] bytes.
    Oversized,
    /// The request parsed but its contents are unusable (unknown op,
    /// invalid circuit text, out-of-range parameter).
    BadRequest,
    /// The bounded job queue is full; the submission was rejected
    /// without queueing (backpressure).
    QueueFull,
    /// The job exceeded its wall-clock budget and was cancelled.
    Timeout,
    /// The planner itself failed (e.g. the circuit admits no legal
    /// assignment under the requested method).
    JobFailed,
    /// The daemon is already draining; no new work is accepted.
    ShuttingDown,
    /// A transport-level failure (connection reset, short read).
    Io,
    /// The peer broke the protocol state machine (e.g. bytes after a
    /// shutdown acknowledgement).
    Protocol,
}

impl ErrorKind {
    /// The stable wire tag for this kind.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::BadFrame => "bad_frame",
            Self::Oversized => "oversized",
            Self::BadRequest => "bad_request",
            Self::QueueFull => "queue_full",
            Self::Timeout => "timeout",
            Self::JobFailed => "job_failed",
            Self::ShuttingDown => "shutting_down",
            Self::Io => "io",
            Self::Protocol => "protocol",
        }
    }

    /// Parses a wire tag back into a kind (`None` for unknown tags, so
    /// old clients degrade gracefully against newer daemons).
    #[must_use]
    pub fn parse_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "bad_frame" => Self::BadFrame,
            "oversized" => Self::Oversized,
            "bad_request" => Self::BadRequest,
            "queue_full" => Self::QueueFull,
            "timeout" => Self::Timeout,
            "job_failed" => Self::JobFailed,
            "shutting_down" => Self::ShuttingDown,
            "io" => Self::Io,
            "protocol" => Self::Protocol,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One serving-layer failure: a stable [`ErrorKind`] plus a diagnostic
/// message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// The failure category (stable wire vocabulary).
    pub kind: ErrorKind,
    /// Human-readable detail; not matched on by tooling.
    pub message: String,
}

impl ServeError {
    /// Builds an error from a kind and any displayable message.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        Self {
            kind,
            message: message.into(),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        Self::new(ErrorKind::Io, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_tags_round_trip() {
        for kind in [
            ErrorKind::BadFrame,
            ErrorKind::Oversized,
            ErrorKind::BadRequest,
            ErrorKind::QueueFull,
            ErrorKind::Timeout,
            ErrorKind::JobFailed,
            ErrorKind::ShuttingDown,
            ErrorKind::Io,
            ErrorKind::Protocol,
        ] {
            assert_eq!(ErrorKind::parse_tag(kind.as_str()), Some(kind));
        }
        assert_eq!(ErrorKind::parse_tag("no_such_kind"), None);
    }

    #[test]
    fn display_pairs_kind_and_message() {
        let e = ServeError::new(ErrorKind::QueueFull, "queue is at capacity (4)");
        assert_eq!(e.to_string(), "queue_full: queue is at capacity (4)");
    }
}
