//! A resident batch-planning service for the finger/pad planner.
//!
//! The paper's flow (Lu, Chen, Liu, Shih; DATE 2009) is a batch
//! optimisation: every circuit in Table 1 is planned independently,
//! and design-space sweeps re-plan the *same* instance under many
//! configurations. This crate turns the one-shot `copack plan` pipeline
//! into a daemon built for that workload:
//!
//! * **Protocol** ([`protocol`]) — newline-delimited JSON frames over a
//!   local TCP socket; every failure is a typed [`ServeError`], never a
//!   dropped connection. Batches stream per-item frames in completion
//!   order, closed by a summary frame.
//! * **Reactor** — one readiness-polled event loop owns every socket,
//!   so the daemon is `workers + 1` threads no matter how many clients
//!   connect (pre-v2 each connection parked a thread).
//! * **Bounded pool** ([`Server`]) — a fixed worker-thread pool behind
//!   two bounded class queues ([`JobClass::Interactive`] /
//!   [`JobClass::Bulk`]) with weighted dequeue, explicit backpressure
//!   (`queue_full`), and per-job wall-clock timeouts enforced by the
//!   cooperative [`copack_core::CancelToken`] threaded into the anneal
//!   loop.
//! * **Tiered result cache** ([`ResultCache`]) — results are keyed by a
//!   canonical hash of `(instance, config)` ([`cache_key`]): a bounded
//!   LRU memory tier answers repeats instantly, *concurrent* duplicates
//!   coalesce onto a single computation, and an optional persistent
//!   disk tier (checksummed, atomically written) survives restarts —
//!   even a `SIGKILL` mid-write.
//!
//! Determinism is preserved across the service boundary: a plan served
//! by the daemon is byte-identical to `copack plan` run locally on the
//! same inputs, because both sides share one executor ([`execute_job`])
//! and the annealer's RNG stream is untouched by cancellation polling.
//!
//! ```no_run
//! use copack_serve::{Client, JobSpec, ServeConfig, Server};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = Server::bind("127.0.0.1:0", ServeConfig::default())?;
//! let addr = server.local_addr()?;
//! std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr)?;
//! let plan = client.plan(&JobSpec::new("quadrant a\nrow 2 1 3\n"))?;
//! assert_eq!(plan.cache, "miss");
//! client.shutdown()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod client;
mod error;
mod job;
mod json;
mod metrics;
mod protocol;
mod reactor;
mod server;
mod store;

pub use cache::{CacheConfig, CacheStats, Lookup, ResultCache, Waiter};
pub use client::{BatchOutcome, Client};
pub use error::{ErrorKind, ServeError};
pub use job::{
    cache_key, cache_key_with, execute_job, execute_job_full, ExecReport, JobClass, JobOutput,
    JobSpec, JournalRecord,
};
pub use metrics::{pool_metrics_text, PoolMetrics};
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, BatchSummary, Frame,
    LineReader, PlanResponse, Request, Response, StatusSnapshot, MAX_BATCH, MAX_FRAME,
};
pub use server::{ServeConfig, ServeSummary, Server};
