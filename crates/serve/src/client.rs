//! A small blocking client for the daemon's protocol, shared by the
//! `copack submit` / `copack batch` / `copack shutdown` verbs and the
//! integration tests.

use std::io::Write as _;
use std::net::{TcpStream, ToSocketAddrs};

use crate::error::{ErrorKind, ServeError};
use crate::job::{JobClass, JobSpec};
use crate::protocol::{
    decode_response, encode_request, BatchSummary, Frame, LineReader, PlanResponse, Request,
    Response, StatusSnapshot,
};

/// Everything a streamed batch produced, returned by [`Client::batch`].
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-job results in **completion order** as streamed by the
    /// daemon, each tagged with the job's submission index (`seq`).
    pub items: Vec<(u32, Result<PlanResponse, ServeError>)>,
    /// The daemon's closing summary frame.
    pub summary: BatchSummary,
}

/// One connection to a running daemon. Requests are serialized: each
/// call writes one frame and blocks for its response.
#[derive(Debug)]
pub struct Client {
    reader: LineReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Io`] when the daemon is unreachable.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let writer = TcpStream::connect(addr)?;
        let reader = LineReader::new(writer.try_clone()?);
        Ok(Self { reader, writer })
    }

    /// Sends one request frame and blocks for the matching response.
    ///
    /// # Errors
    ///
    /// Transport failures ([`ErrorKind::Io`]) or an undecodable
    /// response ([`ErrorKind::Protocol`]). A well-formed *failure*
    /// response is returned as `Ok(Response::Error(..))` so callers can
    /// distinguish "the daemon said no" from "the wire broke".
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response, ServeError> {
        let mut frame = encode_request(request);
        frame.push('\n');
        self.writer.write_all(frame.as_bytes())?;
        loop {
            match self.reader.next_frame()? {
                Frame::Line(line) => return decode_response(&line),
                Frame::Idle => {}
                Frame::Eof => {
                    return Err(ServeError::new(
                        ErrorKind::Io,
                        "the daemon closed the connection before responding",
                    ))
                }
            }
        }
    }

    /// Submits a planning job and returns the completed plan.
    ///
    /// # Errors
    ///
    /// The daemon's typed error (backpressure, timeout, planner
    /// failure, ...) or a transport/protocol failure.
    pub fn plan(&mut self, spec: &JobSpec) -> Result<PlanResponse, ServeError> {
        match self.roundtrip(&Request::Plan(spec.clone()))? {
            Response::Plan(plan) => Ok(plan),
            Response::Error(error) => Err(error),
            other => Err(unexpected("a plan response", &other)),
        }
    }

    /// Submits a batch of jobs under one class and streams the results:
    /// `on_item` fires for every item frame the moment it arrives (in
    /// completion order, tagged with the job's submission index), and
    /// the full outcome is returned once the daemon's summary frame
    /// closes the batch.
    ///
    /// Per-job failures (timeout, planner error, rejection) arrive as
    /// `Err` *items*, not as an `Err` return: only batch-level refusals
    /// (malformed batch, transport loss) abort the call.
    ///
    /// # Errors
    ///
    /// The daemon's typed batch-level error or a transport/protocol
    /// failure.
    pub fn batch(
        &mut self,
        specs: &[JobSpec],
        class: JobClass,
        on_item: impl FnMut(u32, &Result<PlanResponse, ServeError>),
    ) -> Result<BatchOutcome, ServeError> {
        let request = Request::Batch {
            class,
            jobs: specs.to_vec(),
        };
        self.stream_items(&request, on_item)
    }

    /// Submits an incremental replan: one job per quadrant, each spec
    /// carrying the previous plan (`prev`) for the dirty ones. Streams
    /// exactly like [`Client::batch`]; the daemon answers untouched
    /// quadrants from its cache and only runs workers on the dirty set.
    ///
    /// # Errors
    ///
    /// The daemon's typed replan-level error or a transport/protocol
    /// failure; per-job failures arrive as `Err` items.
    pub fn replan(
        &mut self,
        specs: &[JobSpec],
        class: JobClass,
        on_item: impl FnMut(u32, &Result<PlanResponse, ServeError>),
    ) -> Result<BatchOutcome, ServeError> {
        let request = Request::Replan {
            class,
            jobs: specs.to_vec(),
        };
        self.stream_items(&request, on_item)
    }

    /// Shared streaming loop behind [`Client::batch`] and
    /// [`Client::replan`]: sends the request, surfaces every `item` frame
    /// through `on_item`, and returns once the summary frame closes the
    /// stream.
    fn stream_items(
        &mut self,
        request: &Request,
        mut on_item: impl FnMut(u32, &Result<PlanResponse, ServeError>),
    ) -> Result<BatchOutcome, ServeError> {
        let mut frame = encode_request(request);
        frame.push('\n');
        self.writer.write_all(frame.as_bytes())?;
        let mut items: Vec<(u32, Result<PlanResponse, ServeError>)> = Vec::new();
        loop {
            let line = loop {
                match self.reader.next_frame()? {
                    Frame::Line(line) => break line,
                    Frame::Idle => {}
                    Frame::Eof => {
                        return Err(ServeError::new(
                            ErrorKind::Io,
                            "the daemon closed the connection mid-batch",
                        ))
                    }
                }
            };
            match decode_response(&line)? {
                Response::BatchItem { seq, result } => {
                    on_item(seq, &result);
                    items.push((seq, result));
                }
                Response::BatchDone(summary) => return Ok(BatchOutcome { items, summary }),
                Response::Error(error) => return Err(error),
                other => return Err(unexpected("a batch item or summary", &other)),
            }
        }
    }

    /// Fetches the pool's counters and queue occupancy.
    ///
    /// # Errors
    ///
    /// The daemon's typed error or a transport/protocol failure.
    pub fn status(&mut self) -> Result<StatusSnapshot, ServeError> {
        match self.roundtrip(&Request::Status)? {
            Response::Status(snapshot) => Ok(snapshot),
            Response::Error(error) => Err(error),
            other => Err(unexpected("a status response", &other)),
        }
    }

    /// Asks the daemon to drain and stop.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::ShuttingDown`] when it is already draining, or a
    /// transport/protocol failure.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Shutdown => Ok(()),
            Response::Error(error) => Err(error),
            other => Err(unexpected("a shutdown acknowledgement", &other)),
        }
    }

    /// Sends raw bytes (not necessarily a valid frame) and returns the
    /// next response line verbatim — the error-path tests' backdoor.
    ///
    /// # Errors
    ///
    /// Transport failures, including the daemon closing the connection.
    pub fn raw(&mut self, bytes: &[u8]) -> Result<String, ServeError> {
        self.writer.write_all(bytes)?;
        loop {
            match self.reader.next_frame()? {
                Frame::Line(line) => return Ok(line),
                Frame::Idle => {}
                Frame::Eof => {
                    return Err(ServeError::new(
                        ErrorKind::Io,
                        "the daemon closed the connection before responding",
                    ))
                }
            }
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ServeError {
    ServeError::new(
        ErrorKind::Protocol,
        format!("expected {wanted}, got {got:?}"),
    )
}
