//! The resident daemon: pool core, admission policy, and lifecycle.
//!
//! Threading model (v2):
//!
//! * one **reactor** (the caller's thread, inside [`Server::run`])
//!   owning every socket: it polls a nonblocking listener plus all
//!   connections, decodes frames, answers cache hits inline, and
//!   registers cache misses to be answered when a worker finishes —
//!   see [`crate::reactor`]. Idle connections cost one pollfd each,
//!   not a thread;
//! * a fixed pool of **worker threads** popping jobs from two bounded
//!   class queues (interactive and bulk) with a weighted policy: up to
//!   [`crate::JobClass::INTERACTIVE_WEIGHT`] consecutive interactive
//!   dequeues before a waiting bulk job is guaranteed a turn. Each
//!   class queue never exceeds `queue_capacity`: a submission that
//!   finds its class full is rejected with a typed `queue_full` error
//!   instead of queueing (explicit backpressure, no unbounded
//!   buffering).
//!
//! Results flow through the tiered [`ResultCache`] (memory LRU over an
//! optional persistent disk store) and back to the reactor over a
//! completion queue plus a loopback waker, so a finished job wakes the
//! poll immediately instead of waiting out a tick.
//!
//! Timeouts are wall-clock from *admission*: a job that spends its
//! whole budget waiting in the queue is cancelled the moment a worker
//! picks it up, and the cooperative token aborts the anneal loop
//! mid-run otherwise. After a `shutdown` request the daemon stops
//! accepting connections, lets workers drain both queues, answers
//! every already-admitted job, and gives open connections a short
//! grace window in which further requests are answered with typed
//! `shutting_down` errors rather than a slammed socket.

use copack_core::CancelToken;
use copack_geom::Quadrant;
use copack_io::{canonical_quadrant_text, fnv1a64, parse_quadrant, TuneProfile};
use copack_obs::{Event, Recorder as _, TraceBuffer};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::cache::{CacheConfig, CacheStats, Lookup, ResultCache};
use crate::error::{ErrorKind, ServeError};
use crate::job::{cache_key_with, execute_job_full, JobClass, JobOutput, JobSpec, JournalRecord};
use crate::protocol::{Response, StatusSnapshot};
use crate::reactor::{CompletionQueue, Reactor};

/// How often parked workers wake to re-check the drain flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// How long open connections keep being served typed `shutting_down`
/// errors after a shutdown request before the daemon closes them.
pub(crate) const SHUTDOWN_GRACE: Duration = Duration::from_millis(750);

/// Pool and policy knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads; `0` means one per available CPU.
    pub workers: usize,
    /// Bounded per-class queue capacity — the backpressure threshold.
    pub queue_capacity: usize,
    /// Wall-clock budget applied to jobs that do not set their own
    /// `timeout_ms`; `None` means no default budget.
    pub default_timeout: Option<Duration>,
    /// Test hook: workers sleep this long before executing each job, so
    /// integration tests can deterministically fill the queue and
    /// observe coalescing. `None` (the default) adds no delay.
    pub worker_stall: Option<Duration>,
    /// Directory for the persistent result-cache tier; `None` keeps the
    /// cache memory-only (results do not survive a restart).
    pub cache_dir: Option<PathBuf>,
    /// Memory-tier budget in bytes (least-recently-used entries are
    /// evicted past it); `0` means unbounded.
    pub cache_mem_limit: usize,
    /// Loaded tuning profile (`copack serve --profile`). Jobs that set
    /// `profile: true` plan under its per-class configuration; when
    /// `None`, such jobs are refused as bad requests.
    pub profile: Option<TuneProfile>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_capacity: 64,
            default_timeout: Some(Duration::from_secs(30)),
            worker_stall: None,
            cache_dir: None,
            cache_mem_limit: 64 << 20,
            profile: None,
        }
    }
}

/// What the daemon did over its lifetime, returned by [`Server::run`].
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Final counter values.
    pub status: StatusSnapshot,
    /// Final result-cache statistics (both tiers).
    pub cache: CacheStats,
    /// Every recorded [`Event::ServeJob`], closed by one
    /// [`Event::ServeCache`] and one [`Event::ServePool`].
    pub events: Vec<Event>,
}

struct QueuedJob {
    spec: JobSpec,
    name: String,
    quadrant: Quadrant,
    key: u64,
    deadline: Option<Instant>,
}

/// Both class queues plus the drain flag under ONE mutex: admission,
/// worker exit, and the drain decision all serialize here, so a job can
/// never slip into a queue after the last worker has decided to exit.
#[derive(Default)]
struct PoolState {
    interactive: VecDeque<QueuedJob>,
    bulk: VecDeque<QueuedJob>,
    /// Consecutive interactive dequeues since a bulk job last ran.
    interactive_streak: u32,
    draining: bool,
}

impl PoolState {
    /// Weighted dequeue: interactive jobs go first, but after
    /// [`JobClass::INTERACTIVE_WEIGHT`] of them in a row a waiting bulk
    /// job is guaranteed the next worker — bounded-latency for the
    /// interactive class without starving bulk.
    fn dequeue(&mut self) -> Option<QueuedJob> {
        let bulk_turn = self.interactive.is_empty()
            || (!self.bulk.is_empty() && self.interactive_streak >= JobClass::INTERACTIVE_WEIGHT);
        if bulk_turn {
            if let Some(job) = self.bulk.pop_front() {
                self.interactive_streak = 0;
                return Some(job);
            }
        }
        if let Some(job) = self.interactive.pop_front() {
            self.interactive_streak += 1;
            return Some(job);
        }
        None
    }

    fn queued(&self) -> usize {
        self.interactive.len() + self.bulk.len()
    }
}

/// How many frozen portfolio journals the daemon retains for
/// journal-seeded replans. Oldest-first eviction: the registry is a
/// warm-start accelerator, never a correctness dependency (a miss just
/// falls back to the parse-and-repair path).
const JOURNAL_CAPACITY: usize = 64;

/// Bounded FIFO registry of frozen portfolio-winner journals, keyed by
/// the FNV-1a hash of the canonical circuit text plus the winner's
/// assignment-file bytes — exactly what a replan resubmits as
/// `(circuit, prev)`, so a hit guarantees the journal replays onto the
/// same instance to the same plan the parse path would start from.
#[derive(Default)]
struct JournalRegistry {
    entries: VecDeque<(u64, JournalRecord)>,
}

impl JournalRegistry {
    fn remember(&mut self, key: u64, record: JournalRecord) {
        self.entries.retain(|(k, _)| *k != key);
        if self.entries.len() >= JOURNAL_CAPACITY {
            self.entries.pop_front();
        }
        self.entries.push_back((key, record));
    }

    fn lookup(&self, key: u64) -> Option<JournalRecord> {
        self.entries
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, r)| r.clone())
    }
}

/// Registry key for a `(quadrant, assignment text)` pair.
fn journal_key(quadrant: &Quadrant, assignment_text: &str) -> u64 {
    let mut material = canonical_quadrant_text(quadrant);
    material.push('\u{0}');
    material.push_str(assignment_text);
    fnv1a64(material.as_bytes())
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    rejected: AtomicU64,
    timeouts: AtomicU64,
    failed: AtomicU64,
}

/// How one plan submission resolved at admission time. `Ready` and
/// `Refused` carry the full answer; `Wait` means a worker owns (or
/// already owned, for coalesced duplicates) the job and the reactor
/// must answer when the completion arrives.
pub(crate) enum PlanOutcome {
    Ready {
        cache_tag: &'static str,
        key: u64,
        output: Arc<JobOutput>,
    },
    Wait {
        cache_tag: &'static str,
        key: u64,
        admitted_depth: usize,
    },
    Refused(ServeError),
}

pub(crate) struct Inner {
    workers: usize,
    queue_capacity: usize,
    default_timeout: Option<Duration>,
    worker_stall: Option<Duration>,
    cache: ResultCache,
    pool: Mutex<PoolState>,
    queue_signal: Condvar,
    pub(crate) shutdown: AtomicBool,
    running: AtomicU32,
    counters: Counters,
    events: Mutex<TraceBuffer>,
    profile: Option<TuneProfile>,
    journals: Mutex<JournalRegistry>,
}

impl Inner {
    pub(crate) fn snapshot(&self) -> StatusSnapshot {
        let (queued, interactive_queued, bulk_queued) = {
            let pool = self.pool.lock().expect("pool poisoned");
            (pool.queued(), pool.interactive.len(), pool.bulk.len())
        };
        let cache = self.cache.stats();
        let c = &self.counters;
        StatusSnapshot {
            workers: u32::try_from(self.workers).unwrap_or(u32::MAX),
            queue_capacity: u32::try_from(self.queue_capacity).unwrap_or(u32::MAX),
            running: self.running.load(Ordering::Relaxed),
            queued: u32::try_from(queued).unwrap_or(u32::MAX),
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            coalesced: c.coalesced.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            disk_hits: cache.disk_hits,
            evictions: cache.evictions,
            interactive_queued: u32::try_from(interactive_queued).unwrap_or(u32::MAX),
            bulk_queued: u32::try_from(bulk_queued).unwrap_or(u32::MAX),
            shutting_down: self.shutdown.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn record_job(
        &self,
        cache: &str,
        outcome: &str,
        class: JobClass,
        queue_depth: usize,
        started: Instant,
    ) {
        self.events
            .lock()
            .expect("event buffer poisoned")
            .record(&Event::ServeJob {
                cache: cache.to_owned(),
                outcome: outcome.to_owned(),
                class: class.as_str().to_owned(),
                queue_depth: u32::try_from(queue_depth).unwrap_or(u32::MAX),
                seconds: started.elapsed().as_secs_f64(),
            });
    }

    /// Records one event into the daemon's trace buffer (the reactor's
    /// hook for replan lifecycle events).
    pub(crate) fn record_event(&self, event: &Event) {
        self.events
            .lock()
            .expect("event buffer poisoned")
            .record(event);
    }

    /// Resolves one plan submission at admission time: cache lookup,
    /// then admission to the job's class queue (or typed rejection).
    /// Never blocks on job execution — `Wait` outcomes are answered by
    /// the reactor when the worker's completion arrives.
    pub(crate) fn plan_disposition(&self, spec: JobSpec, started: Instant) -> PlanOutcome {
        let class = spec.class;
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);

        if self.shutdown.load(Ordering::Relaxed) {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            self.record_job("none", "rejected", class, 0, started);
            return PlanOutcome::Refused(ServeError::new(
                ErrorKind::ShuttingDown,
                "the daemon is draining and accepts no new jobs",
            ));
        }

        let (name, quadrant) = match parse_quadrant(&spec.circuit) {
            Ok(parsed) => parsed,
            Err(e) => {
                self.record_job("none", "error", class, 0, started);
                return PlanOutcome::Refused(ServeError::new(
                    ErrorKind::BadRequest,
                    format!("circuit does not parse: {e}"),
                ));
            }
        };
        if spec.profile && self.profile.is_none() {
            self.record_job("none", "rejected", class, 0, started);
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return PlanOutcome::Refused(ServeError::new(
                ErrorKind::BadRequest,
                "no tuning profile is loaded; start the daemon with --profile",
            ));
        }
        let key = cache_key_with(&spec, &quadrant, self.profile.as_ref());

        match self.cache.lookup(key) {
            Lookup::Hit(output) => {
                self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                self.record_job("hit", "ok", class, 0, started);
                PlanOutcome::Ready {
                    cache_tag: "hit",
                    key,
                    output,
                }
            }
            Lookup::DiskHit(output) => {
                // Disk hits are tallied in the cache stats, not in
                // `cache_hits` (which stays memory-tier-only so the
                // pre-v2 counter keeps its meaning).
                self.record_job("disk", "ok", class, 0, started);
                PlanOutcome::Ready {
                    cache_tag: "disk",
                    key,
                    output,
                }
            }
            Lookup::Coalesced(_) => {
                // The reactor waits on the completion queue, not on the
                // cache waiter, so the waiter is dropped here.
                self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                PlanOutcome::Wait {
                    cache_tag: "coalesced",
                    key,
                    admitted_depth: 0,
                }
            }
            Lookup::Miss => {
                // This call owns the pending entry: admit the job or
                // fulfil the entry with the rejection so coalesced
                // duplicates are answered too.
                let timeout = spec
                    .timeout_ms
                    .map(Duration::from_millis)
                    .or(self.default_timeout);
                let mut admitted_depth = 0usize;
                let rejection = {
                    let mut pool = self.pool.lock().expect("pool poisoned");
                    let draining = pool.draining;
                    let queue = match class {
                        JobClass::Interactive => &mut pool.interactive,
                        JobClass::Bulk => &mut pool.bulk,
                    };
                    if draining {
                        Some(ServeError::new(
                            ErrorKind::ShuttingDown,
                            "the daemon is draining and accepts no new jobs",
                        ))
                    } else if queue.len() >= self.queue_capacity {
                        Some(ServeError::new(
                            ErrorKind::QueueFull,
                            format!(
                                "the {class} job queue is at capacity ({}); retry later",
                                self.queue_capacity
                            ),
                        ))
                    } else {
                        admitted_depth = queue.len();
                        queue.push_back(QueuedJob {
                            spec,
                            name,
                            quadrant,
                            key,
                            deadline: timeout.map(|t| started + t),
                        });
                        None
                    }
                };
                if let Some(error) = rejection {
                    self.cache.fulfil(key, Err(error.clone()));
                    self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    self.record_job("none", "rejected", class, self.queue_capacity, started);
                    return PlanOutcome::Refused(error);
                }
                self.queue_signal.notify_one();
                PlanOutcome::Wait {
                    cache_tag: "miss",
                    key,
                    admitted_depth,
                }
            }
        }
    }

    /// Flips the daemon into drain mode (idempotent; the second caller
    /// gets a typed `shutting_down` error).
    pub(crate) fn handle_shutdown(&self) -> Response {
        let already = {
            let mut pool = self.pool.lock().expect("pool poisoned");
            std::mem::replace(&mut pool.draining, true)
        };
        self.shutdown.store(true, Ordering::Relaxed);
        if already {
            Response::Error(ServeError::new(
                ErrorKind::ShuttingDown,
                "the daemon is already draining",
            ))
        } else {
            self.queue_signal.notify_all();
            Response::Shutdown
        }
    }

    /// True once both queues are empty and no worker holds a job. Used
    /// by the reactor's shutdown exit check.
    pub(crate) fn pool_drained(&self) -> bool {
        let queued = self.pool.lock().expect("pool poisoned").queued();
        queued == 0 && self.running.load(Ordering::Acquire) == 0
    }

    fn worker_loop(&self, completions: &CompletionQueue) {
        loop {
            let job = {
                let mut pool = self.pool.lock().expect("pool poisoned");
                loop {
                    if let Some(job) = pool.dequeue() {
                        break job;
                    }
                    if pool.draining {
                        return;
                    }
                    let (p, _) = self
                        .queue_signal
                        .wait_timeout(pool, POLL_INTERVAL)
                        .expect("pool poisoned");
                    pool = p;
                }
            };
            self.running.fetch_add(1, Ordering::Relaxed);
            if let Some(stall) = self.worker_stall {
                std::thread::sleep(stall);
            }
            let cancel = match job.deadline {
                Some(deadline) => CancelToken::with_deadline(deadline),
                None => CancelToken::new(),
            };
            // A replan against a plan whose frozen journal is still
            // registered warm-starts from the journal; otherwise (and
            // for every cold job) the hint is `None`.
            let hint = job.spec.prev.as_deref().and_then(|prev| {
                self.journals
                    .lock()
                    .expect("journal registry poisoned")
                    .lookup(journal_key(&job.quadrant, prev))
            });
            let result = execute_job_full(
                &job.spec,
                &job.name,
                &job.quadrant,
                &cancel,
                self.profile.as_ref(),
                hint.as_ref(),
            )
            .map(|run| {
                if let Some(source) = run.warm_source {
                    self.record_event(&Event::QuadrantWarmed {
                        name: job.name.clone(),
                        source: source.to_owned(),
                    });
                }
                if let Some(frozen) = run.frozen {
                    self.journals
                        .lock()
                        .expect("journal registry poisoned")
                        .remember(journal_key(&job.quadrant, &run.output.assignment), frozen);
                }
                run.output
            });
            match &result {
                Ok(_) => {
                    self.counters.completed.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if e.kind == ErrorKind::Timeout => {
                    self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    self.counters.failed.fetch_add(1, Ordering::Relaxed);
                }
            }
            let shared = result.map(Arc::new);
            // Fulfil before pushing: by the time the reactor sees the
            // completion, coalesced lookups already resolve as hits.
            self.cache.fulfil(job.key, shared.clone());
            completions.push(job.key, shared);
            self.running.fetch_sub(1, Ordering::Release);
        }
    }
}

/// A bound, not-yet-running daemon. [`Server::run`] consumes it and
/// blocks until a `shutdown` request drains the pool.
pub struct Server {
    listener: TcpListener,
    inner: Arc<Inner>,
}

impl Server {
    /// Binds the listener, opens the result cache (including the disk
    /// tier when `cache_dir` is set), and prepares the pool (no threads
    /// start until [`Server::run`]). Use port `0` for an ephemeral port
    /// and read it back from [`Server::local_addr`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors (address in use, permission, ...) and
    /// cache-directory errors (unreadable, not creatable, ...).
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
        } else {
            config.workers
        };
        let cache = ResultCache::with_config(&CacheConfig {
            mem_limit_bytes: config.cache_mem_limit,
            disk_dir: config.cache_dir.clone(),
        })?;
        let inner = Arc::new(Inner {
            workers,
            queue_capacity: config.queue_capacity.max(1),
            default_timeout: config.default_timeout,
            worker_stall: config.worker_stall,
            cache,
            pool: Mutex::new(PoolState::default()),
            queue_signal: Condvar::new(),
            shutdown: AtomicBool::new(false),
            running: AtomicU32::new(0),
            counters: Counters::default(),
            events: Mutex::new(TraceBuffer::new()),
            profile: config.profile,
            journals: Mutex::new(JournalRegistry::default()),
        });
        Ok(Self { listener, inner })
    }

    /// The bound address (the actual port when bound to port `0`).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the daemon until a client sends `shutdown`: the calling
    /// thread becomes the reactor, workers execute jobs, and the whole
    /// process is `workers + 1` threads no matter how many clients
    /// connect. On shutdown the queues drain, every thread joins, and
    /// the lifetime summary is returned.
    ///
    /// # Errors
    ///
    /// Propagates listener/poll failures; per-connection errors only
    /// drop that connection and never abort the daemon.
    pub fn run(self) -> std::io::Result<ServeSummary> {
        self.listener.set_nonblocking(true)?;
        // The waker: a loopback pair whose read end sits in the poll
        // set, so a worker finishing a job interrupts the poll instead
        // of waiting out the tick.
        let (waker_rx, waker_tx) = waker_pair()?;
        let completions = Arc::new(CompletionQueue::new(waker_tx));
        let mut pool = Vec::with_capacity(self.inner.workers);
        for index in 0..self.inner.workers {
            let inner = Arc::clone(&self.inner);
            let completions = Arc::clone(&completions);
            pool.push(
                std::thread::Builder::new()
                    .name(format!("copack-serve-worker-{index}"))
                    .spawn(move || inner.worker_loop(&completions))?,
            );
        }
        let reactor = Reactor::new(
            Arc::clone(&self.inner),
            Arc::clone(&completions),
            self.listener,
            waker_rx,
        );
        let run_result = reactor.run();
        // Reactor exit implies drain mode; make sure parked workers see
        // it even if the poll error path got here without a shutdown
        // request.
        self.inner.pool.lock().expect("pool poisoned").draining = true;
        self.inner.shutdown.store(true, Ordering::Relaxed);
        self.inner.queue_signal.notify_all();
        for worker in pool {
            let _ = worker.join();
        }
        run_result?;
        let status = self.inner.snapshot();
        let cache = self.inner.cache.stats();
        let mut events: Vec<Event> = self
            .inner
            .events
            .lock()
            .expect("event buffer poisoned")
            .events()
            .to_vec();
        events.push(Event::ServeCache {
            mem_hits: cache.mem_hits,
            disk_hits: cache.disk_hits,
            misses: cache.misses,
            evictions: cache.evictions,
            quarantined: cache.quarantined,
            disk_entries: cache.disk_entries,
        });
        events.push(Event::ServePool {
            workers: status.workers,
            queue_capacity: status.queue_capacity,
            submitted: status.submitted,
            completed: status.completed,
            cache_hits: status.cache_hits,
            coalesced: status.coalesced,
            rejected: status.rejected,
            timeouts: status.timeouts,
        });
        Ok(ServeSummary {
            status,
            cache,
            events,
        })
    }
}

/// Builds the loopback waker pair: both ends nonblocking, write end for
/// workers, read end for the reactor's poll set. A TCP pair is the
/// std-only stand-in for a self-pipe.
fn waker_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let rendezvous = TcpListener::bind(("127.0.0.1", 0))?;
    let tx = TcpStream::connect(rendezvous.local_addr()?)?;
    let (rx, _) = rendezvous.accept()?;
    rx.set_nonblocking(true)?;
    tx.set_nonblocking(true)?;
    let _ = tx.set_nodelay(true);
    Ok((rx, tx))
}
