//! The resident daemon: listener, connection handlers, and the bounded
//! worker pool.
//!
//! Threading model:
//!
//! * one **accept loop** (the caller's thread, inside [`Server::run`]),
//!   polling a non-blocking listener so it can notice shutdown;
//! * one **handler thread per connection**, decoding frames and writing
//!   responses; handlers block only on their own job's cache entry;
//! * a fixed pool of **worker threads** popping jobs from one bounded
//!   queue. The queue never exceeds `queue_capacity`: a submission that
//!   finds it full is rejected with a typed `queue_full` error instead
//!   of queueing (explicit backpressure, no unbounded buffering).
//!
//! Timeouts are wall-clock from *admission*: a job that spends its
//! whole budget waiting in the queue is cancelled the moment a worker
//! picks it up, and the cooperative token aborts the anneal loop
//! mid-run otherwise. After a `shutdown` request the daemon stops
//! accepting connections, lets workers drain the queue, and gives open
//! connections a short grace window in which further requests are
//! answered with typed `shutting_down` errors rather than a slammed
//! socket.

use copack_core::CancelToken;
use copack_geom::Quadrant;
use copack_io::parse_quadrant;
use copack_obs::{Event, Recorder as _, TraceBuffer};
use std::collections::VecDeque;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::cache::{Lookup, ResultCache};
use crate::error::{ErrorKind, ServeError};
use crate::job::{cache_key, execute_job, JobSpec};
use crate::protocol::{
    decode_request, encode_response, Frame, LineReader, PlanResponse, Request, Response,
    StatusSnapshot,
};

/// How often blocking reads and the accept loop wake to poll state.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// How long open connections keep being served typed `shutting_down`
/// errors after a shutdown request before the daemon closes them.
const SHUTDOWN_GRACE: Duration = Duration::from_millis(750);

/// Pool and policy knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads; `0` means one per available CPU.
    pub workers: usize,
    /// Bounded queue capacity — the backpressure threshold.
    pub queue_capacity: usize,
    /// Wall-clock budget applied to jobs that do not set their own
    /// `timeout_ms`; `None` means no default budget.
    pub default_timeout: Option<Duration>,
    /// Test hook: workers sleep this long before executing each job, so
    /// integration tests can deterministically fill the queue and
    /// observe coalescing. `None` (the default) adds no delay.
    pub worker_stall: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_capacity: 64,
            default_timeout: Some(Duration::from_secs(30)),
            worker_stall: None,
        }
    }
}

/// What the daemon did over its lifetime, returned by [`Server::run`].
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Final counter values.
    pub status: StatusSnapshot,
    /// Every recorded [`Event::ServeJob`], closed by one
    /// [`Event::ServePool`].
    pub events: Vec<Event>,
}

struct QueuedJob {
    spec: JobSpec,
    name: String,
    quadrant: Quadrant,
    key: u64,
    deadline: Option<Instant>,
}

/// Queue plus drain flag under ONE mutex: admission, worker exit, and
/// the drain decision all serialize here, so a job can never slip into
/// the queue after the last worker has decided to exit.
#[derive(Default)]
struct PoolState {
    queue: VecDeque<QueuedJob>,
    draining: bool,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    rejected: AtomicU64,
    timeouts: AtomicU64,
    failed: AtomicU64,
}

struct Inner {
    workers: usize,
    queue_capacity: usize,
    default_timeout: Option<Duration>,
    worker_stall: Option<Duration>,
    cache: ResultCache,
    pool: Mutex<PoolState>,
    queue_signal: Condvar,
    shutdown: AtomicBool,
    running: AtomicU32,
    counters: Counters,
    events: Mutex<TraceBuffer>,
}

impl Inner {
    fn snapshot(&self) -> StatusSnapshot {
        let queued = self.pool.lock().expect("pool poisoned").queue.len();
        let c = &self.counters;
        StatusSnapshot {
            workers: u32::try_from(self.workers).unwrap_or(u32::MAX),
            queue_capacity: u32::try_from(self.queue_capacity).unwrap_or(u32::MAX),
            running: self.running.load(Ordering::Relaxed),
            queued: u32::try_from(queued).unwrap_or(u32::MAX),
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            coalesced: c.coalesced.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            shutting_down: self.shutdown.load(Ordering::Relaxed),
        }
    }

    fn record_job(&self, cache: &str, outcome: &str, queue_depth: usize, started: Instant) {
        self.events
            .lock()
            .expect("event buffer poisoned")
            .record(&Event::ServeJob {
                cache: cache.to_owned(),
                outcome: outcome.to_owned(),
                queue_depth: u32::try_from(queue_depth).unwrap_or(u32::MAX),
                seconds: started.elapsed().as_secs_f64(),
            });
    }

    /// Serves one plan request end to end: cache lookup, admission (or
    /// typed rejection), then blocking on the result.
    fn serve_plan(&self, spec: JobSpec) -> Response {
        let started = Instant::now();
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);

        if self.shutdown.load(Ordering::Relaxed) {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            self.record_job("none", "rejected", 0, started);
            return Response::Error(ServeError::new(
                ErrorKind::ShuttingDown,
                "the daemon is draining and accepts no new jobs",
            ));
        }

        let (name, quadrant) = match parse_quadrant(&spec.circuit) {
            Ok(parsed) => parsed,
            Err(e) => {
                self.record_job("none", "error", 0, started);
                return Response::Error(ServeError::new(
                    ErrorKind::BadRequest,
                    format!("circuit does not parse: {e}"),
                ));
            }
        };
        let key = cache_key(&spec, &quadrant);

        // Jobs already waiting when this one was admitted (misses only).
        let mut admitted_depth = 0usize;
        let disposition = match self.cache.lookup(key) {
            Lookup::Hit(output) => {
                self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                self.record_job("hit", "ok", 0, started);
                return Response::Plan(PlanResponse {
                    cache: "hit".to_owned(),
                    key,
                    name: output.name.clone(),
                    report: output.report.clone(),
                    assignment: output.assignment.clone(),
                    seconds: started.elapsed().as_secs_f64(),
                });
            }
            Lookup::Coalesced(_) => {
                self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                "coalesced"
            }
            Lookup::Miss => {
                // This thread owns the pending entry: admit the job or
                // fulfil the entry with the rejection so nobody blocks.
                let timeout = spec
                    .timeout_ms
                    .map(Duration::from_millis)
                    .or(self.default_timeout);
                let rejection = {
                    let mut pool = self.pool.lock().expect("pool poisoned");
                    if pool.draining {
                        Some(ServeError::new(
                            ErrorKind::ShuttingDown,
                            "the daemon is draining and accepts no new jobs",
                        ))
                    } else if pool.queue.len() >= self.queue_capacity {
                        Some(ServeError::new(
                            ErrorKind::QueueFull,
                            format!(
                                "the job queue is at capacity ({}); retry later",
                                self.queue_capacity
                            ),
                        ))
                    } else {
                        admitted_depth = pool.queue.len();
                        pool.queue.push_back(QueuedJob {
                            spec,
                            name,
                            quadrant,
                            key,
                            deadline: timeout.map(|t| started + t),
                        });
                        None
                    }
                };
                if let Some(error) = rejection {
                    self.cache.fulfil(key, Err(error.clone()));
                    self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    self.record_job("none", "rejected", self.queue_capacity, started);
                    return Response::Error(error);
                }
                self.queue_signal.notify_one();
                "miss"
            }
        };

        let Some(waiter) = self.cache.waiter(key) else {
            // Only reachable if the entry failed and was removed between
            // our lookup and now; report it as the job failing.
            self.counters.failed.fetch_add(1, Ordering::Relaxed);
            self.record_job(disposition, "error", admitted_depth, started);
            return Response::Error(ServeError::new(
                ErrorKind::JobFailed,
                "the in-flight duplicate failed; retry",
            ));
        };
        match waiter.wait() {
            Ok(output) => {
                self.record_job(disposition, "ok", admitted_depth, started);
                Response::Plan(PlanResponse {
                    cache: disposition.to_owned(),
                    key,
                    name: output.name.clone(),
                    report: output.report.clone(),
                    assignment: output.assignment.clone(),
                    seconds: started.elapsed().as_secs_f64(),
                })
            }
            Err(error) => {
                let outcome = if error.kind == ErrorKind::Timeout {
                    "timeout"
                } else {
                    "error"
                };
                self.record_job(disposition, outcome, admitted_depth, started);
                Response::Error(error)
            }
        }
    }

    fn serve_request(&self, request: Request) -> Response {
        match request {
            Request::Plan(spec) => self.serve_plan(spec),
            Request::Status => Response::Status(self.snapshot()),
            Request::Shutdown => {
                let already = {
                    let mut pool = self.pool.lock().expect("pool poisoned");
                    std::mem::replace(&mut pool.draining, true)
                };
                self.shutdown.store(true, Ordering::Relaxed);
                if already {
                    Response::Error(ServeError::new(
                        ErrorKind::ShuttingDown,
                        "the daemon is already draining",
                    ))
                } else {
                    self.queue_signal.notify_all();
                    Response::Shutdown
                }
            }
        }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut pool = self.pool.lock().expect("pool poisoned");
                loop {
                    if let Some(job) = pool.queue.pop_front() {
                        break job;
                    }
                    if pool.draining {
                        return;
                    }
                    let (p, _) = self
                        .queue_signal
                        .wait_timeout(pool, POLL_INTERVAL)
                        .expect("pool poisoned");
                    pool = p;
                }
            };
            self.running.fetch_add(1, Ordering::Relaxed);
            if let Some(stall) = self.worker_stall {
                std::thread::sleep(stall);
            }
            let cancel = match job.deadline {
                Some(deadline) => CancelToken::with_deadline(deadline),
                None => CancelToken::new(),
            };
            let result = execute_job(&job.spec, &job.name, &job.quadrant, &cancel);
            match &result {
                Ok(_) => {
                    self.counters.completed.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if e.kind == ErrorKind::Timeout => {
                    self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    self.counters.failed.fetch_add(1, Ordering::Relaxed);
                }
            }
            self.cache.fulfil(job.key, result.map(Arc::new));
            self.running.fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn handle_connection(&self, stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut reader = LineReader::new(read_half);
        let mut writer = stream;
        let mut draining_since: Option<Instant> = None;
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                let since = *draining_since.get_or_insert_with(Instant::now);
                if since.elapsed() > SHUTDOWN_GRACE {
                    return;
                }
            }
            let response = match reader.next_frame() {
                Ok(Frame::Idle) => continue,
                Ok(Frame::Eof) => return,
                Ok(Frame::Line(line)) => match decode_request(&line) {
                    Ok(request) => self.serve_request(request),
                    Err(error) => Response::Error(error),
                },
                // A peer that vanished mid-frame has nobody to answer.
                Err(error) if error.kind == ErrorKind::Io => return,
                Err(error) => Response::Error(error),
            };
            let mut frame = encode_response(&response);
            frame.push('\n');
            if writer.write_all(frame.as_bytes()).is_err() {
                return;
            }
        }
    }
}

/// A bound, not-yet-running daemon. [`Server::run`] consumes it and
/// blocks until a `shutdown` request drains the pool.
pub struct Server {
    listener: TcpListener,
    inner: Arc<Inner>,
}

impl Server {
    /// Binds the listener and prepares the pool (no threads start until
    /// [`Server::run`]). Use port `0` for an ephemeral port and read it
    /// back from [`Server::local_addr`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors (address in use, permission, ...).
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
        } else {
            config.workers
        };
        let inner = Arc::new(Inner {
            workers,
            queue_capacity: config.queue_capacity.max(1),
            default_timeout: config.default_timeout,
            worker_stall: config.worker_stall,
            cache: ResultCache::new(),
            pool: Mutex::new(PoolState::default()),
            queue_signal: Condvar::new(),
            shutdown: AtomicBool::new(false),
            running: AtomicU32::new(0),
            counters: Counters::default(),
            events: Mutex::new(TraceBuffer::new()),
        });
        Ok(Self { listener, inner })
    }

    /// The bound address (the actual port when bound to port `0`).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the daemon until a client sends `shutdown`: accepts
    /// connections, serves requests, then drains the queue, joins every
    /// thread, and returns the lifetime summary.
    ///
    /// # Errors
    ///
    /// Propagates listener failures; per-connection errors are handled
    /// in their handler threads and never abort the daemon.
    pub fn run(self) -> std::io::Result<ServeSummary> {
        self.listener.set_nonblocking(true)?;
        let mut pool = Vec::with_capacity(self.inner.workers);
        for index in 0..self.inner.workers {
            let inner = Arc::clone(&self.inner);
            pool.push(
                std::thread::Builder::new()
                    .name(format!("copack-serve-worker-{index}"))
                    .spawn(move || inner.worker_loop())?,
            );
        }
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.inner.shutdown.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let inner = Arc::clone(&self.inner);
                    handlers.push(
                        std::thread::Builder::new()
                            .name("copack-serve-conn".to_owned())
                            .spawn(move || inner.handle_connection(stream))?,
                    );
                    handlers.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Drain: workers finish the queue (their loop only exits on an
        // empty queue + shutdown), handlers get the grace window.
        self.inner.queue_signal.notify_all();
        for worker in pool {
            let _ = worker.join();
        }
        for handler in handlers {
            let _ = handler.join();
        }
        let status = self.inner.snapshot();
        let mut events: Vec<Event> = self
            .inner
            .events
            .lock()
            .expect("event buffer poisoned")
            .events()
            .to_vec();
        events.push(Event::ServePool {
            workers: status.workers,
            queue_capacity: status.queue_capacity,
            submitted: status.submitted,
            completed: status.completed,
            cache_hits: status.cache_hits,
            coalesced: status.coalesced,
            rejected: status.rejected,
            timeouts: status.timeouts,
        });
        Ok(ServeSummary { status, events })
    }
}
