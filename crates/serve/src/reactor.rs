//! The event-driven connection layer: one readiness-polled reactor
//! thread over nonblocking sockets.
//!
//! Pre-v2 the daemon spawned one blocking handler thread per
//! connection, so a thousand idle clients cost a thousand parked
//! threads. The reactor replaces all of them with a single loop (run
//! on the caller's thread inside `Server::run`) that `poll(2)`s the
//! listener, a waker, and every connection:
//!
//! * **reads** drain complete frames through the shared [`LineReader`]
//!   (nonblocking reads surface as `Frame::Idle`, exactly like the old
//!   read timeouts, so the framer is reused unchanged);
//! * **requests** that hit the cache or are refused are answered
//!   inline; requests that need a worker are *registered* — the reactor
//!   never blocks on a job;
//! * **workers** fulfil the result cache as before and push the key
//!   onto a completion queue, then poke the waker (a loopback TCP pair,
//!   the std-only self-pipe), which wakes the poll so responses go out
//!   immediately;
//! * **writes** are buffered per connection and flushed on `POLLOUT`,
//!   so a slow reader can never wedge the loop (a reader that lets its
//!   buffer grow past [`OUT_BUFFER_LIMIT`] is disconnected instead).
//!
//! Thread accounting: the whole daemon is `workers + 1` threads (the
//! reactor) regardless of connection count — the property the idle
//! -connection soak test pins.

use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd as _;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use copack_obs::Event;
use polling::{poll, PollFd, POLLIN, POLLOUT};

use crate::error::{ErrorKind, ServeError};
use crate::job::{JobClass, JobOutput, JobSpec};
use crate::protocol::{
    decode_request, encode_response, BatchSummary, Frame, LineReader, PlanResponse, Request,
    Response,
};
use crate::server::{Inner, PlanOutcome, SHUTDOWN_GRACE};

/// Poll timeout: the reactor's housekeeping tick (shutdown checks,
/// grace-window accounting). All request/response latency is readiness
/// -driven, not tick-driven.
const POLL_TICK: Duration = Duration::from_millis(25);

/// A connection whose unflushed response bytes exceed this is dropped:
/// it is either not reading or maliciously slow, and the reactor must
/// not buffer for it without bound.
const OUT_BUFFER_LIMIT: usize = 64 << 20;

/// One finished job: its cache key and the shared result.
pub(crate) type Completion = (u64, Result<Arc<JobOutput>, ServeError>);

/// Completed jobs travelling from workers back to the reactor.
pub(crate) struct CompletionQueue {
    done: Mutex<Vec<Completion>>,
    /// Write end of the waker pair. Workers poke one byte after every
    /// push; `WouldBlock` is fine (the pipe being full already
    /// guarantees a pending wake).
    waker_tx: TcpStream,
}

impl CompletionQueue {
    pub(crate) fn new(waker_tx: TcpStream) -> Self {
        Self {
            done: Mutex::new(Vec::new()),
            waker_tx,
        }
    }

    /// Hands a fulfilled job's result to the reactor and wakes it.
    pub(crate) fn push(&self, key: u64, result: Result<Arc<JobOutput>, ServeError>) {
        self.done
            .lock()
            .expect("completion queue poisoned")
            .push((key, result));
        let _ = (&self.waker_tx).write(&[1]);
    }

    fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.done.lock().expect("completion queue poisoned"))
    }

    fn is_empty(&self) -> bool {
        self.done
            .lock()
            .expect("completion queue poisoned")
            .is_empty()
    }
}

/// Where a finished job's response goes.
#[derive(Debug, Clone, Copy)]
enum Target {
    /// A plain `plan` request: one response frame.
    Single,
    /// One item of a streamed batch.
    Batch { id: u64, seq: u32 },
}

/// One request waiting on a worker-executed job.
struct PendingWaiter {
    conn: u64,
    target: Target,
    started: Instant,
    cache_tag: &'static str,
    class: JobClass,
    depth: usize,
}

/// Progress of one streamed batch.
struct BatchState {
    conn: u64,
    jobs: u32,
    done: u32,
    ok: u32,
    failed: u32,
}

struct Conn {
    reader: LineReader<TcpStream>,
    writer: TcpStream,
    out: Vec<u8>,
    /// Read side finished (EOF or fatal error); the connection closes
    /// once the out buffer drains.
    read_closed: bool,
    /// Write side failed; the connection is dropped at cleanup.
    dead: bool,
}

impl Conn {
    fn queue_response(&mut self, response: &Response) {
        if self.dead {
            return;
        }
        let mut frame = encode_response(response);
        frame.push('\n');
        self.out.extend_from_slice(frame.as_bytes());
        if self.out.len() > OUT_BUFFER_LIMIT {
            self.dead = true;
        }
    }

    /// Writes as much of the out buffer as the socket accepts.
    fn flush(&mut self) {
        let mut written = 0;
        while written < self.out.len() {
            match self.writer.write(&self.out[written..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => written += n,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    break
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        self.out.drain(..written);
    }

    fn finished(&self) -> bool {
        self.dead || (self.read_closed && self.out.is_empty())
    }
}

pub(crate) struct Reactor {
    inner: Arc<Inner>,
    completions: Arc<CompletionQueue>,
    listener: TcpListener,
    waker_rx: TcpStream,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    pending: HashMap<u64, Vec<PendingWaiter>>,
    batches: HashMap<u64, BatchState>,
    next_batch: u64,
}

impl Reactor {
    pub(crate) fn new(
        inner: Arc<Inner>,
        completions: Arc<CompletionQueue>,
        listener: TcpListener,
        waker_rx: TcpStream,
    ) -> Self {
        Self {
            inner,
            completions,
            listener,
            waker_rx,
            conns: HashMap::new(),
            next_conn: 0,
            pending: HashMap::new(),
            batches: HashMap::new(),
            next_batch: 0,
        }
    }

    /// The event loop. Returns once the daemon has shut down: pool
    /// drained, every admitted job answered, and connections either
    /// closed by their peers or released at the end of the grace
    /// window.
    pub(crate) fn run(mut self) -> std::io::Result<()> {
        let mut grace_started: Option<Instant> = None;
        loop {
            let shutdown = self.inner.shutdown.load(Ordering::Relaxed);
            if shutdown {
                let since = *grace_started.get_or_insert_with(Instant::now);
                let drained = self.inner.pool_drained()
                    && self.pending.is_empty()
                    && self.completions.is_empty();
                if drained && (self.conns.is_empty() || since.elapsed() > SHUTDOWN_GRACE) {
                    // Best-effort final flush before dropping the
                    // stragglers (their sockets close on drop).
                    for conn in self.conns.values_mut() {
                        conn.flush();
                    }
                    return Ok(());
                }
            }

            // Assemble this tick's poll set: waker, listener (while
            // accepting), then every live connection.
            let mut fds = Vec::with_capacity(2 + self.conns.len());
            fds.push(PollFd::new(self.waker_rx.as_raw_fd(), POLLIN));
            let listener_slot = if shutdown {
                None
            } else {
                fds.push(PollFd::new(self.listener.as_raw_fd(), POLLIN));
                Some(1)
            };
            let conn_base = fds.len();
            let conn_ids: Vec<u64> = self.conns.keys().copied().collect();
            for id in &conn_ids {
                let conn = &self.conns[id];
                let mut events = POLLIN;
                if !conn.out.is_empty() {
                    events |= POLLOUT;
                }
                fds.push(PollFd::new(conn.writer.as_raw_fd(), events));
            }

            poll(&mut fds, POLL_TICK)?;

            if fds[0].readable() {
                self.drain_waker();
            }
            // Completions are drained every tick regardless of the
            // waker: the check is one uncontended lock.
            self.deliver_completions();

            if let Some(slot) = listener_slot {
                if fds[slot].readable() {
                    self.accept_ready()?;
                }
            }

            for (index, id) in conn_ids.iter().enumerate() {
                let fd = fds[conn_base + index];
                if fd.readable() {
                    self.service_read(*id);
                }
                if fd.writable() {
                    if let Some(conn) = self.conns.get_mut(id) {
                        conn.flush();
                    }
                }
            }

            self.sweep_finished();
        }
    }

    fn drain_waker(&mut self) {
        let mut sink = [0u8; 256];
        while matches!((&self.waker_rx).read(&mut sink), Ok(n) if n > 0) {}
    }

    fn accept_ready(&mut self) -> std::io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(true)?;
                    let Ok(read_half) = stream.try_clone() else {
                        continue;
                    };
                    let id = self.next_conn;
                    self.next_conn += 1;
                    self.conns.insert(
                        id,
                        Conn {
                            reader: LineReader::new(read_half),
                            writer: stream,
                            out: Vec::new(),
                            read_closed: false,
                            dead: false,
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Drains every complete frame the connection has ready.
    fn service_read(&mut self, id: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            match conn.reader.next_frame() {
                Ok(Frame::Idle) => return,
                Ok(Frame::Eof) => {
                    conn.read_closed = true;
                    return;
                }
                Ok(Frame::Line(line)) => match decode_request(&line) {
                    Ok(request) => self.handle_request(id, request),
                    Err(error) => self.queue_to(id, &Response::Error(error)),
                },
                // A peer that vanished mid-frame has nobody to answer.
                Err(error) if error.kind == ErrorKind::Io => {
                    conn.read_closed = true;
                    return;
                }
                Err(error) => self.queue_to(id, &Response::Error(error)),
            }
        }
    }

    fn queue_to(&mut self, id: u64, response: &Response) {
        if let Some(conn) = self.conns.get_mut(&id) {
            conn.queue_response(response);
            conn.flush();
        }
    }

    fn handle_request(&mut self, id: u64, request: Request) {
        match request {
            Request::Plan(spec) => {
                let class = spec.class;
                let started = Instant::now();
                match self.inner.plan_disposition(spec, started) {
                    PlanOutcome::Ready {
                        cache_tag,
                        key,
                        output,
                    } => {
                        let response =
                            Response::Plan(plan_response(cache_tag, key, &output, started));
                        self.queue_to(id, &response);
                    }
                    PlanOutcome::Refused(error) => {
                        self.queue_to(id, &Response::Error(error));
                    }
                    PlanOutcome::Wait {
                        cache_tag,
                        key,
                        admitted_depth,
                    } => {
                        self.pending.entry(key).or_default().push(PendingWaiter {
                            conn: id,
                            target: Target::Single,
                            started,
                            cache_tag,
                            class,
                            depth: admitted_depth,
                        });
                    }
                }
            }
            Request::Batch { class: _, jobs } => self.handle_jobs(id, jobs, false),
            Request::Replan { class: _, jobs } => self.handle_jobs(id, jobs, true),
            Request::Status => {
                let response = Response::Status(self.inner.snapshot());
                self.queue_to(id, &response);
            }
            Request::Shutdown => {
                let response = self.inner.handle_shutdown();
                self.queue_to(id, &response);
            }
        }
    }

    /// Streams a `batch` or `replan` job array. A replan additionally
    /// classifies each quadrant at admission: specs answered straight
    /// from the cache are *reused* (their quadrant was untouched by the
    /// edit — same key, same result), everything else is dirty and runs
    /// a worker. The classification is recorded as one
    /// [`Event::ReplanStart`] plus one [`Event::QuadrantReused`] per
    /// reused quadrant, which `--metrics` folds into the reuse rate.
    fn handle_jobs(&mut self, id: u64, jobs: Vec<JobSpec>, replan: bool) {
        let batch_id = self.next_batch;
        self.next_batch += 1;
        let jobs_total = u32::try_from(jobs.len()).unwrap_or(u32::MAX);
        self.batches.insert(
            batch_id,
            BatchState {
                conn: id,
                jobs: jobs_total,
                done: 0,
                ok: 0,
                failed: 0,
            },
        );
        let mut reused: Vec<(String, &'static str)> = Vec::new();
        for (index, spec) in jobs.into_iter().enumerate() {
            let seq = u32::try_from(index).unwrap_or(u32::MAX);
            let class = spec.class;
            let started = Instant::now();
            match self.inner.plan_disposition(spec, started) {
                PlanOutcome::Ready {
                    cache_tag,
                    key,
                    output,
                } => {
                    if replan {
                        let tier = if cache_tag == "disk" { "disk" } else { "mem" };
                        reused.push((output.name.clone(), tier));
                    }
                    let result = Ok(plan_response(cache_tag, key, &output, started));
                    self.finish_batch_item(batch_id, seq, result);
                }
                PlanOutcome::Refused(error) => {
                    self.finish_batch_item(batch_id, seq, Err(error));
                }
                PlanOutcome::Wait {
                    cache_tag,
                    key,
                    admitted_depth,
                } => {
                    self.pending.entry(key).or_default().push(PendingWaiter {
                        conn: id,
                        target: Target::Batch { id: batch_id, seq },
                        started,
                        cache_tag,
                        class,
                        depth: admitted_depth,
                    });
                }
            }
        }
        if replan {
            let dirty = jobs_total - u32::try_from(reused.len()).unwrap_or(0);
            self.inner.record_event(&Event::ReplanStart {
                quadrants: jobs_total,
                dirty,
            });
            for (name, tier) in reused {
                self.inner.record_event(&Event::QuadrantReused {
                    name,
                    tier: tier.to_owned(),
                });
            }
        }
    }

    /// Streams one finished batch item, then the summary frame once the
    /// batch is complete.
    fn finish_batch_item(
        &mut self,
        batch_id: u64,
        seq: u32,
        result: Result<PlanResponse, ServeError>,
    ) {
        let Some(batch) = self.batches.get_mut(&batch_id) else {
            return;
        };
        batch.done += 1;
        if result.is_ok() {
            batch.ok += 1;
        } else {
            batch.failed += 1;
        }
        let conn = batch.conn;
        let finished = batch.done >= batch.jobs;
        let summary = BatchSummary {
            jobs: batch.jobs,
            ok: batch.ok,
            failed: batch.failed,
        };
        self.queue_to(conn, &Response::BatchItem { seq, result });
        if finished {
            self.queue_to(conn, &Response::BatchDone(summary));
            self.batches.remove(&batch_id);
        }
    }

    fn deliver_completions(&mut self) {
        for (key, result) in self.completions.drain() {
            let Some(waiters) = self.pending.remove(&key) else {
                continue;
            };
            for waiter in waiters {
                // The job's lifecycle event is recorded per *request*
                // (matching the pre-v2 one-handler-per-request model),
                // whether or not the peer is still connected.
                let outcome = match &result {
                    Ok(_) => "ok",
                    Err(e) if e.kind == ErrorKind::Timeout => "timeout",
                    Err(_) => "error",
                };
                self.inner.record_job(
                    waiter.cache_tag,
                    outcome,
                    waiter.class,
                    waiter.depth,
                    waiter.started,
                );
                let item_result = match &result {
                    Ok(output) => Ok(plan_response(waiter.cache_tag, key, output, waiter.started)),
                    Err(error) => Err(error.clone()),
                };
                match waiter.target {
                    Target::Single => {
                        let response = match item_result {
                            Ok(plan) => Response::Plan(plan),
                            Err(error) => Response::Error(error),
                        };
                        self.queue_to(waiter.conn, &response);
                    }
                    Target::Batch { id, seq } => {
                        self.finish_batch_item(id, seq, item_result);
                    }
                }
            }
        }
    }

    /// Drops finished connections and any batch state stranded on them.
    fn sweep_finished(&mut self) {
        let mut gone: Vec<u64> = Vec::new();
        self.conns.retain(|id, conn| {
            if conn.finished() {
                gone.push(*id);
                false
            } else {
                true
            }
        });
        if !gone.is_empty() {
            // Batches whose connection died with items still pending
            // stay registered (their events must be recorded at
            // completion); ones with nothing in flight are dropped now.
            let has_pending: std::collections::HashSet<u64> = self
                .pending
                .values()
                .flatten()
                .filter_map(|w| match w.target {
                    Target::Batch { id, .. } => Some(id),
                    Target::Single => None,
                })
                .collect();
            self.batches
                .retain(|id, batch| !gone.contains(&batch.conn) || has_pending.contains(id));
        }
    }
}

fn plan_response(cache_tag: &str, key: u64, output: &JobOutput, started: Instant) -> PlanResponse {
    PlanResponse {
        cache: cache_tag.to_owned(),
        key,
        name: output.name.clone(),
        report: output.report.clone(),
        assignment: output.assignment.clone(),
        seconds: started.elapsed().as_secs_f64(),
    }
}
