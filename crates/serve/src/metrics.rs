//! Pool-level metrics derived from the daemon's recorded events — the
//! `copack serve --metrics` block, in the same terse key/value style as
//! `copack-obs`'s `TraceSummary::to_text`.

use copack_obs::Event;
use std::fmt::Write as _;

/// Aggregated serving metrics for one daemon lifetime.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolMetrics {
    /// `plan` requests observed ([`Event::ServeJob`] count).
    pub jobs: u64,
    /// Jobs answered successfully (any cache disposition).
    pub ok: u64,
    /// Jobs cancelled at their wall-clock budget.
    pub timeouts: u64,
    /// Jobs whose planner run failed (or whose circuit did not parse).
    pub errors: u64,
    /// Jobs rejected by backpressure or during drain.
    pub rejected: u64,
    /// Jobs submitted in the interactive class.
    pub interactive: u64,
    /// Jobs submitted in the bulk class.
    pub bulk: u64,
    /// Requests answered from the in-memory result cache.
    pub cache_hits: u64,
    /// Requests answered from the persistent disk tier.
    pub disk_hits: u64,
    /// Requests that coalesced onto an in-flight duplicate.
    pub coalesced: u64,
    /// Requests that executed fresh.
    pub misses: u64,
    /// Memory-tier entries evicted by the LRU bound
    /// ([`Event::ServeCache`]).
    pub evictions: u64,
    /// Corrupt disk entries quarantined ([`Event::ServeCache`]).
    pub quarantined: u64,
    /// Disk-tier entries resident at the end ([`Event::ServeCache`]).
    pub disk_entries: u64,
    /// Replan requests observed ([`Event::ReplanStart`] count).
    pub replans: u64,
    /// Quadrants submitted across all replan requests.
    pub replan_quadrants: u64,
    /// Quadrants answered from a previous plan or cache tier instead of
    /// being recomputed ([`Event::QuadrantReused`] count).
    pub replan_reused: u64,
    /// Deepest queue observed at any admission.
    pub max_queue_depth: u32,
    /// Median admission-to-response latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile admission-to-response latency, milliseconds.
    pub p99_ms: f64,
}

impl PoolMetrics {
    /// Folds a recorded event stream (ignoring non-serve events, so a
    /// mixed trace works too). Per-request fields come from
    /// [`Event::ServeJob`]; store-level fields from the closing
    /// [`Event::ServeCache`].
    #[must_use]
    pub fn from_events(events: &[Event]) -> Self {
        let mut metrics = Self::default();
        let mut latencies: Vec<f64> = Vec::new();
        for event in events {
            if let Event::ServeCache {
                evictions,
                quarantined,
                disk_entries,
                ..
            } = event
            {
                metrics.evictions = *evictions;
                metrics.quarantined = *quarantined;
                metrics.disk_entries = *disk_entries;
                continue;
            }
            if let Event::ReplanStart { quadrants, .. } = event {
                metrics.replans += 1;
                metrics.replan_quadrants += u64::from(*quadrants);
                continue;
            }
            if matches!(event, Event::QuadrantReused { .. }) {
                metrics.replan_reused += 1;
                continue;
            }
            let Event::ServeJob {
                cache,
                outcome,
                class,
                queue_depth,
                seconds,
            } = event
            else {
                continue;
            };
            metrics.jobs += 1;
            match outcome.as_str() {
                "ok" => metrics.ok += 1,
                "timeout" => metrics.timeouts += 1,
                "rejected" => metrics.rejected += 1,
                _ => metrics.errors += 1,
            }
            match cache.as_str() {
                "hit" => metrics.cache_hits += 1,
                "disk" => metrics.disk_hits += 1,
                "coalesced" => metrics.coalesced += 1,
                "miss" => metrics.misses += 1,
                _ => {}
            }
            if class == "bulk" {
                metrics.bulk += 1;
            } else {
                metrics.interactive += 1;
            }
            metrics.max_queue_depth = metrics.max_queue_depth.max(*queue_depth);
            latencies.push(seconds * 1000.0);
        }
        latencies.sort_by(f64::total_cmp);
        metrics.p50_ms = percentile(&latencies, 50.0);
        metrics.p99_ms = percentile(&latencies, 99.0);
        metrics
    }

    /// Fraction of cache-answered requests (memory, disk, and
    /// coalesced) among all requests that reached the cache; 0 when
    /// none did.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let answered = self.cache_hits + self.disk_hits + self.coalesced;
        let reached = answered + self.misses;
        if reached == 0 {
            0.0
        } else {
            answered as f64 / reached as f64
        }
    }

    /// Fraction of replanned quadrants answered without recomputation;
    /// 0 when no replan ran.
    #[must_use]
    pub fn reuse_rate(&self) -> f64 {
        if self.replan_quadrants == 0 {
            0.0
        } else {
            self.replan_reused as f64 / self.replan_quadrants as f64
        }
    }

    /// Multi-line human-readable rendering (the serve `--metrics`
    /// block). Latency lines carry timings and are therefore the only
    /// non-deterministic part.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "jobs {}  ok {}  timeout {}  error {}  rejected {}",
            self.jobs, self.ok, self.timeouts, self.errors, self.rejected
        );
        let _ = writeln!(
            out,
            "class interactive {}  bulk {}",
            self.interactive, self.bulk
        );
        let _ = writeln!(
            out,
            "cache hit {}  disk {}  coalesced {}  miss {} (hit-rate {:.1}%)",
            self.cache_hits,
            self.disk_hits,
            self.coalesced,
            self.misses,
            100.0 * self.cache_hit_rate()
        );
        let _ = writeln!(
            out,
            "store evictions {}  quarantined {}  disk-entries {}",
            self.evictions, self.quarantined, self.disk_entries
        );
        if self.replans > 0 {
            let _ = writeln!(
                out,
                "replan requests {}  quadrants {}  reused {} (reuse-rate {:.1}%)",
                self.replans,
                self.replan_quadrants,
                self.replan_reused,
                100.0 * self.reuse_rate()
            );
        }
        let _ = writeln!(out, "max-queue-depth {}", self.max_queue_depth);
        if self.jobs > 0 {
            let _ = writeln!(
                out,
                "latency p50 {:.3} ms  p99 {:.3} ms",
                self.p50_ms, self.p99_ms
            );
        }
        out
    }
}

/// Nearest-rank percentile over an ascending-sorted slice; 0 when empty.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() as f64 - 1.0)).round();
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let index = (rank as usize).min(sorted.len() - 1);
    sorted[index]
}

/// Renders the serve `--metrics` block from a recorded event stream.
#[must_use]
pub fn pool_metrics_text(events: &[Event]) -> String {
    PoolMetrics::from_events(events).to_text()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(cache: &str, outcome: &str, queue_depth: u32, seconds: f64) -> Event {
        class_job(cache, outcome, "interactive", queue_depth, seconds)
    }

    fn class_job(cache: &str, outcome: &str, class: &str, queue_depth: u32, seconds: f64) -> Event {
        Event::ServeJob {
            cache: cache.to_owned(),
            outcome: outcome.to_owned(),
            class: class.to_owned(),
            queue_depth,
            seconds,
        }
    }

    #[test]
    fn folds_a_mixed_event_stream() {
        let events = vec![
            job("miss", "ok", 0, 0.010),
            job("hit", "ok", 0, 0.001),
            job("coalesced", "ok", 2, 0.012),
            job("none", "rejected", 4, 0.000),
            job("miss", "timeout", 1, 0.100),
            Event::Note {
                text: "ignored".to_owned(),
            },
        ];
        let m = PoolMetrics::from_events(&events);
        assert_eq!(m.jobs, 5);
        assert_eq!(m.ok, 3);
        assert_eq!(m.timeouts, 1);
        assert_eq!(m.rejected, 1);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.coalesced, 1);
        assert_eq!(m.misses, 2);
        assert_eq!(m.interactive, 5);
        assert_eq!(m.bulk, 0);
        assert_eq!(m.max_queue_depth, 4);
        assert!((m.cache_hit_rate() - 0.5).abs() < 1e-12);
        let text = m.to_text();
        assert!(text.contains("jobs 5  ok 3  timeout 1  error 0  rejected 1"));
        assert!(text.contains("class interactive 5  bulk 0"));
        assert!(text.contains("hit-rate 50.0%"));
        assert!(text.contains("max-queue-depth 4"));
        assert!(text.contains("latency p50"));
    }

    #[test]
    fn disk_hits_and_store_stats_fold_from_their_events() {
        let events = vec![
            job("disk", "ok", 0, 0.002),
            job("miss", "ok", 0, 0.020),
            class_job("miss", "ok", "bulk", 1, 0.050),
            Event::ServeCache {
                mem_hits: 0,
                disk_hits: 1,
                misses: 2,
                evictions: 3,
                quarantined: 1,
                disk_entries: 7,
            },
        ];
        let m = PoolMetrics::from_events(&events);
        assert_eq!(m.disk_hits, 1);
        assert_eq!(m.misses, 2);
        assert_eq!(m.bulk, 1);
        assert_eq!(m.interactive, 2);
        assert_eq!(m.evictions, 3);
        assert_eq!(m.quarantined, 1);
        assert_eq!(m.disk_entries, 7);
        // Disk answers count toward the hit rate: 1 of 3 reached.
        assert!((m.cache_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        let text = m.to_text();
        assert!(text.contains("cache hit 0  disk 1  coalesced 0  miss 2"));
        assert!(text.contains("store evictions 3  quarantined 1  disk-entries 7"));
    }

    #[test]
    fn replan_events_fold_into_the_reuse_rate() {
        let events = vec![
            Event::ReplanStart {
                quadrants: 4,
                dirty: 1,
            },
            Event::QuadrantReused {
                name: "north".to_owned(),
                tier: "mem".to_owned(),
            },
            Event::QuadrantReused {
                name: "south".to_owned(),
                tier: "disk".to_owned(),
            },
            Event::QuadrantReused {
                name: "west".to_owned(),
                tier: "mem".to_owned(),
            },
            job("miss", "ok", 0, 0.010),
        ];
        let m = PoolMetrics::from_events(&events);
        assert_eq!(m.replans, 1);
        assert_eq!(m.replan_quadrants, 4);
        assert_eq!(m.replan_reused, 3);
        assert!((m.reuse_rate() - 0.75).abs() < 1e-12);
        let text = m.to_text();
        assert!(
            text.contains("replan requests 1  quadrants 4  reused 3 (reuse-rate 75.0%)"),
            "{text}"
        );
        // The line is absent when no replan ran.
        assert!(!pool_metrics_text(&[]).contains("replan"));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert!((percentile(&sorted, 50.0) - 51.0).abs() < 1e-12);
        assert!((percentile(&sorted, 99.0) - 99.0).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn empty_streams_render_without_latency_lines() {
        let text = pool_metrics_text(&[]);
        assert!(text.contains("jobs 0"));
        assert!(!text.contains("latency"));
    }
}
