//! The content-addressed result cache with duplicate coalescing.
//!
//! Keys are [`crate::job::cache_key`] values. The cache's job is not
//! just memoisation but *single-flight execution*: when several clients
//! submit the same `(instance, config)` concurrently, exactly one
//! computes and the rest block on that entry's condvar and share the
//! result. Failures are delivered to every waiter but **not** cached —
//! the entry is removed so a later identical submission retries.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use crate::error::ServeError;
use crate::job::JobOutput;

#[derive(Debug)]
enum EntryState {
    Pending,
    Ready(Arc<JobOutput>),
    Failed(ServeError),
}

#[derive(Debug)]
struct CacheEntry {
    state: Mutex<EntryState>,
    ready: Condvar,
}

/// A handle onto an in-flight entry; blocks until it resolves.
#[derive(Debug)]
pub struct Waiter {
    entry: Arc<CacheEntry>,
}

impl Waiter {
    /// Blocks until the in-flight computation fulfils the entry.
    ///
    /// # Errors
    ///
    /// Whatever error the executing thread reported (timeout, planner
    /// failure, backpressure on its own admission).
    pub fn wait(self) -> Result<Arc<JobOutput>, ServeError> {
        let mut state = self.entry.state.lock().expect("cache entry poisoned");
        loop {
            match &*state {
                EntryState::Ready(output) => return Ok(Arc::clone(output)),
                EntryState::Failed(error) => return Err(error.clone()),
                EntryState::Pending => {
                    state = self.entry.ready.wait(state).expect("cache entry poisoned");
                }
            }
        }
    }
}

/// How a lookup resolved.
#[derive(Debug)]
pub enum Lookup {
    /// No entry existed; one is now pending and the **caller owns it**:
    /// it must eventually call [`ResultCache::fulfil`] for this key, on
    /// success or failure, or coalesced waiters block forever.
    Miss,
    /// The result was already computed.
    Hit(Arc<JobOutput>),
    /// An identical job is in flight; wait on it instead of executing.
    Coalesced(Waiter),
}

/// The daemon-wide cache. Cheap to share: clones share state.
#[derive(Debug, Clone, Default)]
pub struct ResultCache {
    entries: Arc<Mutex<HashMap<u64, Arc<CacheEntry>>>>,
}

impl ResultCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves `key`, registering a pending entry on a miss.
    #[must_use]
    pub fn lookup(&self, key: u64) -> Lookup {
        let mut entries = self.entries.lock().expect("cache map poisoned");
        if let Some(entry) = entries.get(&key) {
            let state = entry.state.lock().expect("cache entry poisoned");
            return match &*state {
                EntryState::Ready(output) => Lookup::Hit(Arc::clone(output)),
                EntryState::Pending | EntryState::Failed(_) => {
                    let waiter = Waiter {
                        entry: Arc::clone(entry),
                    };
                    drop(state);
                    Lookup::Coalesced(waiter)
                }
            };
        }
        entries.insert(
            key,
            Arc::new(CacheEntry {
                state: Mutex::new(EntryState::Pending),
                ready: Condvar::new(),
            }),
        );
        Lookup::Miss
    }

    /// Resolves the pending entry for `key`: successes are retained for
    /// future hits, failures are delivered to waiters and the entry
    /// dropped so a retry recomputes.
    pub fn fulfil(&self, key: u64, result: Result<Arc<JobOutput>, ServeError>) {
        let mut entries = self.entries.lock().expect("cache map poisoned");
        let Some(entry) = (match &result {
            Ok(_) => entries.get(&key).map(Arc::clone),
            Err(_) => entries.remove(&key),
        }) else {
            return;
        };
        let mut state = entry.state.lock().expect("cache entry poisoned");
        *state = match result {
            Ok(output) => EntryState::Ready(output),
            Err(error) => EntryState::Failed(error),
        };
        entry.ready.notify_all();
    }

    /// A waiter on an existing entry, whatever its state (a waiter on a
    /// `Ready` entry resolves immediately). `None` if no entry exists.
    ///
    /// This is how a thread that registered a [`Lookup::Miss`] and
    /// handed the job to the pool later blocks for its own result.
    #[must_use]
    pub fn waiter(&self, key: u64) -> Option<Waiter> {
        let entries = self.entries.lock().expect("cache map poisoned");
        entries.get(&key).map(|entry| Waiter {
            entry: Arc::clone(entry),
        })
    }

    /// Distinct keys currently resident (pending or ready).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache map poisoned").len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorKind;

    fn output(tag: &str) -> Arc<JobOutput> {
        Arc::new(JobOutput {
            name: tag.to_owned(),
            report: format!("{tag}: report\n"),
            assignment: format!("assignment {tag}\n"),
        })
    }

    #[test]
    fn a_fulfilled_miss_becomes_a_hit() {
        let cache = ResultCache::new();
        assert!(matches!(cache.lookup(7), Lookup::Miss));
        cache.fulfil(7, Ok(output("a")));
        match cache.lookup(7) {
            Lookup::Hit(out) => assert_eq!(out.name, "a"),
            other => panic!("expected a hit, got {other:?}"),
        }
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn failures_release_waiters_and_are_not_cached() {
        let cache = ResultCache::new();
        assert!(matches!(cache.lookup(9), Lookup::Miss));
        let Lookup::Coalesced(waiter) = cache.lookup(9) else {
            panic!("second lookup should coalesce");
        };
        cache.fulfil(9, Err(ServeError::new(ErrorKind::Timeout, "budget")));
        let err = waiter.wait().expect_err("waiter sees the failure");
        assert_eq!(err.kind, ErrorKind::Timeout);
        // The failed entry is gone: the next lookup retries from scratch.
        assert!(matches!(cache.lookup(9), Lookup::Miss));
    }

    #[test]
    fn concurrent_duplicates_coalesce_onto_one_flight() {
        let cache = ResultCache::new();
        assert!(matches!(cache.lookup(3), Lookup::Miss));
        let waiters: Vec<_> = (0..4)
            .map(|_| match cache.lookup(3) {
                Lookup::Coalesced(w) => w,
                other => panic!("expected coalesce, got {other:?}"),
            })
            .collect();
        let handles: Vec<_> = waiters
            .into_iter()
            .map(|w| std::thread::spawn(move || w.wait()))
            .collect();
        cache.fulfil(3, Ok(output("shared")));
        for handle in handles {
            let out = handle.join().expect("no panic").expect("success");
            assert_eq!(out.name, "shared");
        }
    }
}
