//! The content-addressed result cache: single-flight coalescing over a
//! bounded memory tier over an optional persistent disk tier.
//!
//! Keys are [`crate::job::cache_key`] values. The cache's job is not
//! just memoisation but *single-flight execution*: when several clients
//! submit the same `(instance, config)` concurrently, exactly one
//! computes and the rest block on that entry's condvar and share the
//! result. Failures are delivered to every waiter but **not** cached —
//! the entry is removed so a later identical submission retries.
//!
//! Tiering (new in serve v2):
//!
//! * the **memory tier** holds ready results up to
//!   [`CacheConfig::mem_limit_bytes`] payload bytes, evicting strictly
//!   least-recently-used entries beyond that (0 = unbounded, the
//!   pre-v2 behaviour and the default of [`ResultCache::new`]);
//! * the **disk tier** ([`crate::store`]), when configured, receives
//!   every success write-through at fulfil time and answers lookups
//!   that miss memory. Disk entries survive crashes (atomic rename
//!   writes) and warm-start the daemon on reboot; entries that fail
//!   validation are quarantined, counted, and recomputed as misses.
//!   Disk write failures degrade silently to memory-only caching —
//!   a full disk must never fail a job that already computed.

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};

use crate::error::ServeError;
use crate::job::JobOutput;
use crate::store::{DiskLookup, DiskStore};

/// Tiering knobs for [`ResultCache::with_config`].
#[derive(Debug, Clone, Default)]
pub struct CacheConfig {
    /// Payload-byte budget for the memory tier; `0` means unbounded.
    /// Accounting covers the cached strings (name, report, assignment),
    /// not allocator overhead — a deterministic, platform-independent
    /// proxy for resident size.
    pub mem_limit_bytes: usize,
    /// Directory for the persistent tier; `None` disables it.
    pub disk_dir: Option<PathBuf>,
}

/// Point-in-time cache telemetry (all counters are lifetime totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered by the memory tier.
    pub mem_hits: u64,
    /// Lookups answered by the disk tier (then promoted to memory).
    pub disk_hits: u64,
    /// Lookups that found neither tier populated.
    pub misses: u64,
    /// Entries evicted from the memory tier by the LRU bound.
    pub evictions: u64,
    /// Disk entries that failed validation and were quarantined.
    pub quarantined: u64,
    /// Ready entries currently resident in memory.
    pub mem_entries: u64,
    /// Payload bytes currently resident in memory.
    pub mem_bytes: u64,
    /// Live entries in the disk tier.
    pub disk_entries: u64,
}

#[derive(Debug)]
enum EntryState {
    Pending,
    Ready(Arc<JobOutput>),
    Failed(ServeError),
}

#[derive(Debug)]
struct CacheEntry {
    state: Mutex<EntryState>,
    ready: Condvar,
}

#[derive(Debug)]
enum WaiterInner {
    /// Blocks on an in-flight entry's condvar.
    Entry(Arc<CacheEntry>),
    /// Already resolved (the key was ready in a cache tier).
    Ready(Arc<JobOutput>),
}

/// A handle onto an in-flight entry; blocks until it resolves.
#[derive(Debug)]
pub struct Waiter {
    inner: WaiterInner,
}

impl Waiter {
    /// Blocks until the in-flight computation fulfils the entry.
    ///
    /// # Errors
    ///
    /// Whatever error the executing thread reported (timeout, planner
    /// failure, backpressure on its own admission).
    pub fn wait(self) -> Result<Arc<JobOutput>, ServeError> {
        let entry = match self.inner {
            WaiterInner::Ready(output) => return Ok(output),
            WaiterInner::Entry(entry) => entry,
        };
        let mut state = entry.state.lock().expect("cache entry poisoned");
        loop {
            match &*state {
                EntryState::Ready(output) => return Ok(Arc::clone(output)),
                EntryState::Failed(error) => return Err(error.clone()),
                EntryState::Pending => {
                    state = entry.ready.wait(state).expect("cache entry poisoned");
                }
            }
        }
    }
}

/// How a lookup resolved.
#[derive(Debug)]
pub enum Lookup {
    /// No tier held the key; a flight is now pending and the **caller
    /// owns it**: it must eventually call [`ResultCache::fulfil`] for
    /// this key, on success or failure, or coalesced waiters block
    /// forever.
    Miss,
    /// The result was resident in the memory tier.
    Hit(Arc<JobOutput>),
    /// The result was loaded (and validated) from the disk tier, and
    /// has been promoted to memory.
    DiskHit(Arc<JobOutput>),
    /// An identical job is in flight; wait on it instead of executing.
    Coalesced(Waiter),
}

#[derive(Debug)]
struct MemEntry {
    output: Arc<JobOutput>,
    stamp: u64,
    bytes: usize,
}

#[derive(Debug, Default)]
struct CacheInner {
    /// In-flight computations (single-flight registry).
    pending: HashMap<u64, Arc<CacheEntry>>,
    /// Ready results, bounded by `mem_limit_bytes`.
    mem: HashMap<u64, MemEntry>,
    /// Recency index: stamp -> key, oldest first. `BTreeMap` keeps
    /// eviction order deterministic and O(log n) per touch.
    order: BTreeMap<u64, u64>,
    /// Monotonic recency clock.
    stamp: u64,
    mem_bytes: usize,
    stats: CacheStats,
}

impl CacheInner {
    fn touch(&mut self, key: u64) {
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some(entry) = self.mem.get_mut(&key) {
            self.order.remove(&entry.stamp);
            entry.stamp = stamp;
            self.order.insert(stamp, key);
        }
    }

    fn insert_mem(&mut self, key: u64, output: Arc<JobOutput>, limit: usize) {
        let bytes = payload_bytes(&output);
        if let Some(old) = self.mem.remove(&key) {
            self.order.remove(&old.stamp);
            self.mem_bytes -= old.bytes;
        }
        self.stamp += 1;
        self.mem.insert(
            key,
            MemEntry {
                output,
                stamp: self.stamp,
                bytes,
            },
        );
        self.order.insert(self.stamp, key);
        self.mem_bytes += bytes;
        if limit > 0 {
            while self.mem_bytes > limit {
                let Some((&stamp, &victim)) = self.order.iter().next() else {
                    break;
                };
                self.order.remove(&stamp);
                let evicted = self.mem.remove(&victim).expect("order/mem desynced");
                self.mem_bytes -= evicted.bytes;
                self.stats.evictions += 1;
            }
        }
    }
}

/// Payload bytes an output occupies in the memory tier's accounting.
fn payload_bytes(output: &JobOutput) -> usize {
    output.name.len() + output.report.len() + output.assignment.len()
}

/// The daemon-wide cache. Cheap to share: clones share state.
#[derive(Debug, Clone, Default)]
pub struct ResultCache {
    inner: Arc<Mutex<CacheInner>>,
    disk: Option<Arc<DiskStore>>,
    mem_limit: usize,
    disk_entries: Arc<Mutex<u64>>,
}

impl ResultCache {
    /// An unbounded, memory-only cache (the pre-v2 behaviour).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A tiered cache: bounded memory over an optional disk directory.
    /// Opening the disk tier scans it, sweeps stale temp files from
    /// interrupted writes, and counts surviving entries (the warm
    /// start).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating or scanning the disk
    /// directory.
    pub fn with_config(config: &CacheConfig) -> io::Result<Self> {
        let (disk, boot_entries) = match &config.disk_dir {
            Some(dir) => {
                let (store, entries) = DiskStore::open(dir)?;
                (Some(Arc::new(store)), entries)
            }
            None => (None, 0),
        };
        Ok(Self {
            inner: Arc::new(Mutex::new(CacheInner::default())),
            disk,
            mem_limit: config.mem_limit_bytes,
            disk_entries: Arc::new(Mutex::new(boot_entries)),
        })
    }

    /// Resolves `key`, registering a pending entry on a miss.
    #[must_use]
    pub fn lookup(&self, key: u64) -> Lookup {
        let mut inner = self.inner.lock().expect("cache map poisoned");
        if let Some(entry) = inner.mem.get(&key) {
            let output = Arc::clone(&entry.output);
            inner.stats.mem_hits += 1;
            inner.touch(key);
            return Lookup::Hit(output);
        }
        if let Some(entry) = inner.pending.get(&key) {
            let waiter = Waiter {
                inner: WaiterInner::Entry(Arc::clone(entry)),
            };
            return Lookup::Coalesced(waiter);
        }
        if let Some(disk) = &self.disk {
            // Disk I/O happens under the cache lock: loads are small
            // reads and serializing them keeps promote-vs-quarantine
            // races impossible. The reactor (not workers) is the only
            // caller, so nothing latency-critical queues behind this.
            match disk.load(key) {
                DiskLookup::Ready(output) => {
                    let output = Arc::new(output);
                    inner.stats.disk_hits += 1;
                    inner.insert_mem(key, Arc::clone(&output), self.mem_limit);
                    return Lookup::DiskHit(output);
                }
                DiskLookup::Quarantined => {
                    inner.stats.quarantined += 1;
                    let mut entries = self.disk_entries.lock().expect("disk count poisoned");
                    *entries = entries.saturating_sub(1);
                }
                DiskLookup::Absent => {}
            }
        }
        inner.stats.misses += 1;
        inner.pending.insert(
            key,
            Arc::new(CacheEntry {
                state: Mutex::new(EntryState::Pending),
                ready: Condvar::new(),
            }),
        );
        Lookup::Miss
    }

    /// Resolves the pending entry for `key`: successes are retained for
    /// future hits (memory, and write-through to disk when configured),
    /// failures are delivered to waiters and the entry dropped so a
    /// retry recomputes. A fulfil without a pending entry is a no-op.
    pub fn fulfil(&self, key: u64, result: Result<Arc<JobOutput>, ServeError>) {
        let mut inner = self.inner.lock().expect("cache map poisoned");
        let Some(entry) = inner.pending.remove(&key) else {
            return;
        };
        if let Ok(output) = &result {
            if let Some(disk) = &self.disk {
                // Persist before announcing: a SIGKILL after waiters
                // wake can then never lose an acknowledged result. A
                // failed write degrades to memory-only for this entry.
                if disk.store(key, output).is_ok() {
                    let mut entries = self.disk_entries.lock().expect("disk count poisoned");
                    *entries += 1;
                }
            }
            inner.insert_mem(key, Arc::clone(output), self.mem_limit);
        }
        let mut state = entry.state.lock().expect("cache entry poisoned");
        *state = match result {
            Ok(output) => EntryState::Ready(output),
            Err(error) => EntryState::Failed(error),
        };
        entry.ready.notify_all();
    }

    /// A waiter for `key`, whatever its state (a waiter on an already
    /// ready result resolves immediately). `None` if the key is neither
    /// in flight nor resident in memory.
    ///
    /// This is how a thread that registered a [`Lookup::Miss`] and
    /// handed the job to the pool later blocks for its own result.
    #[must_use]
    pub fn waiter(&self, key: u64) -> Option<Waiter> {
        let inner = self.inner.lock().expect("cache map poisoned");
        if let Some(entry) = inner.pending.get(&key) {
            return Some(Waiter {
                inner: WaiterInner::Entry(Arc::clone(entry)),
            });
        }
        inner.mem.get(&key).map(|entry| Waiter {
            inner: WaiterInner::Ready(Arc::clone(&entry.output)),
        })
    }

    /// Distinct keys currently resident (pending or ready in memory).
    #[must_use]
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().expect("cache map poisoned");
        inner.pending.len() + inner.mem.len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current telemetry (counters plus occupancy gauges).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache map poisoned");
        let mut stats = inner.stats;
        stats.mem_entries = inner.mem.len() as u64;
        stats.mem_bytes = inner.mem_bytes as u64;
        stats.disk_entries = *self.disk_entries.lock().expect("disk count poisoned");
        stats
    }

    /// Keys currently resident in the memory tier, least recently used
    /// first — the order the LRU bound would evict them in. Exposed for
    /// the eviction-order property tests; not part of the serving path.
    #[must_use]
    pub fn resident_mem_keys_lru(&self) -> Vec<u64> {
        let inner = self.inner.lock().expect("cache map poisoned");
        inner.order.values().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorKind;

    fn output(tag: &str) -> Arc<JobOutput> {
        Arc::new(JobOutput {
            name: tag.to_owned(),
            report: format!("{tag}: report\n"),
            assignment: format!("assignment {tag}\n"),
        })
    }

    /// An output whose payload is exactly `bytes` accounting bytes.
    fn sized_output(bytes: usize) -> Arc<JobOutput> {
        Arc::new(JobOutput {
            name: String::new(),
            report: "r".repeat(bytes),
            assignment: String::new(),
        })
    }

    fn fill(cache: &ResultCache, key: u64, bytes: usize) {
        assert!(matches!(cache.lookup(key), Lookup::Miss));
        cache.fulfil(key, Ok(sized_output(bytes)));
    }

    #[test]
    fn a_fulfilled_miss_becomes_a_hit() {
        let cache = ResultCache::new();
        assert!(matches!(cache.lookup(7), Lookup::Miss));
        cache.fulfil(7, Ok(output("a")));
        match cache.lookup(7) {
            Lookup::Hit(out) => assert_eq!(out.name, "a"),
            other => panic!("expected a hit, got {other:?}"),
        }
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn failures_release_waiters_and_are_not_cached() {
        let cache = ResultCache::new();
        assert!(matches!(cache.lookup(9), Lookup::Miss));
        let Lookup::Coalesced(waiter) = cache.lookup(9) else {
            panic!("second lookup should coalesce");
        };
        cache.fulfil(9, Err(ServeError::new(ErrorKind::Timeout, "budget")));
        let err = waiter.wait().expect_err("waiter sees the failure");
        assert_eq!(err.kind, ErrorKind::Timeout);
        // The failed entry is gone: the next lookup retries from scratch.
        assert!(matches!(cache.lookup(9), Lookup::Miss));
    }

    #[test]
    fn concurrent_duplicates_coalesce_onto_one_flight() {
        let cache = ResultCache::new();
        assert!(matches!(cache.lookup(3), Lookup::Miss));
        let waiters: Vec<_> = (0..4)
            .map(|_| match cache.lookup(3) {
                Lookup::Coalesced(w) => w,
                other => panic!("expected coalesce, got {other:?}"),
            })
            .collect();
        let handles: Vec<_> = waiters
            .into_iter()
            .map(|w| std::thread::spawn(move || w.wait()))
            .collect();
        cache.fulfil(3, Ok(output("shared")));
        for handle in handles {
            let out = handle.join().expect("no panic").expect("success");
            assert_eq!(out.name, "shared");
        }
    }

    #[test]
    fn the_memory_bound_evicts_least_recently_used_first() {
        let cache = ResultCache::with_config(&CacheConfig {
            mem_limit_bytes: 30,
            disk_dir: None,
        })
        .expect("memory-only config");
        fill(&cache, 1, 10);
        fill(&cache, 2, 10);
        fill(&cache, 3, 10);
        assert_eq!(cache.resident_mem_keys_lru(), vec![1, 2, 3]);

        // Touching key 1 moves it to the young end ...
        assert!(matches!(cache.lookup(1), Lookup::Hit(_)));
        assert_eq!(cache.resident_mem_keys_lru(), vec![2, 3, 1]);

        // ... so the next insert past the bound evicts key 2, not 1.
        fill(&cache, 4, 10);
        assert_eq!(cache.resident_mem_keys_lru(), vec![3, 1, 4]);
        assert!(
            matches!(cache.lookup(2), Lookup::Miss),
            "the evicted key recomputes"
        );
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.mem_bytes, 30);
        assert_eq!(stats.mem_hits, 1);
    }

    #[test]
    fn an_entry_larger_than_the_bound_is_not_retained() {
        // The bound is strict: nothing may pin memory past the limit,
        // so an oversized result serves its waiters and is dropped.
        let cache = ResultCache::with_config(&CacheConfig {
            mem_limit_bytes: 5,
            disk_dir: None,
        })
        .expect("memory-only config");
        fill(&cache, 1, 100);
        assert_eq!(cache.stats().mem_bytes, 0);
        assert!(matches!(cache.lookup(1), Lookup::Miss));
    }

    #[test]
    fn the_disk_tier_survives_a_new_cache_instance() {
        // Two caches over one directory model a daemon restart: the
        // second instance warm-starts from the first one's writes.
        let dir = std::env::temp_dir().join(format!(
            "copack-cache-restart-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = CacheConfig {
            mem_limit_bytes: 0,
            disk_dir: Some(dir.clone()),
        };
        let first = ResultCache::with_config(&config).expect("first open");
        assert!(matches!(first.lookup(11), Lookup::Miss));
        first.fulfil(11, Ok(output("persisted")));
        assert_eq!(first.stats().disk_entries, 1);

        let second = ResultCache::with_config(&config).expect("second open");
        assert_eq!(second.stats().disk_entries, 1, "warm start sees the entry");
        match second.lookup(11) {
            Lookup::DiskHit(out) => assert_eq!(out.name, "persisted"),
            other => panic!("expected a disk hit, got {other:?}"),
        }
        // Promotion: the second lookup is a plain memory hit.
        assert!(matches!(second.lookup(11), Lookup::Hit(_)));
        let stats = second.stats();
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.mem_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_corrupt_disk_entry_is_quarantined_and_recomputed() {
        let dir = std::env::temp_dir().join(format!(
            "copack-cache-quarantine-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = CacheConfig {
            mem_limit_bytes: 0,
            disk_dir: Some(dir.clone()),
        };
        let first = ResultCache::with_config(&config).expect("first open");
        assert!(matches!(first.lookup(5), Lookup::Miss));
        first.fulfil(5, Ok(output("doomed")));

        // Truncate the entry behind the restart's back.
        let path = dir.join(format!("{:016x}.entry", 5));
        let bytes = std::fs::read(&path).expect("read entry");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");

        let second = ResultCache::with_config(&config).expect("second open");
        assert!(
            matches!(second.lookup(5), Lookup::Miss),
            "a corrupt entry must recompute, not serve garbage"
        );
        let stats = second.stats();
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.disk_entries, 0);
        assert!(dir.join(format!("{:016x}.quarantine", 5)).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
