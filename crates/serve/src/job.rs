//! Job specification, content-addressed cache keys, and the shared
//! executor.
//!
//! [`execute_job`] is the single code path behind both the daemon's
//! worker pool and the CLI's one-shot `copack plan`: it mirrors that
//! command's non-package flow exactly (same methods, same default
//! exchange configuration, same report lines, same assignment-file
//! serialization), so a plan served from the daemon is byte-identical
//! to one produced locally. The cache key ([`cache_key`]) hashes the
//! *canonical* circuit text plus every spec field that influences the
//! result — and nothing else, so cosmetic differences (file name,
//! comments, row-order quirks) and execution-only knobs (timeouts)
//! coalesce onto one entry.

use copack_core::{
    assign, exchange_cancellable, exchange_portfolio_cancellable, exchange_warm,
    exchange_warm_from_journal, AssignMethod, CancelToken, CoreError, ExchangeConfig,
    PortfolioConfig, PortfolioMode,
};
use copack_geom::{Assignment, Quadrant, StackConfig};
use copack_io::{
    canonical_portfolio_mode_params, canonical_portfolio_params, canonical_quadrant_text,
    classify_quadrant, fnv1a64, parse_assignment, write_assignment, TuneProfile,
};
use copack_obs::NoopRecorder;
use copack_route::{analyze, DensityModel};
use std::fmt::Write as _;

use crate::error::{ErrorKind, ServeError};

/// Version tag mixed into every cache key; bump whenever the executor's
/// observable output changes so stale entries can never be replayed.
const KEY_DOMAIN: &str = "copack-serve/v1";

/// Admission class for queue scheduling.
///
/// Classes shape *when* a job runs, never *what* it computes, so the
/// class is deliberately absent from [`cache_key`]: an interactive
/// submission can be answered from a result a bulk sweep produced and
/// vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobClass {
    /// Latency-sensitive work (the default): design-loop submissions
    /// that a human is waiting on. Dequeued with priority weight
    /// [`JobClass::INTERACTIVE_WEIGHT`].
    #[default]
    Interactive,
    /// Throughput work: sweeps and batch re-plans that tolerate
    /// queueing. Guaranteed progress (one bulk job per weight window)
    /// but never allowed to starve interactive traffic.
    Bulk,
}

impl JobClass {
    /// How many consecutive interactive dequeues are allowed before a
    /// waiting bulk job is guaranteed a turn.
    pub const INTERACTIVE_WEIGHT: u32 = 4;

    /// The class's wire tag.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobClass::Interactive => "interactive",
            JobClass::Bulk => "bulk",
        }
    }

    /// Parses a wire tag back into a class.
    #[must_use]
    pub fn parse_tag(tag: &str) -> Option<Self> {
        match tag {
            "interactive" => Some(JobClass::Interactive),
            "bulk" => Some(JobClass::Bulk),
            _ => None,
        }
    }
}

impl std::fmt::Display for JobClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One planning job, as submitted by a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// The circuit text (`.copack` quadrant format), verbatim.
    pub circuit: String,
    /// Initial-assignment method; defaults mirror `copack plan`
    /// (DFA with slack 1).
    pub method: AssignMethod,
    /// Whether to refine with the annealing exchange pass.
    pub exchange: bool,
    /// Stacking tiers for the exchange objective (1 = planar).
    pub psi: u8,
    /// RNG seed for the exchange pass.
    pub exchange_seed: u64,
    /// Multi-start portfolio width for the exchange pass; `1` (the
    /// default) runs the plain single-start kernel.
    pub starts: u32,
    /// Raw `f64` bits of the portfolio prune margin (`f64::to_bits`).
    /// Carried as bits so the spec stays `Eq`/hashable and the value
    /// round-trips the wire and the cache key exactly. Inert when
    /// `starts <= 1`.
    pub prune_margin_bits: u64,
    /// Cooperation mode for the multi-start portfolio. `Race` (the
    /// default) is the pre-cooperative independent portfolio; `Coop`
    /// adds crossover respawns and adaptive margins; `Temper` runs a
    /// parallel-tempering ladder. Inert when `starts <= 1`.
    pub mode: PortfolioMode,
    /// Crossover kick size (seeded adjacent swaps applied to the
    /// leader's plan on a cooperative respawn). Inert unless
    /// `mode == Coop` and `starts > 1`.
    pub kick_size: u32,
    /// Raw `f64` bits of the tempering ladder's geometric temperature
    /// ratio. Bits for the same reason as `prune_margin_bits`. Inert
    /// unless `mode == Temper` and `starts > 1`.
    pub ladder_ratio_bits: u64,
    /// Previous assignment file text (`copack plan --out` format) for
    /// an incremental replan. When set (and `exchange` is on) the
    /// worker warm-starts the anneal from the repaired previous plan
    /// instead of a cold DFA start. Inert when `exchange` is off.
    pub prev: Option<String>,
    /// Raw `f64` bits of the net-separation margin weight
    /// (`CostWeights::margin`). Bits for the same reason as
    /// `prune_margin_bits`; zero (the default) leaves the term off.
    pub margin_bits: u64,
    /// Whether to plan under the daemon's loaded tuning profile
    /// (`copack serve --profile`). When set, the profile's tuned
    /// configuration for the circuit's instance class replaces the
    /// spec's schedule/weight/portfolio tunables (the seed and `psi`
    /// stay the spec's), and the profile fingerprint plus class key
    /// join the cache key so tuned and untuned results never collide.
    /// A daemon with no profile loaded rejects such jobs as bad
    /// requests.
    pub profile: bool,
    /// Per-job wall-clock budget; `None` uses the server default.
    pub timeout_ms: Option<u64>,
    /// Admission class (execution-only: scheduling priority, never part
    /// of the cache key).
    pub class: JobClass,
}

impl JobSpec {
    /// A spec with `copack plan`'s defaults for the given circuit text.
    #[must_use]
    pub fn new(circuit: impl Into<String>) -> Self {
        Self {
            circuit: circuit.into(),
            method: AssignMethod::Dfa { slack: 1 },
            exchange: false,
            psi: 1,
            exchange_seed: ExchangeConfig::default().seed,
            starts: 1,
            prune_margin_bits: PortfolioConfig::default().prune_margin.to_bits(),
            mode: PortfolioMode::Race,
            kick_size: PortfolioConfig::default().kick_size,
            ladder_ratio_bits: PortfolioConfig::default().ladder_ratio.to_bits(),
            prev: None,
            margin_bits: 0.0f64.to_bits(),
            profile: false,
            timeout_ms: None,
            class: JobClass::Interactive,
        }
    }
}

/// The result of a completed job — exactly what `copack plan` would
/// print and write for the same inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutput {
    /// The circuit's own name (from its header line).
    pub name: String,
    /// The human-readable report lines (`{name}: {method} -> ...`,
    /// optionally the after-exchange line, then `order: ...`).
    pub report: String,
    /// The assignment file bytes ([`write_assignment`] output) —
    /// byte-identical to `copack plan --out`.
    pub assignment: String,
}

/// Content-addressed key for `(instance, config)`.
///
/// Hashes the [`KEY_DOMAIN`] tag, each result-affecting spec field in a
/// fixed order, then the canonical circuit serialization. Exchange-only
/// parameters (`psi`, `exchange_seed`) are folded in **only when the
/// exchange pass is enabled** — with it disabled they cannot affect the
/// output, so specs differing only there share a key; likewise the
/// portfolio parameters (`starts`, `prune_margin_bits`) join only when
/// `starts > 1`, separating K=1 from K>1 jobs without disturbing
/// pre-portfolio keys. `timeout_ms` is never part of the key: it bounds
/// execution, not the result.
#[must_use]
pub fn cache_key(spec: &JobSpec, quadrant: &Quadrant) -> u64 {
    cache_key_with(spec, quadrant, None)
}

/// [`cache_key`] under a loaded tuning profile.
///
/// A profile-using job (`spec.profile`) additionally folds in the
/// profile's content fingerprint and the circuit's class key — the two
/// values that determine which tuned configuration the executor will
/// apply — so results planned under different profiles (or after a
/// profile reload) never collide, while non-profile jobs keep their
/// pre-profile keys bit for bit.
#[must_use]
pub fn cache_key_with(spec: &JobSpec, quadrant: &Quadrant, profile: Option<&TuneProfile>) -> u64 {
    let mut material = String::new();
    let _ = write!(material, "{KEY_DOMAIN}|method={}|", spec.method);
    if spec.profile {
        if let Some(p) = profile {
            let _ = write!(
                material,
                "profile={:016x}|class={}|",
                p.fingerprint(),
                classify_quadrant(quadrant)
            );
        }
    }
    if spec.exchange {
        let _ = write!(
            material,
            "exchange=true|psi={}|xseed={}|",
            spec.psi, spec.exchange_seed
        );
        // Portfolio parameters join the key only for true multi-start
        // jobs: at `starts <= 1` they cannot affect the result (the
        // portfolio degenerates to the plain kernel), and omitting them
        // keeps every pre-portfolio cache key stable.
        if spec.starts > 1 {
            material.push_str(&canonical_portfolio_params(
                spec.starts,
                spec.prune_margin_bits,
            ));
            // Cooperative-mode parameters fold in only for a non-default
            // mode: at `mode == Race` they cannot affect the result, and
            // omitting them keeps every pre-cooperative key stable.
            if spec.mode != PortfolioMode::Race {
                material.push_str(&canonical_portfolio_mode_params(
                    spec.mode.as_str(),
                    spec.kick_size,
                    spec.ladder_ratio_bits,
                ));
            }
        }
        // Same conditional pattern for the replan extensions: a zero
        // margin weight is the pre-margin objective and a missing
        // `prev` is a cold plan, so both fold in only when they can
        // change the result — every pre-replan key stays stable.
        if f64::from_bits(spec.margin_bits) != 0.0 {
            let _ = write!(material, "margin_bits={}|", spec.margin_bits);
        }
        if let Some(prev) = &spec.prev {
            let _ = write!(material, "prev={:016x}|", fnv1a64(prev.as_bytes()));
        }
    } else {
        material.push_str("exchange=false|");
    }
    material.push_str(&canonical_quadrant_text(quadrant));
    fnv1a64(material.as_bytes())
}

/// A portfolio winner's frozen move journal, kept by the daemon so a
/// later replan against that winner can warm-start from the journal
/// instead of re-parsing and repairing the materialised plan.
///
/// `replay_journal(initial, journal[..best_len])` reproduces the
/// winner's assignment exactly (a core invariant), so seeding
/// [`exchange_warm_from_journal`] with a record whose replay matches
/// the job's `prev` text is equivalent to the parse-and-repair path —
/// same result, same cache key, less work.
#[derive(Debug, Clone)]
pub struct JournalRecord {
    /// The assignment the journal replays onto (the pre-exchange
    /// initial order).
    pub initial: Assignment,
    /// The winning start's accepted-move journal.
    pub journal: Vec<(u32, u32)>,
    /// Journal prefix length that produced the winner's best cost.
    pub best_len: usize,
}

/// [`execute_job_full`]'s result: the output plus executor telemetry
/// the daemon uses (the CLI wrapper discards it).
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// The job's output, byte-identical to [`execute_job`]'s.
    pub output: JobOutput,
    /// The frozen journal of a portfolio winner (captured only for
    /// multi-start cold plans), for the daemon's warm-start registry.
    pub frozen: Option<JournalRecord>,
    /// How a replan warm-started: `"journal"` (frozen-journal seed) or
    /// `"plan"` (parsed previous plan). `None` for cold plans.
    pub warm_source: Option<&'static str>,
}

/// Runs one job to completion (or cancellation), mirroring
/// `copack plan`'s non-package flow line for line.
///
/// # Errors
///
/// [`ErrorKind::Timeout`] when `cancel` fires mid-run;
/// [`ErrorKind::JobFailed`] when the planner itself rejects the
/// instance (no legal assignment, invalid stack, ...).
pub fn execute_job(
    spec: &JobSpec,
    name: &str,
    quadrant: &Quadrant,
    cancel: &CancelToken,
) -> Result<JobOutput, ServeError> {
    execute_job_full(spec, name, quadrant, cancel, None, None).map(|r| r.output)
}

/// [`execute_job`] with the daemon-only extensions: an optional loaded
/// tuning profile (applied when the spec asks for it) and an optional
/// frozen-journal warm-start hint for the replan path.
///
/// The produced [`JobOutput`] is byte-identical to [`execute_job`]'s
/// for the same spec — the extensions only change *how* the result is
/// reached (tuned config, journal seed), never what a given cache key
/// maps to.
///
/// # Errors
///
/// As [`execute_job`].
pub fn execute_job_full(
    spec: &JobSpec,
    name: &str,
    quadrant: &Quadrant,
    cancel: &CancelToken,
    profile: Option<&TuneProfile>,
    hint: Option<&JournalRecord>,
) -> Result<ExecReport, ServeError> {
    let job_failed =
        |e: &dyn std::fmt::Display| ServeError::new(ErrorKind::JobFailed, e.to_string());

    let mut assignment = assign(quadrant, spec.method).map_err(|e| job_failed(&e))?;
    let mut report = String::new();
    let routing =
        analyze(quadrant, &assignment, DensityModel::Geometric).map_err(|e| job_failed(&e))?;
    let _ = writeln!(report, "{name}: {} -> {routing}", spec.method);
    let mut frozen = None;
    let mut warm_source = None;

    if spec.exchange {
        if cancel.is_cancelled() {
            return Err(ServeError::new(
                ErrorKind::Timeout,
                "the job was cancelled before the exchange pass started",
            ));
        }
        let stack = if spec.psi <= 1 {
            StackConfig::planar()
        } else {
            StackConfig::stacked(spec.psi).map_err(|e| job_failed(&e))?
        };
        let mut config = ExchangeConfig {
            seed: spec.exchange_seed,
            ..ExchangeConfig::default()
        };
        config.weights.margin = f64::from_bits(spec.margin_bits);
        // Worker threads are the pool's concurrency unit, so the
        // portfolio (when widened below) anneals its starts serially
        // inside this worker (`threads: 1`) instead of oversubscribing
        // the host; the reduction is thread-count-invariant, so the
        // result is identical either way.
        let mut portfolio = PortfolioConfig {
            starts: spec.starts,
            prune_margin: f64::from_bits(spec.prune_margin_bits),
            threads: 1,
            mode: spec.mode,
            kick_size: spec.kick_size,
            ladder_ratio: f64::from_bits(spec.ladder_ratio_bits),
            ..PortfolioConfig::default()
        };
        if spec.profile {
            if let Some(p) = profile {
                // The tuned class configuration replaces the spec's
                // schedule/weight/portfolio tunables wholesale; the
                // seed and stacking stay the spec's, and the worker
                // keeps its single-threaded portfolio.
                p.config_for(quadrant).apply(&mut config, &mut portfolio);
                config.seed = spec.exchange_seed;
                portfolio.threads = 1;
            }
        }
        let on_core_error = |e: CoreError| match e {
            CoreError::Cancelled => ServeError::new(
                ErrorKind::Timeout,
                "the job exceeded its wall-clock budget during exchange",
            ),
            other => job_failed(&other),
        };
        let result = if let Some(prev_text) = &spec.prev {
            // Incremental replan: warm-start from the previous plan
            // (repair, reheat, shortened schedule — or bit-identical
            // from-scratch below the core's size cutoff). The warm
            // path is single-start by construction, so it takes
            // precedence over the portfolio width. When the daemon
            // still holds the frozen journal of the portfolio run that
            // produced `prev`, replaying it is equivalent to parsing
            // the plan text (the replay invariant) and skips the
            // parse-and-repair round trip.
            if let Some(h) = hint {
                warm_source = Some("journal");
                exchange_warm_from_journal(
                    quadrant,
                    &h.initial,
                    &h.journal,
                    h.best_len,
                    &stack,
                    &config,
                    &mut NoopRecorder,
                    cancel,
                )
                .map_err(on_core_error)?
            } else {
                warm_source = Some("plan");
                let (_, previous) = parse_assignment(prev_text).map_err(|e| {
                    ServeError::new(
                        ErrorKind::BadRequest,
                        format!("previous assignment does not parse: {e}"),
                    )
                })?;
                exchange_warm(
                    quadrant,
                    &previous,
                    &stack,
                    &config,
                    &mut NoopRecorder,
                    cancel,
                )
                .map_err(on_core_error)?
            }
        } else if portfolio.starts > 1 {
            let won = exchange_portfolio_cancellable(
                quadrant,
                &assignment,
                &stack,
                &config,
                &portfolio,
                &mut NoopRecorder,
                cancel,
            )
            .map_err(on_core_error)?;
            let _ = writeln!(
                report,
                "{name}: portfolio K={} winner start {} seed {} pruned {}",
                portfolio.starts,
                won.winner_start,
                won.winner_seed,
                won.pruned()
            );
            frozen = Some(JournalRecord {
                initial: assignment.clone(),
                journal: won.journal.clone(),
                best_len: won.best_len,
            });
            won.result
        } else {
            exchange_cancellable(
                quadrant,
                &assignment,
                &stack,
                &config,
                &mut NoopRecorder,
                cancel,
            )
            .map_err(on_core_error)?
        };
        assignment = result.assignment;
        let routing =
            analyze(quadrant, &assignment, DensityModel::Geometric).map_err(|e| job_failed(&e))?;
        let verb = if spec.prev.is_some() {
            "replan"
        } else {
            "exchange"
        };
        let _ = writeln!(
            report,
            "{name}: after {verb} (cost {:.4} -> {:.4}) -> {routing}",
            result.stats.initial_cost, result.stats.final_cost
        );
    }

    let _ = writeln!(report, "order: {assignment}");
    Ok(ExecReport {
        output: JobOutput {
            name: name.to_owned(),
            report,
            assignment: write_assignment(name, &assignment),
        },
        frozen,
        warm_source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_io::{parse_quadrant, ClassConfig};

    fn circuit() -> (String, Quadrant) {
        let text = "quadrant demo\nrow 10 2 4 7 0\nrow 1 3 5 8\nrow 11 6 9\n";
        let (name, q) = parse_quadrant(text).expect("valid circuit");
        (name, q)
    }

    #[test]
    fn the_key_ignores_execution_only_knobs() {
        let (_, q) = circuit();
        let base = JobSpec::new("");
        let timed = JobSpec {
            timeout_ms: Some(5),
            ..base.clone()
        };
        assert_eq!(cache_key(&base, &q), cache_key(&timed, &q));

        // The admission class shapes scheduling, never the result: a
        // bulk submission shares its key with the interactive twin.
        let bulk = JobSpec {
            class: JobClass::Bulk,
            ..base.clone()
        };
        assert_eq!(cache_key(&base, &q), cache_key(&bulk, &q));

        // With exchange off, exchange-only parameters are inert too.
        let reseeded = JobSpec {
            exchange_seed: 999,
            psi: 4,
            ..base.clone()
        };
        assert_eq!(cache_key(&base, &q), cache_key(&reseeded, &q));

        // With exchange on, they are load-bearing.
        let on = JobSpec {
            exchange: true,
            ..base.clone()
        };
        let on_reseeded = JobSpec {
            exchange_seed: 999,
            ..on.clone()
        };
        assert_ne!(cache_key(&on, &q), cache_key(&on_reseeded, &q));
        assert_ne!(cache_key(&base, &q), cache_key(&on, &q));
    }

    #[test]
    fn the_key_separates_portfolio_widths_but_not_inert_params() {
        let (_, q) = circuit();
        let single = JobSpec {
            exchange: true,
            ..JobSpec::new("")
        };
        // Inert at K=1: portfolio params don't perturb the key, which
        // also keeps pre-portfolio cache keys stable.
        let single_margin = JobSpec {
            prune_margin_bits: 0.5f64.to_bits(),
            ..single.clone()
        };
        assert_eq!(cache_key(&single, &q), cache_key(&single_margin, &q));

        // K=1 and K>1 never share a key.
        let multi = JobSpec {
            starts: 4,
            ..single.clone()
        };
        assert_ne!(cache_key(&single, &q), cache_key(&multi, &q));
        // At K>1 both width and margin are load-bearing.
        let wider = JobSpec {
            starts: 8,
            ..multi.clone()
        };
        let tighter = JobSpec {
            prune_margin_bits: 0.5f64.to_bits(),
            ..multi.clone()
        };
        assert_ne!(cache_key(&multi, &q), cache_key(&wider, &q));
        assert_ne!(cache_key(&multi, &q), cache_key(&tighter, &q));

        // With exchange off, portfolio params are inert entirely.
        let off = JobSpec::new("");
        let off_multi = JobSpec {
            starts: 8,
            ..off.clone()
        };
        assert_eq!(cache_key(&off, &q), cache_key(&off_multi, &q));
    }

    #[test]
    fn the_key_folds_mode_params_only_for_cooperative_multi_start_jobs() {
        let (_, q) = circuit();
        let multi = JobSpec {
            exchange: true,
            starts: 4,
            ..JobSpec::new("")
        };
        // Race is the default mode: mode parameters are inert there, so
        // pre-cooperative keys stay byte-stable even with exotic knobs.
        let race_kicked = JobSpec {
            kick_size: 9,
            ladder_ratio_bits: 2.0f64.to_bits(),
            ..multi.clone()
        };
        assert_eq!(cache_key(&multi, &q), cache_key(&race_kicked, &q));

        // A non-default mode separates, and each knob is load-bearing.
        let coop = JobSpec {
            mode: PortfolioMode::Coop,
            ..multi.clone()
        };
        let temper = JobSpec {
            mode: PortfolioMode::Temper,
            ..multi.clone()
        };
        assert_ne!(cache_key(&multi, &q), cache_key(&coop, &q));
        assert_ne!(cache_key(&multi, &q), cache_key(&temper, &q));
        assert_ne!(cache_key(&coop, &q), cache_key(&temper, &q));
        let coop_kicked = JobSpec {
            kick_size: 9,
            ..coop.clone()
        };
        let temper_steep = JobSpec {
            ladder_ratio_bits: 2.0f64.to_bits(),
            ..temper.clone()
        };
        assert_ne!(cache_key(&coop, &q), cache_key(&coop_kicked, &q));
        assert_ne!(cache_key(&temper, &q), cache_key(&temper_steep, &q));

        // At K=1 the whole portfolio block (mode included) is inert.
        let single_temper = JobSpec {
            starts: 1,
            ..temper.clone()
        };
        let single = JobSpec {
            exchange: true,
            ..JobSpec::new("")
        };
        assert_eq!(cache_key(&single, &q), cache_key(&single_temper, &q));
    }

    #[test]
    fn the_key_folds_replan_fields_only_when_they_can_matter() {
        let (_, q) = circuit();
        // With exchange off, margin and prev are inert.
        let off = JobSpec::new("");
        let off_margin = JobSpec {
            margin_bits: 0.5f64.to_bits(),
            ..off.clone()
        };
        let off_prev = JobSpec {
            prev: Some("assignment demo\norder 1 2\n".to_owned()),
            ..off.clone()
        };
        assert_eq!(cache_key(&off, &q), cache_key(&off_margin, &q));
        assert_eq!(cache_key(&off, &q), cache_key(&off_prev, &q));

        // With exchange on, a zero margin still matches the pre-margin
        // key, a nonzero margin separates, and so does a previous plan
        // (content-addressed: equal text, equal key).
        let on = JobSpec {
            exchange: true,
            ..JobSpec::new("")
        };
        let on_zero_margin = JobSpec {
            margin_bits: 0.0f64.to_bits(),
            ..on.clone()
        };
        assert_eq!(cache_key(&on, &q), cache_key(&on_zero_margin, &q));
        let on_margin = JobSpec {
            margin_bits: 0.5f64.to_bits(),
            ..on.clone()
        };
        assert_ne!(cache_key(&on, &q), cache_key(&on_margin, &q));
        let prev_a = JobSpec {
            prev: Some("assignment demo\norder 1 2\n".to_owned()),
            ..on.clone()
        };
        let prev_a_again = prev_a.clone();
        let prev_b = JobSpec {
            prev: Some("assignment demo\norder 2 1\n".to_owned()),
            ..on.clone()
        };
        assert_ne!(cache_key(&on, &q), cache_key(&prev_a, &q));
        assert_eq!(cache_key(&prev_a, &q), cache_key(&prev_a_again, &q));
        assert_ne!(cache_key(&prev_a, &q), cache_key(&prev_b, &q));
    }

    #[test]
    fn a_replan_job_warm_starts_from_the_previous_plan() {
        let text =
            "quadrant demo\nrow 10 2 4 7 0\nrow 1 3 5 8\nrow 11 6 9\nnet 10 power\nnet 5 power\n";
        let (name, q) = parse_quadrant(text).expect("valid circuit");
        let cold_spec = JobSpec {
            exchange: true,
            ..JobSpec::new("")
        };
        let cold = execute_job(&cold_spec, &name, &q, &CancelToken::new()).expect("cold plan");
        let warm_spec = JobSpec {
            prev: Some(cold.assignment.clone()),
            ..cold_spec.clone()
        };
        let warm = execute_job(&warm_spec, &name, &q, &CancelToken::new()).expect("warm plan");
        assert!(warm.report.contains("after replan"), "{}", warm.report);
        assert!(!cold.report.contains("after replan"), "{}", cold.report);
        // The warm result is a complete assignment of the same instance.
        let (_, parsed) = parse_assignment(&warm.assignment).expect("warm output parses");
        assert_eq!(parsed.net_count(), q.net_count());
        // A previous plan that is not an assignment file is a typed
        // bad-request, not a panic.
        let junk = JobSpec {
            prev: Some("not an assignment".to_owned()),
            ..cold_spec
        };
        let err = execute_job(&junk, &name, &q, &CancelToken::new()).expect_err("junk prev");
        assert_eq!(err.kind, ErrorKind::BadRequest);
    }

    #[test]
    fn portfolio_executor_reports_the_winner_and_matches_the_plain_kernel_at_k1() {
        // The exchange pass needs power pads; extend the fixture.
        let text =
            "quadrant demo\nrow 10 2 4 7 0\nrow 1 3 5 8\nrow 11 6 9\nnet 10 power\nnet 5 power\n";
        let (name, q) = parse_quadrant(text).expect("valid circuit");
        let single = JobSpec {
            exchange: true,
            ..JobSpec::new("")
        };
        let multi = JobSpec {
            starts: 4,
            ..single.clone()
        };
        let solo = execute_job(&single, &name, &q, &CancelToken::new()).expect("solo");
        let port = execute_job(&multi, &name, &q, &CancelToken::new()).expect("portfolio");
        assert!(port.report.contains("portfolio K=4 winner start "));
        assert!(!solo.report.contains("portfolio"));
        // The portfolio's final cost can only match or beat the
        // single-start run (start 0 anneals with the base seed itself).
        let final_cost = |r: &str| -> f64 {
            let line = r
                .lines()
                .find(|l| l.contains("after exchange"))
                .expect("after-exchange line");
            let tail = line.split("(cost ").nth(1).expect("cost fragment");
            let after = tail.split(" -> ").nth(1).expect("final cost");
            after
                .split(')')
                .next()
                .expect("closing paren")
                .parse()
                .expect("parseable cost")
        };
        assert!(final_cost(&port.report) <= final_cost(&solo.report));
    }

    #[test]
    fn executor_matches_the_paper_worked_example() {
        let (name, q) = circuit();
        let spec = JobSpec::new("");
        let out = execute_job(&spec, &name, &q, &CancelToken::new()).expect("plan succeeds");
        // DFA with slack 1 reproduces Fig. 12's order.
        assert!(out.report.contains("order: 10,11,1,2,6,3,4,9,5,7,8,0"));
        assert!(out.assignment.contains("order 10 11 1 2 6 3 4 9 5 7 8 0"));
        assert_eq!(out.name, "demo");
    }

    fn profile_for(q: &Quadrant, tuned: ClassConfig) -> TuneProfile {
        TuneProfile {
            seed: 0xC0DE,
            space_fingerprint: 1,
            classes: vec![(classify_quadrant(q), tuned)],
        }
    }

    #[test]
    fn the_key_folds_the_profile_only_when_requested_and_loaded() {
        let (_, q) = circuit();
        let plain = JobSpec {
            exchange: true,
            ..JobSpec::new("")
        };
        let tuned = JobSpec {
            profile: true,
            ..plain.clone()
        };
        let profile = profile_for(&q, ClassConfig::default_config());
        // Without the flag the loaded profile is inert: pre-profile
        // keys stay stable even on a daemon that has one loaded.
        assert_eq!(
            cache_key_with(&plain, &q, None),
            cache_key_with(&plain, &q, Some(&profile))
        );
        assert_eq!(cache_key(&plain, &q), cache_key_with(&plain, &q, None));
        // With the flag and a loaded profile the key separates, and two
        // different profiles never collide.
        assert_ne!(
            cache_key_with(&plain, &q, Some(&profile)),
            cache_key_with(&tuned, &q, Some(&profile))
        );
        let other = profile_for(
            &q,
            ClassConfig {
                cooling: 0.85,
                ..ClassConfig::default_config()
            },
        );
        assert_ne!(
            cache_key_with(&tuned, &q, Some(&profile)),
            cache_key_with(&tuned, &q, Some(&other))
        );
    }

    #[test]
    fn a_profile_widens_a_default_job_into_its_tuned_portfolio() {
        let text =
            "quadrant demo\nrow 10 2 4 7 0\nrow 1 3 5 8\nrow 11 6 9\nnet 10 power\nnet 5 power\n";
        let (name, q) = parse_quadrant(text).expect("valid circuit");
        let spec = JobSpec {
            exchange: true,
            profile: true,
            ..JobSpec::new("")
        };
        let profile = profile_for(
            &q,
            ClassConfig {
                starts: 2,
                ..ClassConfig::default_config()
            },
        );
        let run = execute_job_full(&spec, &name, &q, &CancelToken::new(), Some(&profile), None)
            .expect("tuned plan");
        assert!(
            run.output.report.contains("portfolio K=2"),
            "{}",
            run.output.report
        );
        assert!(run.frozen.is_some(), "portfolio runs freeze their journal");
        // An unknown class falls back to the built-in default class
        // config (which carries the default K=4 portfolio): same bytes
        // as a profile-less job submitted with those knobs spelled out.
        let empty = TuneProfile {
            seed: 0xC0DE,
            space_fingerprint: 1,
            classes: Vec::new(),
        };
        let fallback = execute_job_full(&spec, &name, &q, &CancelToken::new(), Some(&empty), None)
            .expect("fallback plan");
        let plain_spec = JobSpec {
            profile: false,
            starts: PortfolioConfig::default().starts,
            ..spec.clone()
        };
        let plain = execute_job(&plain_spec, &name, &q, &CancelToken::new()).expect("plain plan");
        assert_eq!(fallback.output, plain);
    }

    #[test]
    fn a_journal_hint_replan_matches_the_parse_path_bit_for_bit() {
        let text =
            "quadrant demo\nrow 10 2 4 7 0\nrow 1 3 5 8\nrow 11 6 9\nnet 10 power\nnet 5 power\n";
        let (name, q) = parse_quadrant(text).expect("valid circuit");
        let cold_spec = JobSpec {
            exchange: true,
            starts: 4,
            ..JobSpec::new("")
        };
        let cold = execute_job_full(&cold_spec, &name, &q, &CancelToken::new(), None, None)
            .expect("cold portfolio");
        let record = cold.frozen.expect("portfolio freezes its journal");
        assert!(cold.warm_source.is_none());
        let warm_spec = JobSpec {
            prev: Some(cold.output.assignment.clone()),
            ..cold_spec
        };
        let parsed = execute_job_full(&warm_spec, &name, &q, &CancelToken::new(), None, None)
            .expect("parse-path replan");
        let seeded = execute_job_full(
            &warm_spec,
            &name,
            &q,
            &CancelToken::new(),
            None,
            Some(&record),
        )
        .expect("journal-path replan");
        assert_eq!(parsed.warm_source, Some("plan"));
        assert_eq!(seeded.warm_source, Some("journal"));
        // The journal seed is an implementation detail: the served
        // bytes are identical either way.
        assert_eq!(parsed.output, seeded.output);
    }

    #[test]
    fn a_cancelled_token_surfaces_as_timeout() {
        let (name, q) = circuit();
        let spec = JobSpec {
            exchange: true,
            ..JobSpec::new("")
        };
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = execute_job(&spec, &name, &q, &cancel).expect_err("cancelled");
        assert_eq!(err.kind, ErrorKind::Timeout);
    }
}
