//! The wire protocol: newline-delimited JSON frames over a local TCP
//! socket.
//!
//! Each frame is one JSON object on one line (`\n`-terminated; a
//! trailing `\r` is tolerated). Requests carry an `"op"` tag (`plan`,
//! `status`, `shutdown`); responses carry `"ok"` plus either the
//! payload or a typed error object. Frames are capped at [`MAX_FRAME`]
//! bytes — an oversized frame is discarded up to its terminating
//! newline and answered with a typed `oversized` error, leaving the
//! connection usable for the next frame.

use copack_core::AssignMethod;
use std::fmt::Write as _;
use std::io::Read;

use crate::error::{ErrorKind, ServeError};
use crate::job::JobSpec;
use crate::json::{write_json_str, Json};

/// Hard cap on one frame's size in bytes (1 MiB). The largest Table 1
/// circuit serializes to well under 64 KiB, so this bounds hostile or
/// corrupted input, not legitimate work.
pub const MAX_FRAME: usize = 1 << 20;

/// One decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Plan the embedded circuit.
    Plan(JobSpec),
    /// Report pool counters and queue occupancy.
    Status,
    /// Drain and stop the daemon.
    Shutdown,
}

/// A successful plan, as carried on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanResponse {
    /// How the cache answered: `"miss"`, `"hit"`, or `"coalesced"`.
    pub cache: String,
    /// The content-addressed cache key.
    pub key: u64,
    /// The circuit's header name.
    pub name: String,
    /// Human-readable report lines (what `copack plan` prints).
    pub report: String,
    /// Assignment file bytes (what `copack plan --out` writes).
    pub assignment: String,
    /// Wall-clock seconds from admission to response.
    pub seconds: f64,
}

/// A point-in-time view of the pool, served by `status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatusSnapshot {
    /// Worker threads in the pool.
    pub workers: u32,
    /// Bounded queue capacity.
    pub queue_capacity: u32,
    /// Jobs currently executing.
    pub running: u32,
    /// Jobs waiting in the queue.
    pub queued: u32,
    /// Plan requests received (including rejected ones).
    pub submitted: u64,
    /// Jobs that executed to completion.
    pub completed: u64,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Requests that coalesced onto an in-flight duplicate.
    pub coalesced: u64,
    /// Requests rejected by backpressure.
    pub rejected: u64,
    /// Jobs cancelled at their wall-clock budget.
    pub timeouts: u64,
    /// Jobs whose planner run failed.
    pub failed: u64,
    /// Whether the daemon is draining.
    pub shutting_down: bool,
}

/// One decoded server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A completed plan.
    Plan(PlanResponse),
    /// A status snapshot.
    Status(StatusSnapshot),
    /// Acknowledgement that the daemon is shutting down.
    Shutdown,
    /// A typed failure.
    Error(ServeError),
}

/// Encodes a request as one frame line (no trailing newline).
#[must_use]
pub fn encode_request(request: &Request) -> String {
    let mut out = String::new();
    match request {
        Request::Plan(spec) => {
            out.push_str("{\"op\":\"plan\",\"circuit\":");
            write_json_str(&mut out, &spec.circuit);
            match spec.method {
                AssignMethod::Dfa { slack } => {
                    let _ = write!(out, ",\"method\":\"dfa\",\"slack\":{slack}");
                }
                AssignMethod::Ifa => out.push_str(",\"method\":\"ifa\""),
                AssignMethod::Random { seed } => {
                    let _ = write!(out, ",\"method\":\"random\",\"seed\":{seed}");
                }
            }
            let _ = write!(
                out,
                ",\"exchange\":{},\"psi\":{},\"xseed\":{}",
                spec.exchange, spec.psi, spec.exchange_seed
            );
            // Portfolio fields travel only for true multi-start jobs, so
            // pre-portfolio peers keep understanding every K=1 frame.
            // The margin crosses as raw f64 bits — integer-exact, no
            // decimal rendering to round.
            if spec.starts > 1 {
                let _ = write!(
                    out,
                    ",\"starts\":{},\"prune_margin_bits\":{}",
                    spec.starts, spec.prune_margin_bits
                );
            }
            if let Some(ms) = spec.timeout_ms {
                let _ = write!(out, ",\"timeout_ms\":{ms}");
            }
            out.push('}');
        }
        Request::Status => out.push_str("{\"op\":\"status\"}"),
        Request::Shutdown => out.push_str("{\"op\":\"shutdown\"}"),
    }
    out
}

/// Decodes one frame line into a request.
///
/// # Errors
///
/// [`ErrorKind::BadFrame`] when the line is not a JSON object;
/// [`ErrorKind::BadRequest`] when it parses but the contents are
/// unusable (missing/unknown op, bad method, out-of-range field).
pub fn decode_request(line: &str) -> Result<Request, ServeError> {
    let json = Json::parse(line)
        .map_err(|m| ServeError::new(ErrorKind::BadFrame, format!("not a valid frame: {m}")))?;
    if !matches!(json, Json::Obj(_)) {
        return Err(ServeError::new(
            ErrorKind::BadFrame,
            "a frame must be a JSON object",
        ));
    }
    let op = json
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::new(ErrorKind::BadRequest, "missing string field `op`"))?;
    match op {
        "status" => Ok(Request::Status),
        "shutdown" => Ok(Request::Shutdown),
        "plan" => {
            let circuit = json.get("circuit").and_then(Json::as_str).ok_or_else(|| {
                ServeError::new(ErrorKind::BadRequest, "plan requires a string `circuit`")
            })?;
            let mut spec = JobSpec::new(circuit);
            let field_u64 = |name: &str| -> Result<Option<u64>, ServeError> {
                match json.get(name) {
                    None | Some(Json::Null) => Ok(None),
                    Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                        ServeError::new(
                            ErrorKind::BadRequest,
                            format!("`{name}` must be a non-negative integer"),
                        )
                    }),
                }
            };
            spec.method = match json.get("method").and_then(Json::as_str).unwrap_or("dfa") {
                "dfa" => {
                    let slack = field_u64("slack")?.unwrap_or(1);
                    let slack = u32::try_from(slack).map_err(|_| {
                        ServeError::new(ErrorKind::BadRequest, "`slack` is out of range")
                    })?;
                    AssignMethod::Dfa { slack }
                }
                "ifa" => AssignMethod::Ifa,
                "random" => AssignMethod::Random {
                    seed: field_u64("seed")?.unwrap_or(42),
                },
                other => {
                    return Err(ServeError::new(
                        ErrorKind::BadRequest,
                        format!("unknown method `{other}` (dfa|ifa|random)"),
                    ))
                }
            };
            if let Some(exchange) = json.get("exchange") {
                spec.exchange = exchange.as_bool().ok_or_else(|| {
                    ServeError::new(ErrorKind::BadRequest, "`exchange` must be a boolean")
                })?;
            }
            if let Some(psi) = field_u64("psi")? {
                spec.psi = u8::try_from(psi).ok().filter(|p| *p >= 1).ok_or_else(|| {
                    ServeError::new(ErrorKind::BadRequest, "`psi` must be between 1 and 255")
                })?;
            }
            if let Some(xseed) = field_u64("xseed")? {
                spec.exchange_seed = xseed;
            }
            if let Some(starts) = field_u64("starts")? {
                spec.starts = u32::try_from(starts)
                    .ok()
                    .filter(|s| *s >= 1)
                    .ok_or_else(|| {
                        ServeError::new(
                            ErrorKind::BadRequest,
                            "`starts` must be between 1 and 4294967295",
                        )
                    })?;
            }
            if let Some(bits) = field_u64("prune_margin_bits")? {
                spec.prune_margin_bits = bits;
            }
            spec.timeout_ms = field_u64("timeout_ms")?;
            Ok(Request::Plan(spec))
        }
        other => Err(ServeError::new(
            ErrorKind::BadRequest,
            format!("unknown op `{other}` (plan|status|shutdown)"),
        )),
    }
}

/// Encodes a response as one frame line (no trailing newline).
#[must_use]
pub fn encode_response(response: &Response) -> String {
    let mut out = String::new();
    match response {
        Response::Plan(plan) => {
            out.push_str("{\"ok\":true,\"cache\":");
            write_json_str(&mut out, &plan.cache);
            let _ = write!(out, ",\"key\":\"{:016x}\",\"name\":", plan.key);
            write_json_str(&mut out, &plan.name);
            out.push_str(",\"report\":");
            write_json_str(&mut out, &plan.report);
            out.push_str(",\"assignment\":");
            write_json_str(&mut out, &plan.assignment);
            let _ = write!(out, ",\"seconds\":{}}}", plan.seconds);
        }
        Response::Status(s) => {
            let _ = write!(
                out,
                "{{\"ok\":true,\"status\":{{\"workers\":{},\"queue_capacity\":{},\
                 \"running\":{},\"queued\":{},\"submitted\":{},\"completed\":{},\
                 \"cache_hits\":{},\"coalesced\":{},\"rejected\":{},\"timeouts\":{},\
                 \"failed\":{},\"shutting_down\":{}}}}}",
                s.workers,
                s.queue_capacity,
                s.running,
                s.queued,
                s.submitted,
                s.completed,
                s.cache_hits,
                s.coalesced,
                s.rejected,
                s.timeouts,
                s.failed,
                s.shutting_down
            );
        }
        Response::Shutdown => out.push_str("{\"ok\":true,\"shutdown\":true}"),
        Response::Error(e) => {
            out.push_str("{\"ok\":false,\"error\":{\"kind\":");
            write_json_str(&mut out, e.kind.as_str());
            out.push_str(",\"message\":");
            write_json_str(&mut out, &e.message);
            out.push_str("}}");
        }
    }
    out
}

/// Decodes one frame line into a response.
///
/// # Errors
///
/// [`ErrorKind::Protocol`] when the line is not a well-formed response
/// frame of any known shape.
pub fn decode_response(line: &str) -> Result<Response, ServeError> {
    let bad = |why: String| ServeError::new(ErrorKind::Protocol, why);
    let json = Json::parse(line).map_err(|m| bad(format!("not a valid response frame: {m}")))?;
    let ok = json
        .get("ok")
        .and_then(Json::as_bool)
        .ok_or_else(|| bad("response is missing boolean `ok`".to_owned()))?;
    if !ok {
        let error = json
            .get("error")
            .ok_or_else(|| bad("failure response is missing `error`".to_owned()))?;
        let kind_tag = error
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("error object is missing `kind`".to_owned()))?;
        let message = error
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_owned();
        let kind = ErrorKind::parse_tag(kind_tag).unwrap_or(ErrorKind::Protocol);
        return Ok(Response::Error(ServeError::new(kind, message)));
    }
    if json.get("shutdown").and_then(Json::as_bool) == Some(true) {
        return Ok(Response::Shutdown);
    }
    if let Some(status) = json.get("status") {
        let u64_of = |name: &str| status.get(name).and_then(Json::as_u64).unwrap_or(0);
        let u32_of = |name: &str| u32::try_from(u64_of(name)).unwrap_or(u32::MAX);
        return Ok(Response::Status(StatusSnapshot {
            workers: u32_of("workers"),
            queue_capacity: u32_of("queue_capacity"),
            running: u32_of("running"),
            queued: u32_of("queued"),
            submitted: u64_of("submitted"),
            completed: u64_of("completed"),
            cache_hits: u64_of("cache_hits"),
            coalesced: u64_of("coalesced"),
            rejected: u64_of("rejected"),
            timeouts: u64_of("timeouts"),
            failed: u64_of("failed"),
            shutting_down: status.get("shutting_down").and_then(Json::as_bool) == Some(true),
        }));
    }
    let field_str = |name: &str| -> Result<String, ServeError> {
        json.get(name)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| bad(format!("plan response is missing string `{name}`")))
    };
    let cache = field_str("cache")?;
    let key = u64::from_str_radix(&field_str("key")?, 16)
        .map_err(|_| bad("plan response has a malformed `key`".to_owned()))?;
    Ok(Response::Plan(PlanResponse {
        cache,
        key,
        name: field_str("name")?,
        report: field_str("report")?,
        assignment: field_str("assignment")?,
        seconds: json.get("seconds").and_then(Json::as_f64).unwrap_or(0.0),
    }))
}

/// What [`LineReader::next`] produced.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// One complete line (newline stripped).
    Line(String),
    /// The peer closed the connection at a frame boundary.
    Eof,
    /// A read timed out with no complete frame buffered; poll state and
    /// call again.
    Idle,
}

/// Incremental line framer over any [`Read`].
///
/// Carries partial frames across reads, tolerates read timeouts (so the
/// server can poll its shutdown flag between frames), and survives
/// oversized frames by discarding bytes up to the terminating newline
/// before reporting a single typed [`ErrorKind::Oversized`] error.
#[derive(Debug)]
pub struct LineReader<R> {
    inner: R,
    buffer: Vec<u8>,
    discarding: bool,
}

impl<R: Read> LineReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            buffer: Vec::new(),
            discarding: false,
        }
    }

    /// Produces the next frame, EOF, or idle tick.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Oversized`] once per oversized frame (the
    /// connection stays usable); [`ErrorKind::BadFrame`] for non-UTF-8
    /// lines; [`ErrorKind::Io`] for transport failures, including a
    /// peer that disconnects mid-frame.
    pub fn next_frame(&mut self) -> Result<Frame, ServeError> {
        loop {
            if let Some(pos) = self.buffer.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buffer.drain(..=pos).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                if self.discarding || line.len() > MAX_FRAME {
                    self.discarding = false;
                    return Err(ServeError::new(
                        ErrorKind::Oversized,
                        format!("frame exceeds the {MAX_FRAME}-byte limit"),
                    ));
                }
                let text = String::from_utf8(line).map_err(|_| {
                    ServeError::new(ErrorKind::BadFrame, "frame is not valid UTF-8")
                })?;
                return Ok(Frame::Line(text));
            }
            if self.discarding {
                self.buffer.clear();
            } else if self.buffer.len() > MAX_FRAME {
                self.buffer.clear();
                self.discarding = true;
            }
            let mut chunk = [0u8; 8192];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    if self.buffer.is_empty() && !self.discarding {
                        return Ok(Frame::Eof);
                    }
                    self.buffer.clear();
                    self.discarding = false;
                    return Err(ServeError::new(
                        ErrorKind::Io,
                        "the peer disconnected mid-frame",
                    ));
                }
                Ok(n) => self.buffer.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(Frame::Idle)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let specs = [
            Request::Plan(JobSpec::new("quadrant a\nrow 1 2\n")),
            Request::Plan(JobSpec {
                method: AssignMethod::Random { seed: u64::MAX },
                exchange: true,
                psi: 3,
                exchange_seed: 7,
                timeout_ms: Some(250),
                ..JobSpec::new("quadrant b\nrow 3 1 2\n")
            }),
            Request::Plan(JobSpec {
                method: AssignMethod::Ifa,
                ..JobSpec::new("quadrant c\nrow 1\n")
            }),
            Request::Plan(JobSpec {
                exchange: true,
                starts: 8,
                prune_margin_bits: 0.125f64.to_bits(),
                ..JobSpec::new("quadrant d\nrow 2 1\n")
            }),
            Request::Status,
            Request::Shutdown,
        ];
        for request in specs {
            let line = encode_request(&request);
            assert!(!line.contains('\n'), "frames are single lines: {line}");
            assert_eq!(decode_request(&line).unwrap(), request);
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Plan(PlanResponse {
                cache: "miss".to_owned(),
                key: 0x0123_4567_89ab_cdef,
                name: "demo".to_owned(),
                report: "demo: dfa(n=1) -> ...\norder: 1,2\n".to_owned(),
                assignment: "assignment demo\norder 1,2\n".to_owned(),
                seconds: 0.25,
            }),
            Response::Status(StatusSnapshot {
                workers: 4,
                queue_capacity: 64,
                running: 2,
                queued: 1,
                submitted: 10,
                completed: 7,
                cache_hits: 2,
                coalesced: 1,
                rejected: 3,
                timeouts: 1,
                failed: 1,
                shutting_down: true,
            }),
            Response::Shutdown,
            Response::Error(ServeError::new(ErrorKind::QueueFull, "queue is full (64)")),
        ];
        for response in responses {
            let line = encode_response(&response);
            assert!(!line.contains('\n'), "frames are single lines: {line}");
            assert_eq!(decode_response(&line).unwrap(), response);
        }
    }

    #[test]
    fn bad_frames_and_bad_requests_are_distinguished() {
        assert_eq!(
            decode_request("this is not json").unwrap_err().kind,
            ErrorKind::BadFrame
        );
        assert_eq!(
            decode_request("[1,2]").unwrap_err().kind,
            ErrorKind::BadFrame
        );
        assert_eq!(
            decode_request("{\"op\":\"fly\"}").unwrap_err().kind,
            ErrorKind::BadRequest
        );
        assert_eq!(
            decode_request("{\"op\":\"plan\"}").unwrap_err().kind,
            ErrorKind::BadRequest
        );
        assert_eq!(
            decode_request("{\"op\":\"plan\",\"circuit\":\"x\",\"psi\":0}")
                .unwrap_err()
                .kind,
            ErrorKind::BadRequest
        );
        assert_eq!(
            decode_request("{\"op\":\"plan\",\"circuit\":\"x\",\"starts\":0}")
                .unwrap_err()
                .kind,
            ErrorKind::BadRequest
        );
    }

    #[test]
    fn single_start_frames_omit_portfolio_fields() {
        // K=1 frames are byte-identical to pre-portfolio frames, so
        // older peers (and golden files) keep working unchanged.
        let line = encode_request(&Request::Plan(JobSpec {
            exchange: true,
            ..JobSpec::new("quadrant a\nrow 1 2\n")
        }));
        assert!(!line.contains("starts"));
        assert!(!line.contains("prune_margin_bits"));
        // Multi-start frames carry both, and the margin's bits survive
        // the round trip exactly.
        let spec = JobSpec {
            exchange: true,
            starts: 3,
            prune_margin_bits: 0.1f64.to_bits(),
            ..JobSpec::new("quadrant a\nrow 1 2\n")
        };
        let Request::Plan(decoded) =
            decode_request(&encode_request(&Request::Plan(spec.clone()))).expect("round trip")
        else {
            panic!("not a plan");
        };
        assert_eq!(decoded, spec);
        assert_eq!(
            f64::from_bits(decoded.prune_margin_bits).to_bits(),
            0.1f64.to_bits()
        );
    }

    #[test]
    fn the_line_reader_carries_partial_frames() {
        // A reader that yields the stream in awkward 3-byte pieces.
        struct Drip<'a>(&'a [u8]);
        impl Read for Drip<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let n = self.0.len().min(3).min(buf.len());
                buf[..n].copy_from_slice(&self.0[..n]);
                self.0 = &self.0[n..];
                Ok(n)
            }
        }
        let mut reader = LineReader::new(Drip(b"{\"op\":\"status\"}\r\nnext line\n"));
        assert_eq!(
            reader.next_frame().unwrap(),
            Frame::Line("{\"op\":\"status\"}".to_owned())
        );
        assert_eq!(
            reader.next_frame().unwrap(),
            Frame::Line("next line".to_owned())
        );
        assert_eq!(reader.next_frame().unwrap(), Frame::Eof);
    }

    #[test]
    fn oversized_frames_are_discarded_then_reported_once() {
        let mut stream = vec![b'x'; MAX_FRAME + 10];
        stream.push(b'\n');
        stream.extend_from_slice(b"{\"op\":\"status\"}\n");
        let mut reader = LineReader::new(stream.as_slice());
        assert_eq!(reader.next_frame().unwrap_err().kind, ErrorKind::Oversized);
        // The connection is still usable for the following frame.
        assert_eq!(
            reader.next_frame().unwrap(),
            Frame::Line("{\"op\":\"status\"}".to_owned())
        );
        assert_eq!(reader.next_frame().unwrap(), Frame::Eof);
    }

    #[test]
    fn a_mid_frame_disconnect_is_a_typed_io_error() {
        let mut reader = LineReader::new(&b"{\"op\":\"sta"[..]);
        assert_eq!(reader.next_frame().unwrap_err().kind, ErrorKind::Io);
    }
}
