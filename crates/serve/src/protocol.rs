//! The wire protocol: newline-delimited JSON frames over a local TCP
//! socket.
//!
//! Each frame is one JSON object on one line (`\n`-terminated; a
//! trailing `\r` is tolerated). Requests carry an `"op"` tag (`plan`,
//! `batch`, `replan`, `status`, `shutdown`); responses carry `"ok"` plus either
//! the payload or a typed error object. Frames are capped at
//! [`MAX_FRAME`] bytes — an oversized frame is discarded up to its
//! terminating newline and answered with a typed `oversized` error,
//! leaving the connection usable for the next frame.
//!
//! Batch submissions stream: one `batch` request is answered by one
//! `item` frame *per job, in completion order*, each tagged with the
//! job's zero-based `seq` in the submitted list, closed by a single
//! `batch` summary frame. Clients needing submission order sort by
//! `seq` after the summary arrives — the tags make the final ordering
//! deterministic without forcing the server to buffer.

use copack_core::{AssignMethod, PortfolioMode};
use std::fmt::Write as _;
use std::io::Read;

use crate::error::{ErrorKind, ServeError};
use crate::job::{JobClass, JobSpec};
use crate::json::{write_json_str, Json};

/// Hard cap on one frame's size in bytes (1 MiB). The largest Table 1
/// circuit serializes to well under 64 KiB, so this bounds hostile or
/// corrupted input, not legitimate work.
pub const MAX_FRAME: usize = 1 << 20;

/// Hard cap on jobs in one `batch` request.
pub const MAX_BATCH: usize = 1024;

/// One decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Plan the embedded circuit.
    Plan(JobSpec),
    /// Plan every embedded circuit, streaming per-job `item` frames as
    /// they finish. The class applies to all jobs in the batch.
    Batch {
        /// Admission class for every job in the batch.
        class: JobClass,
        /// The jobs, in submission order (their `seq` tags).
        jobs: Vec<JobSpec>,
    },
    /// Incrementally re-plan every embedded quadrant after an ECO edit,
    /// streaming `item` frames exactly like a batch. Untouched
    /// quadrants (specs whose key is already cached) are answered from
    /// the cache and counted as reused; dirty quadrants run the warm
    /// executor path when their spec carries a previous plan.
    Replan {
        /// Admission class for every job in the replan.
        class: JobClass,
        /// The jobs, in submission order (their `seq` tags).
        jobs: Vec<JobSpec>,
    },
    /// Report pool counters and queue occupancy.
    Status,
    /// Drain and stop the daemon.
    Shutdown,
}

/// A successful plan, as carried on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanResponse {
    /// How the cache answered: `"miss"`, `"hit"`, `"disk"`, or
    /// `"coalesced"`.
    pub cache: String,
    /// The content-addressed cache key.
    pub key: u64,
    /// The circuit's header name.
    pub name: String,
    /// Human-readable report lines (what `copack plan` prints).
    pub report: String,
    /// Assignment file bytes (what `copack plan --out` writes).
    pub assignment: String,
    /// Wall-clock seconds from admission to response.
    pub seconds: f64,
}

/// The closing frame of a streamed batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchSummary {
    /// Jobs in the batch (one `item` frame was sent for each).
    pub jobs: u32,
    /// Items that completed with a plan.
    pub ok: u32,
    /// Items that completed with a typed error.
    pub failed: u32,
}

/// A point-in-time view of the pool, served by `status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatusSnapshot {
    /// Worker threads in the pool.
    pub workers: u32,
    /// Bounded queue capacity (per admission class).
    pub queue_capacity: u32,
    /// Jobs currently executing.
    pub running: u32,
    /// Jobs waiting in the queues (both classes).
    pub queued: u32,
    /// Plan requests received (including rejected ones).
    pub submitted: u64,
    /// Jobs that executed to completion.
    pub completed: u64,
    /// Requests answered from the result cache (memory tier).
    pub cache_hits: u64,
    /// Requests that coalesced onto an in-flight duplicate.
    pub coalesced: u64,
    /// Requests rejected by backpressure.
    pub rejected: u64,
    /// Jobs cancelled at their wall-clock budget.
    pub timeouts: u64,
    /// Jobs whose planner run failed.
    pub failed: u64,
    /// Requests answered from the cache's disk tier.
    pub disk_hits: u64,
    /// Entries evicted from the cache's bounded memory tier.
    pub evictions: u64,
    /// Jobs waiting in the interactive queue.
    pub interactive_queued: u32,
    /// Jobs waiting in the bulk queue.
    pub bulk_queued: u32,
    /// Whether the daemon is draining.
    pub shutting_down: bool,
}

/// One decoded server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A completed plan.
    Plan(PlanResponse),
    /// One finished job of a streamed batch.
    BatchItem {
        /// The job's zero-based position in the submitted batch.
        seq: u32,
        /// The job's own outcome; a failed item does not fail the
        /// stream (the frame itself is `ok`).
        result: Result<PlanResponse, ServeError>,
    },
    /// The closing summary of a streamed batch.
    BatchDone(BatchSummary),
    /// A status snapshot.
    Status(StatusSnapshot),
    /// Acknowledgement that the daemon is shutting down.
    Shutdown,
    /// A typed failure.
    Error(ServeError),
}

/// Writes a spec's job fields (everything but the `op`), preserving the
/// pre-v2 field order so existing peers keep decoding `plan` frames.
fn write_job_fields(out: &mut String, spec: &JobSpec) {
    out.push_str("\"circuit\":");
    write_json_str(out, &spec.circuit);
    match spec.method {
        AssignMethod::Dfa { slack } => {
            let _ = write!(out, ",\"method\":\"dfa\",\"slack\":{slack}");
        }
        AssignMethod::Ifa => out.push_str(",\"method\":\"ifa\""),
        AssignMethod::Random { seed } => {
            let _ = write!(out, ",\"method\":\"random\",\"seed\":{seed}");
        }
    }
    let _ = write!(
        out,
        ",\"exchange\":{},\"psi\":{},\"xseed\":{}",
        spec.exchange, spec.psi, spec.exchange_seed
    );
    // Portfolio fields travel only for true multi-start jobs, so
    // pre-portfolio peers keep understanding every K=1 frame. The
    // margin crosses as raw f64 bits — integer-exact, no decimal
    // rendering to round.
    if spec.starts > 1 {
        let _ = write!(
            out,
            ",\"starts\":{},\"prune_margin_bits\":{}",
            spec.starts, spec.prune_margin_bits
        );
        // Cooperative-mode fields travel only for a non-default mode,
        // so every pre-cooperative multi-start frame stays byte-stable.
        if spec.mode != PortfolioMode::Race {
            let _ = write!(
                out,
                ",\"mode\":\"{}\",\"kick_size\":{},\"ladder_ratio_bits\":{}",
                spec.mode.as_str(),
                spec.kick_size,
                spec.ladder_ratio_bits
            );
        }
    }
    // The replan extensions likewise travel only when live, so every
    // pre-replan frame stays byte-identical.
    if f64::from_bits(spec.margin_bits) != 0.0 {
        let _ = write!(out, ",\"margin_bits\":{}", spec.margin_bits);
    }
    if let Some(prev) = &spec.prev {
        out.push_str(",\"prev\":");
        write_json_str(out, prev);
    }
    // The profile flag travels only when set, so pre-profile frames
    // stay byte-identical.
    if spec.profile {
        out.push_str(",\"profile\":true");
    }
    if let Some(ms) = spec.timeout_ms {
        let _ = write!(out, ",\"timeout_ms\":{ms}");
    }
    // The class travels only when non-default, keeping interactive
    // frames byte-identical to pre-class frames.
    if spec.class != JobClass::Interactive {
        let _ = write!(out, ",\"class\":\"{}\"", spec.class);
    }
}

/// Writes a `batch`/`replan` request body: the op, the non-default
/// class, and the job array (per-item class tags are omitted — the
/// request-level class governs every job).
fn write_job_array(out: &mut String, op: &str, class: JobClass, jobs: &[JobSpec]) {
    let _ = write!(out, "{{\"op\":\"{op}\"");
    if class != JobClass::Interactive {
        let _ = write!(out, ",\"class\":\"{class}\"");
    }
    out.push_str(",\"jobs\":[");
    for (index, spec) in jobs.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push('{');
        write_job_fields(
            out,
            &JobSpec {
                class: JobClass::Interactive,
                ..spec.clone()
            },
        );
        out.push('}');
    }
    out.push_str("]}");
}

/// Encodes a request as one frame line (no trailing newline).
#[must_use]
pub fn encode_request(request: &Request) -> String {
    let mut out = String::new();
    match request {
        Request::Plan(spec) => {
            out.push_str("{\"op\":\"plan\",");
            write_job_fields(&mut out, spec);
            out.push('}');
        }
        Request::Batch { class, jobs } => write_job_array(&mut out, "batch", *class, jobs),
        Request::Replan { class, jobs } => write_job_array(&mut out, "replan", *class, jobs),
        Request::Status => out.push_str("{\"op\":\"status\"}"),
        Request::Shutdown => out.push_str("{\"op\":\"shutdown\"}"),
    }
    out
}

/// Decodes the job fields of a `plan` request (or one batch item) from
/// a JSON object.
fn decode_job_fields(json: &Json) -> Result<JobSpec, ServeError> {
    let circuit = json.get("circuit").and_then(Json::as_str).ok_or_else(|| {
        ServeError::new(ErrorKind::BadRequest, "plan requires a string `circuit`")
    })?;
    let mut spec = JobSpec::new(circuit);
    let field_u64 = |name: &str| -> Result<Option<u64>, ServeError> {
        match json.get(name) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                ServeError::new(
                    ErrorKind::BadRequest,
                    format!("`{name}` must be a non-negative integer"),
                )
            }),
        }
    };
    spec.method = match json.get("method").and_then(Json::as_str).unwrap_or("dfa") {
        "dfa" => {
            let slack = field_u64("slack")?.unwrap_or(1);
            let slack = u32::try_from(slack)
                .map_err(|_| ServeError::new(ErrorKind::BadRequest, "`slack` is out of range"))?;
            AssignMethod::Dfa { slack }
        }
        "ifa" => AssignMethod::Ifa,
        "random" => AssignMethod::Random {
            seed: field_u64("seed")?.unwrap_or(42),
        },
        other => {
            return Err(ServeError::new(
                ErrorKind::BadRequest,
                format!("unknown method `{other}` (dfa|ifa|random)"),
            ))
        }
    };
    if let Some(exchange) = json.get("exchange") {
        spec.exchange = exchange.as_bool().ok_or_else(|| {
            ServeError::new(ErrorKind::BadRequest, "`exchange` must be a boolean")
        })?;
    }
    if let Some(psi) = field_u64("psi")? {
        spec.psi = u8::try_from(psi).ok().filter(|p| *p >= 1).ok_or_else(|| {
            ServeError::new(ErrorKind::BadRequest, "`psi` must be between 1 and 255")
        })?;
    }
    if let Some(xseed) = field_u64("xseed")? {
        spec.exchange_seed = xseed;
    }
    if let Some(starts) = field_u64("starts")? {
        spec.starts = u32::try_from(starts)
            .ok()
            .filter(|s| *s >= 1)
            .ok_or_else(|| {
                ServeError::new(
                    ErrorKind::BadRequest,
                    "`starts` must be between 1 and 4294967295",
                )
            })?;
    }
    if let Some(bits) = field_u64("prune_margin_bits")? {
        spec.prune_margin_bits = bits;
    }
    match json.get("mode") {
        None | Some(Json::Null) => {}
        Some(value) => {
            spec.mode = value
                .as_str()
                .and_then(PortfolioMode::parse)
                .ok_or_else(|| {
                    ServeError::new(
                        ErrorKind::BadRequest,
                        "`mode` must be \"race\", \"coop\" or \"temper\"",
                    )
                })?;
        }
    }
    if let Some(kick) = field_u64("kick_size")? {
        spec.kick_size = u32::try_from(kick)
            .ok()
            .filter(|k| *k >= 1)
            .ok_or_else(|| {
                ServeError::new(
                    ErrorKind::BadRequest,
                    "`kick_size` must be between 1 and 4294967295",
                )
            })?;
    }
    if let Some(bits) = field_u64("ladder_ratio_bits")? {
        spec.ladder_ratio_bits = bits;
    }
    if let Some(bits) = field_u64("margin_bits")? {
        spec.margin_bits = bits;
    }
    match json.get("prev") {
        None | Some(Json::Null) => {}
        Some(value) => {
            spec.prev = Some(
                value
                    .as_str()
                    .ok_or_else(|| {
                        ServeError::new(ErrorKind::BadRequest, "`prev` must be a string")
                    })?
                    .to_owned(),
            );
        }
    }
    if let Some(profile) = json.get("profile") {
        spec.profile = profile
            .as_bool()
            .ok_or_else(|| ServeError::new(ErrorKind::BadRequest, "`profile` must be a boolean"))?;
    }
    spec.timeout_ms = field_u64("timeout_ms")?;
    spec.class = decode_class(json)?;
    Ok(spec)
}

/// Decodes an optional `class` tag (defaulting to interactive).
fn decode_class(json: &Json) -> Result<JobClass, ServeError> {
    match json.get("class") {
        None | Some(Json::Null) => Ok(JobClass::Interactive),
        Some(value) => value.as_str().and_then(JobClass::parse_tag).ok_or_else(|| {
            ServeError::new(
                ErrorKind::BadRequest,
                "`class` must be \"interactive\" or \"bulk\"",
            )
        }),
    }
}

/// Decodes one frame line into a request.
///
/// # Errors
///
/// [`ErrorKind::BadFrame`] when the line is not a JSON object;
/// [`ErrorKind::BadRequest`] when it parses but the contents are
/// unusable (missing/unknown op, bad method, out-of-range field).
pub fn decode_request(line: &str) -> Result<Request, ServeError> {
    let json = Json::parse(line)
        .map_err(|m| ServeError::new(ErrorKind::BadFrame, format!("not a valid frame: {m}")))?;
    if !matches!(json, Json::Obj(_)) {
        return Err(ServeError::new(
            ErrorKind::BadFrame,
            "a frame must be a JSON object",
        ));
    }
    let op = json
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::new(ErrorKind::BadRequest, "missing string field `op`"))?;
    match op {
        "status" => Ok(Request::Status),
        "shutdown" => Ok(Request::Shutdown),
        "plan" => Ok(Request::Plan(decode_job_fields(&json)?)),
        "batch" => {
            let (class, jobs) = decode_job_array(&json, "batch")?;
            Ok(Request::Batch { class, jobs })
        }
        "replan" => {
            let (class, jobs) = decode_job_array(&json, "replan")?;
            Ok(Request::Replan { class, jobs })
        }
        other => Err(ServeError::new(
            ErrorKind::BadRequest,
            format!("unknown op `{other}` (plan|batch|replan|status|shutdown)"),
        )),
    }
}

/// Decodes the shared body of a `batch`/`replan` request: the class tag
/// and the bounded job array, with the request-level class landing on
/// every decoded spec.
fn decode_job_array(json: &Json, op: &str) -> Result<(JobClass, Vec<JobSpec>), ServeError> {
    let class = decode_class(json)?;
    let Some(Json::Arr(items)) = json.get("jobs") else {
        return Err(ServeError::new(
            ErrorKind::BadRequest,
            format!("{op} requires an array `jobs`"),
        ));
    };
    if items.is_empty() {
        return Err(ServeError::new(
            ErrorKind::BadRequest,
            format!("{op} requires at least one job"),
        ));
    }
    if items.len() > MAX_BATCH {
        return Err(ServeError::new(
            ErrorKind::BadRequest,
            format!("{op} exceeds the {MAX_BATCH}-job limit"),
        ));
    }
    let mut jobs = Vec::with_capacity(items.len());
    for (index, item) in items.iter().enumerate() {
        if !matches!(item, Json::Obj(_)) {
            return Err(ServeError::new(
                ErrorKind::BadRequest,
                format!("{op} job {index} must be a JSON object"),
            ));
        }
        let mut spec = decode_job_fields(item)
            .map_err(|e| ServeError::new(e.kind, format!("{op} job {index}: {}", e.message)))?;
        spec.class = class;
        jobs.push(spec);
    }
    Ok((class, jobs))
}

/// Writes a plan's payload fields (shared by `plan` responses and batch
/// `item` frames).
fn write_plan_fields(out: &mut String, plan: &PlanResponse) {
    out.push_str("\"cache\":");
    write_json_str(out, &plan.cache);
    let _ = write!(out, ",\"key\":\"{:016x}\",\"name\":", plan.key);
    write_json_str(out, &plan.name);
    out.push_str(",\"report\":");
    write_json_str(out, &plan.report);
    out.push_str(",\"assignment\":");
    write_json_str(out, &plan.assignment);
    let _ = write!(out, ",\"seconds\":{}", plan.seconds);
}

fn write_error_object(out: &mut String, error: &ServeError) {
    out.push_str("{\"kind\":");
    write_json_str(out, error.kind.as_str());
    out.push_str(",\"message\":");
    write_json_str(out, &error.message);
    out.push('}');
}

/// Encodes a response as one frame line (no trailing newline).
#[must_use]
pub fn encode_response(response: &Response) -> String {
    let mut out = String::new();
    match response {
        Response::Plan(plan) => {
            out.push_str("{\"ok\":true,");
            write_plan_fields(&mut out, plan);
            out.push('}');
        }
        Response::BatchItem { seq, result } => {
            // The frame is `ok` either way: a failed item is a valid
            // answer about one job, not a protocol failure.
            let _ = write!(out, "{{\"ok\":true,\"item\":{{\"seq\":{seq},");
            match result {
                Ok(plan) => write_plan_fields(&mut out, plan),
                Err(error) => {
                    out.push_str("\"error\":");
                    write_error_object(&mut out, error);
                }
            }
            out.push_str("}}");
        }
        Response::BatchDone(summary) => {
            let _ = write!(
                out,
                "{{\"ok\":true,\"batch\":{{\"jobs\":{},\"ok\":{},\"failed\":{}}}}}",
                summary.jobs, summary.ok, summary.failed
            );
        }
        Response::Status(s) => {
            let _ = write!(
                out,
                "{{\"ok\":true,\"status\":{{\"workers\":{},\"queue_capacity\":{},\
                 \"running\":{},\"queued\":{},\"submitted\":{},\"completed\":{},\
                 \"cache_hits\":{},\"coalesced\":{},\"rejected\":{},\"timeouts\":{},\
                 \"failed\":{},\"disk_hits\":{},\"evictions\":{},\
                 \"interactive_queued\":{},\"bulk_queued\":{},\"shutting_down\":{}}}}}",
                s.workers,
                s.queue_capacity,
                s.running,
                s.queued,
                s.submitted,
                s.completed,
                s.cache_hits,
                s.coalesced,
                s.rejected,
                s.timeouts,
                s.failed,
                s.disk_hits,
                s.evictions,
                s.interactive_queued,
                s.bulk_queued,
                s.shutting_down
            );
        }
        Response::Shutdown => out.push_str("{\"ok\":true,\"shutdown\":true}"),
        Response::Error(e) => {
            out.push_str("{\"ok\":false,\"error\":");
            write_error_object(&mut out, e);
            out.push('}');
        }
    }
    out
}

/// Decodes a typed error object (`{"kind":..,"message":..}`).
fn decode_error_object(
    error: &Json,
    bad: impl Fn(String) -> ServeError,
) -> Result<ServeError, ServeError> {
    let kind_tag = error
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("error object is missing `kind`".to_owned()))?;
    let message = error
        .get("message")
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_owned();
    let kind = ErrorKind::parse_tag(kind_tag).unwrap_or(ErrorKind::Protocol);
    Ok(ServeError::new(kind, message))
}

/// Decodes a plan payload from a JSON object holding plan fields.
fn decode_plan_fields(
    json: &Json,
    bad: impl Fn(String) -> ServeError,
) -> Result<PlanResponse, ServeError> {
    let field_str = |name: &str| -> Result<String, ServeError> {
        json.get(name)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| bad(format!("plan response is missing string `{name}`")))
    };
    let cache = field_str("cache")?;
    let key = u64::from_str_radix(&field_str("key")?, 16)
        .map_err(|_| bad("plan response has a malformed `key`".to_owned()))?;
    Ok(PlanResponse {
        cache,
        key,
        name: field_str("name")?,
        report: field_str("report")?,
        assignment: field_str("assignment")?,
        seconds: json.get("seconds").and_then(Json::as_f64).unwrap_or(0.0),
    })
}

/// Decodes one frame line into a response.
///
/// # Errors
///
/// [`ErrorKind::Protocol`] when the line is not a well-formed response
/// frame of any known shape.
pub fn decode_response(line: &str) -> Result<Response, ServeError> {
    let bad = |why: String| ServeError::new(ErrorKind::Protocol, why);
    let json = Json::parse(line).map_err(|m| bad(format!("not a valid response frame: {m}")))?;
    let ok = json
        .get("ok")
        .and_then(Json::as_bool)
        .ok_or_else(|| bad("response is missing boolean `ok`".to_owned()))?;
    if !ok {
        let error = json
            .get("error")
            .ok_or_else(|| bad("failure response is missing `error`".to_owned()))?;
        return Ok(Response::Error(decode_error_object(error, bad)?));
    }
    if json.get("shutdown").and_then(Json::as_bool) == Some(true) {
        return Ok(Response::Shutdown);
    }
    if let Some(item) = json.get("item") {
        let seq = item
            .get("seq")
            .and_then(Json::as_u64)
            .and_then(|s| u32::try_from(s).ok())
            .ok_or_else(|| bad("batch item is missing `seq`".to_owned()))?;
        let result = match item.get("error") {
            Some(error) => Err(decode_error_object(error, bad)?),
            None => Ok(decode_plan_fields(item, bad)?),
        };
        return Ok(Response::BatchItem { seq, result });
    }
    if let Some(batch) = json.get("batch") {
        let u32_of = |name: &str| {
            batch
                .get(name)
                .and_then(Json::as_u64)
                .and_then(|v| u32::try_from(v).ok())
                .unwrap_or(0)
        };
        return Ok(Response::BatchDone(BatchSummary {
            jobs: u32_of("jobs"),
            ok: u32_of("ok"),
            failed: u32_of("failed"),
        }));
    }
    if let Some(status) = json.get("status") {
        let u64_of = |name: &str| status.get(name).and_then(Json::as_u64).unwrap_or(0);
        let u32_of = |name: &str| u32::try_from(u64_of(name)).unwrap_or(u32::MAX);
        return Ok(Response::Status(StatusSnapshot {
            workers: u32_of("workers"),
            queue_capacity: u32_of("queue_capacity"),
            running: u32_of("running"),
            queued: u32_of("queued"),
            submitted: u64_of("submitted"),
            completed: u64_of("completed"),
            cache_hits: u64_of("cache_hits"),
            coalesced: u64_of("coalesced"),
            rejected: u64_of("rejected"),
            timeouts: u64_of("timeouts"),
            failed: u64_of("failed"),
            disk_hits: u64_of("disk_hits"),
            evictions: u64_of("evictions"),
            interactive_queued: u32_of("interactive_queued"),
            bulk_queued: u32_of("bulk_queued"),
            shutting_down: status.get("shutting_down").and_then(Json::as_bool) == Some(true),
        }));
    }
    Ok(Response::Plan(decode_plan_fields(&json, bad)?))
}

/// What [`LineReader::next`] produced.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// One complete line (newline stripped).
    Line(String),
    /// The peer closed the connection at a frame boundary.
    Eof,
    /// A read timed out with no complete frame buffered; poll state and
    /// call again.
    Idle,
}

/// Incremental line framer over any [`Read`].
///
/// Carries partial frames across reads, tolerates read timeouts and
/// nonblocking `WouldBlock` (so both a timeout-polling server and the
/// v2 reactor's nonblocking sockets can share it), and survives
/// oversized frames by discarding bytes up to the terminating newline
/// before reporting a single typed [`ErrorKind::Oversized`] error.
#[derive(Debug)]
pub struct LineReader<R> {
    inner: R,
    buffer: Vec<u8>,
    discarding: bool,
}

impl<R: Read> LineReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            buffer: Vec::new(),
            discarding: false,
        }
    }

    /// Produces the next frame, EOF, or idle tick.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Oversized`] once per oversized frame (the
    /// connection stays usable); [`ErrorKind::BadFrame`] for non-UTF-8
    /// lines; [`ErrorKind::Io`] for transport failures, including a
    /// peer that disconnects mid-frame.
    pub fn next_frame(&mut self) -> Result<Frame, ServeError> {
        loop {
            if let Some(pos) = self.buffer.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buffer.drain(..=pos).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                if self.discarding || line.len() > MAX_FRAME {
                    self.discarding = false;
                    return Err(ServeError::new(
                        ErrorKind::Oversized,
                        format!("frame exceeds the {MAX_FRAME}-byte limit"),
                    ));
                }
                let text = String::from_utf8(line).map_err(|_| {
                    ServeError::new(ErrorKind::BadFrame, "frame is not valid UTF-8")
                })?;
                return Ok(Frame::Line(text));
            }
            if self.discarding {
                self.buffer.clear();
            } else if self.buffer.len() > MAX_FRAME + 1 {
                // Only past MAX_FRAME + 1 is the frame *provably*
                // oversized without its newline in sight: a buffer of
                // exactly MAX_FRAME + 1 bytes can still be a maximal
                // frame whose `\r\n` terminator was split across reads
                // (content + `\r` buffered, `\n` still in flight), and
                // the drain path above would rightly accept it.
                self.buffer.clear();
                self.discarding = true;
            }
            let mut chunk = [0u8; 8192];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    if self.buffer.is_empty() && !self.discarding {
                        return Ok(Frame::Eof);
                    }
                    self.buffer.clear();
                    self.discarding = false;
                    return Err(ServeError::new(
                        ErrorKind::Io,
                        "the peer disconnected mid-frame",
                    ));
                }
                Ok(n) => self.buffer.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(Frame::Idle)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Whether a complete line is already buffered (the caller can take
    /// another frame without touching the transport). The reactor uses
    /// this to drain pipelined frames before re-polling.
    #[must_use]
    pub fn has_buffered_line(&self) -> bool {
        self.buffer.contains(&b'\n')
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let specs = [
            Request::Plan(JobSpec::new("quadrant a\nrow 1 2\n")),
            Request::Plan(JobSpec {
                method: AssignMethod::Random { seed: u64::MAX },
                exchange: true,
                psi: 3,
                exchange_seed: 7,
                timeout_ms: Some(250),
                ..JobSpec::new("quadrant b\nrow 3 1 2\n")
            }),
            Request::Plan(JobSpec {
                method: AssignMethod::Ifa,
                ..JobSpec::new("quadrant c\nrow 1\n")
            }),
            Request::Plan(JobSpec {
                exchange: true,
                starts: 8,
                prune_margin_bits: 0.125f64.to_bits(),
                ..JobSpec::new("quadrant d\nrow 2 1\n")
            }),
            Request::Plan(JobSpec {
                exchange: true,
                starts: 6,
                mode: PortfolioMode::Coop,
                kick_size: 7,
                ..JobSpec::new("quadrant d2\nrow 2 1\n")
            }),
            Request::Plan(JobSpec {
                exchange: true,
                starts: 4,
                mode: PortfolioMode::Temper,
                ladder_ratio_bits: 2.0f64.to_bits(),
                ..JobSpec::new("quadrant d3\nrow 1 2\n")
            }),
            Request::Plan(JobSpec {
                class: JobClass::Bulk,
                ..JobSpec::new("quadrant e\nrow 1 2\n")
            }),
            Request::Plan(JobSpec {
                exchange: true,
                profile: true,
                ..JobSpec::new("quadrant e2\nrow 1 2\n")
            }),
            Request::Batch {
                class: JobClass::Bulk,
                jobs: vec![
                    JobSpec {
                        class: JobClass::Bulk,
                        ..JobSpec::new("quadrant f\nrow 1\n")
                    },
                    JobSpec {
                        exchange: true,
                        starts: 4,
                        class: JobClass::Bulk,
                        ..JobSpec::new("quadrant g\nrow 2 1\n")
                    },
                ],
            },
            Request::Batch {
                class: JobClass::Interactive,
                jobs: vec![JobSpec::new("quadrant h\nrow 1\n")],
            },
            Request::Replan {
                class: JobClass::Bulk,
                jobs: vec![
                    JobSpec {
                        exchange: true,
                        prev: Some("assignment i\norder 2 1\n".to_owned()),
                        margin_bits: 0.25f64.to_bits(),
                        class: JobClass::Bulk,
                        ..JobSpec::new("quadrant i\nrow 1 2\n")
                    },
                    JobSpec {
                        exchange: true,
                        class: JobClass::Bulk,
                        ..JobSpec::new("quadrant j\nrow 2 1\n")
                    },
                ],
            },
            Request::Status,
            Request::Shutdown,
        ];
        for request in specs {
            let line = encode_request(&request);
            assert!(!line.contains('\n'), "frames are single lines: {line}");
            assert_eq!(decode_request(&line).unwrap(), request);
        }
    }

    #[test]
    fn responses_round_trip() {
        let plan = PlanResponse {
            cache: "miss".to_owned(),
            key: 0x0123_4567_89ab_cdef,
            name: "demo".to_owned(),
            report: "demo: dfa(n=1) -> ...\norder: 1,2\n".to_owned(),
            assignment: "assignment demo\norder 1,2\n".to_owned(),
            seconds: 0.25,
        };
        let responses = [
            Response::Plan(plan.clone()),
            Response::BatchItem {
                seq: 3,
                result: Ok(PlanResponse {
                    cache: "disk".to_owned(),
                    ..plan
                }),
            },
            Response::BatchItem {
                seq: 9,
                result: Err(ServeError::new(ErrorKind::Timeout, "budget spent")),
            },
            Response::BatchDone(BatchSummary {
                jobs: 10,
                ok: 8,
                failed: 2,
            }),
            Response::Status(StatusSnapshot {
                workers: 4,
                queue_capacity: 64,
                running: 2,
                queued: 3,
                submitted: 10,
                completed: 7,
                cache_hits: 2,
                coalesced: 1,
                rejected: 3,
                timeouts: 1,
                failed: 1,
                disk_hits: 5,
                evictions: 4,
                interactive_queued: 1,
                bulk_queued: 2,
                shutting_down: true,
            }),
            Response::Shutdown,
            Response::Error(ServeError::new(ErrorKind::QueueFull, "queue is full (64)")),
        ];
        for response in responses {
            let line = encode_response(&response);
            assert!(!line.contains('\n'), "frames are single lines: {line}");
            assert_eq!(decode_response(&line).unwrap(), response);
        }
    }

    #[test]
    fn bad_frames_and_bad_requests_are_distinguished() {
        assert_eq!(
            decode_request("this is not json").unwrap_err().kind,
            ErrorKind::BadFrame
        );
        assert_eq!(
            decode_request("[1,2]").unwrap_err().kind,
            ErrorKind::BadFrame
        );
        assert_eq!(
            decode_request("{\"op\":\"fly\"}").unwrap_err().kind,
            ErrorKind::BadRequest
        );
        assert_eq!(
            decode_request("{\"op\":\"plan\"}").unwrap_err().kind,
            ErrorKind::BadRequest
        );
        assert_eq!(
            decode_request("{\"op\":\"plan\",\"circuit\":\"x\",\"psi\":0}")
                .unwrap_err()
                .kind,
            ErrorKind::BadRequest
        );
        assert_eq!(
            decode_request("{\"op\":\"plan\",\"circuit\":\"x\",\"starts\":0}")
                .unwrap_err()
                .kind,
            ErrorKind::BadRequest
        );
        assert_eq!(
            decode_request("{\"op\":\"plan\",\"circuit\":\"x\",\"class\":\"vip\"}")
                .unwrap_err()
                .kind,
            ErrorKind::BadRequest
        );
        assert_eq!(
            decode_request("{\"op\":\"plan\",\"circuit\":\"x\",\"mode\":\"sprint\"}")
                .unwrap_err()
                .kind,
            ErrorKind::BadRequest
        );
        assert_eq!(
            decode_request("{\"op\":\"plan\",\"circuit\":\"x\",\"kick_size\":0}")
                .unwrap_err()
                .kind,
            ErrorKind::BadRequest
        );
    }

    #[test]
    fn malformed_batches_are_bad_requests_with_the_item_named() {
        assert_eq!(
            decode_request("{\"op\":\"batch\"}").unwrap_err().kind,
            ErrorKind::BadRequest
        );
        assert_eq!(
            decode_request("{\"op\":\"batch\",\"jobs\":[]}")
                .unwrap_err()
                .kind,
            ErrorKind::BadRequest
        );
        assert_eq!(
            decode_request("{\"op\":\"batch\",\"jobs\":\"x\"}")
                .unwrap_err()
                .kind,
            ErrorKind::BadRequest
        );
        let err = decode_request("{\"op\":\"batch\",\"jobs\":[{\"circuit\":\"x\"},{\"psi\":1}]}")
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
        assert!(err.message.contains("batch job 1"), "{}", err.message);
    }

    #[test]
    fn the_batch_class_overrides_every_item() {
        // Items never carry their own class tag; the batch-level class
        // lands on each decoded spec.
        let line = "{\"op\":\"batch\",\"class\":\"bulk\",\"jobs\":[{\"circuit\":\"a\"},{\"circuit\":\"b\"}]}";
        let Request::Batch { class, jobs } = decode_request(line).expect("decodes") else {
            panic!("not a batch");
        };
        assert_eq!(class, JobClass::Bulk);
        assert!(jobs.iter().all(|j| j.class == JobClass::Bulk));
    }

    #[test]
    fn single_start_frames_omit_portfolio_fields() {
        // K=1 frames are byte-identical to pre-portfolio frames, so
        // older peers (and golden files) keep working unchanged.
        let line = encode_request(&Request::Plan(JobSpec {
            exchange: true,
            ..JobSpec::new("quadrant a\nrow 1 2\n")
        }));
        assert!(!line.contains("starts"));
        assert!(!line.contains("prune_margin_bits"));
        // The cooperative-mode fields are likewise invisible at the
        // default `race` mode, even on a multi-start frame.
        let race_line = encode_request(&Request::Plan(JobSpec {
            exchange: true,
            starts: 4,
            ..JobSpec::new("quadrant a\nrow 1 2\n")
        }));
        assert!(!race_line.contains("mode"));
        assert!(!race_line.contains("kick_size"));
        assert!(!race_line.contains("ladder_ratio_bits"));
        // The default class is likewise invisible on the wire, and so
        // are the replan extensions when unused.
        assert!(!line.contains("class"));
        assert!(!line.contains("margin_bits"));
        assert!(!line.contains("prev"));
        // The profile flag is invisible unless set.
        assert!(!line.contains("profile"));
        // Multi-start frames carry both, and the margin's bits survive
        // the round trip exactly.
        let spec = JobSpec {
            exchange: true,
            starts: 3,
            prune_margin_bits: 0.1f64.to_bits(),
            ..JobSpec::new("quadrant a\nrow 1 2\n")
        };
        let Request::Plan(decoded) =
            decode_request(&encode_request(&Request::Plan(spec.clone()))).expect("round trip")
        else {
            panic!("not a plan");
        };
        assert_eq!(decoded, spec);
        assert_eq!(
            f64::from_bits(decoded.prune_margin_bits).to_bits(),
            0.1f64.to_bits()
        );
    }

    #[test]
    fn the_line_reader_carries_partial_frames() {
        // A reader that yields the stream in awkward 3-byte pieces.
        struct Drip<'a>(&'a [u8]);
        impl Read for Drip<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let n = self.0.len().min(3).min(buf.len());
                buf[..n].copy_from_slice(&self.0[..n]);
                self.0 = &self.0[n..];
                Ok(n)
            }
        }
        let mut reader = LineReader::new(Drip(b"{\"op\":\"status\"}\r\nnext line\n"));
        assert_eq!(
            reader.next_frame().unwrap(),
            Frame::Line("{\"op\":\"status\"}".to_owned())
        );
        assert_eq!(
            reader.next_frame().unwrap(),
            Frame::Line("next line".to_owned())
        );
        assert_eq!(reader.next_frame().unwrap(), Frame::Eof);
    }

    #[test]
    fn oversized_frames_are_discarded_then_reported_once() {
        let mut stream = vec![b'x'; MAX_FRAME + 10];
        stream.push(b'\n');
        stream.extend_from_slice(b"{\"op\":\"status\"}\n");
        let mut reader = LineReader::new(stream.as_slice());
        assert_eq!(reader.next_frame().unwrap_err().kind, ErrorKind::Oversized);
        // The connection is still usable for the following frame.
        assert_eq!(
            reader.next_frame().unwrap(),
            Frame::Line("{\"op\":\"status\"}".to_owned())
        );
        assert_eq!(reader.next_frame().unwrap(), Frame::Eof);
    }

    /// A reader scripted as explicit segments: each `read` returns
    /// bytes from the current segment only, never merging across the
    /// boundary — precise control over what lands in one read.
    struct Script {
        segments: Vec<Vec<u8>>,
        at: usize,
    }

    impl Script {
        fn new(segments: Vec<Vec<u8>>) -> Self {
            Self { segments, at: 0 }
        }
    }

    impl Read for Script {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            while self.at < self.segments.len() && self.segments[self.at].is_empty() {
                self.at += 1;
            }
            let Some(segment) = self.segments.get_mut(self.at) else {
                return Ok(0);
            };
            let n = segment.len().min(buf.len());
            buf[..n].copy_from_slice(&segment[..n]);
            segment.drain(..n);
            Ok(n)
        }
    }

    #[test]
    fn an_oversized_tail_and_the_next_frame_in_one_read_keep_the_frame() {
        // Recovery invariant: when the discard window ends and the same
        // read also carries the *next* frame, that frame must survive.
        // The oversized junk's tail (`xxxx\n`) and a complete valid
        // frame arrive together in the final read.
        let mut reader = LineReader::new(Script::new(vec![
            vec![b'x'; MAX_FRAME + 100],
            b"xxxx\n{\"op\":\"status\"}\n".to_vec(),
        ]));
        assert_eq!(reader.next_frame().unwrap_err().kind, ErrorKind::Oversized);
        assert_eq!(
            reader.next_frame().unwrap(),
            Frame::Line("{\"op\":\"status\"}".to_owned())
        );
        assert_eq!(reader.next_frame().unwrap(), Frame::Eof);
    }

    #[test]
    fn a_maximal_frame_with_a_split_crlf_terminator_is_not_discarded() {
        // Regression: a frame of exactly MAX_FRAME content bytes ending
        // in `\r\n`, with the `\r` buffered but the `\n` still in
        // flight, sits at MAX_FRAME + 1 buffered bytes. The discard
        // heuristic used to fire at `> MAX_FRAME`, throwing away a
        // frame the drain path accepts (it strips the `\r` before the
        // size check). The reader must wait for the newline instead.
        let mut reader = LineReader::new(Script::new(vec![
            vec![b'y'; MAX_FRAME],
            b"\r".to_vec(),
            b"\n".to_vec(),
        ]));
        match reader.next_frame().unwrap() {
            Frame::Line(line) => {
                assert_eq!(line.len(), MAX_FRAME);
                assert!(line.bytes().all(|b| b == b'y'));
            }
            other => panic!("a maximal CRLF frame must be accepted, got {other:?}"),
        }
        assert_eq!(reader.next_frame().unwrap(), Frame::Eof);

        // One byte more and the frame is provably oversized even with a
        // split terminator: the discard path must still engage.
        let mut reader = LineReader::new(Script::new(vec![
            vec![b'z'; MAX_FRAME + 1],
            b"\r".to_vec(),
            b"\n".to_vec(),
        ]));
        assert_eq!(reader.next_frame().unwrap_err().kind, ErrorKind::Oversized);
        assert_eq!(reader.next_frame().unwrap(), Frame::Eof);
    }

    #[test]
    fn a_mid_frame_disconnect_is_a_typed_io_error() {
        let mut reader = LineReader::new(&b"{\"op\":\"sta"[..]);
        assert_eq!(reader.next_frame().unwrap_err().kind, ErrorKind::Io);
    }

    #[test]
    fn buffered_lines_are_visible_without_touching_the_transport() {
        let mut reader = LineReader::new(&b"{\"op\":\"status\"}\n{\"op\":\"shutdown\"}\n"[..]);
        assert!(!reader.has_buffered_line());
        let _ = reader.next_frame().unwrap();
        assert!(
            reader.has_buffered_line(),
            "the second frame rode in on the first read"
        );
    }
}
