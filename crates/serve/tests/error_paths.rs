//! Protocol error paths: every way a client can misbehave must produce
//! a typed error frame (or a clean close), never a panic, and must
//! leave the daemon serving other traffic.

mod support;

use copack_serve::{ErrorKind, JobSpec, Request, Response, ServeConfig};
use std::io::Write as _;
use std::net::TcpStream;
use support::{circuit_text, TestServer};

fn quick_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 8,
        ..ServeConfig::default()
    }
}

/// Decodes a raw response line and asserts it is a typed error of the
/// given kind.
fn assert_error_frame(line: &str, kind: ErrorKind) {
    match copack_serve::decode_response(line).expect("response frame decodes") {
        Response::Error(e) => assert_eq!(e.kind, kind, "message: {}", e.message),
        other => panic!("expected a {kind:?} error, got {other:?}"),
    }
}

#[test]
fn malformed_frames_get_typed_errors_and_the_connection_survives() {
    let server = TestServer::start(quick_config());
    let mut client = server.client();

    // Not JSON at all.
    let line = client.raw(b"this is not json\n").expect("a response");
    assert_error_frame(&line, ErrorKind::BadFrame);

    // JSON, but not an object.
    let line = client.raw(b"[1,2,3]\n").expect("a response");
    assert_error_frame(&line, ErrorKind::BadFrame);

    // Not UTF-8.
    let line = client
        .raw(b"\xff\xfe{\"op\":\"status\"}\n")
        .expect("a response");
    assert_error_frame(&line, ErrorKind::BadFrame);

    // The same connection still serves valid requests afterwards.
    let status = client.status().expect("connection survived the garbage");
    assert_eq!(status.submitted, 0);

    server.shutdown_and_join();
}

#[test]
fn bad_requests_are_distinguished_from_bad_frames() {
    let server = TestServer::start(quick_config());
    let mut client = server.client();

    // Well-formed JSON, unknown op.
    let line = client.raw(b"{\"op\":\"levitate\"}\n").expect("a response");
    assert_error_frame(&line, ErrorKind::BadRequest);

    // A plan whose circuit text does not parse.
    let err = client
        .plan(&JobSpec::new("this is not a circuit"))
        .expect_err("bad circuit is rejected");
    assert_eq!(err.kind, ErrorKind::BadRequest);

    // A plan with an out-of-range parameter.
    let line = client
        .raw(b"{\"op\":\"plan\",\"circuit\":\"x\",\"psi\":0}\n")
        .expect("a response");
    assert_error_frame(&line, ErrorKind::BadRequest);

    let summary = server.shutdown_and_join();
    // The unparsable circuit was counted but nothing ever executed.
    assert_eq!(summary.status.submitted, 1);
    assert_eq!(summary.status.completed, 0);
}

#[test]
fn oversized_frames_are_rejected_without_killing_the_connection() {
    let server = TestServer::start(quick_config());
    let mut client = server.client();

    let mut frame = vec![b'x'; copack_serve::MAX_FRAME + 1];
    frame.push(b'\n');
    let line = client.raw(&frame).expect("a response");
    assert_error_frame(&line, ErrorKind::Oversized);

    // The next frame on the same connection is served normally.
    let status = client.status().expect("connection survived the flood");
    assert!(!status.shutting_down);

    server.shutdown_and_join();
}

#[test]
fn a_mid_frame_disconnect_does_not_take_the_daemon_down() {
    let server = TestServer::start(quick_config());

    // Write half a frame and slam the connection.
    {
        let mut stream = TcpStream::connect(server.addr).expect("connect");
        stream
            .write_all(b"{\"op\":\"plan\",\"circ")
            .expect("partial write");
        // Dropped here without a newline.
    }

    // A fresh connection still gets full service, including real work.
    let mut client = server.client();
    let plan = client
        .plan(&JobSpec::new(circuit_text(1)))
        .expect("daemon still plans after a peer vanished mid-frame");
    assert_eq!(plan.cache, "miss");

    let summary = server.shutdown_and_join();
    assert_eq!(summary.status.completed, 1);
}

#[test]
fn double_shutdown_on_one_connection_is_a_typed_error() {
    let server = TestServer::start(quick_config());
    let mut client = server.client();

    client.shutdown().expect("first shutdown is acknowledged");
    let err = client
        .shutdown()
        .expect_err("second shutdown is refused, not dropped");
    assert_eq!(err.kind, ErrorKind::ShuttingDown);

    drop(client);
    server.join();
}

#[test]
fn requests_on_a_pre_opened_connection_during_drain_get_typed_errors() {
    let server = TestServer::start(quick_config());
    // Open BEFORE the shutdown so the daemon already owns the socket.
    let mut bystander = server.client();
    let mut closer = server.client();

    closer.shutdown().expect("shutdown acknowledged");

    // The bystander's next requests land in the grace window: typed
    // `shutting_down` errors, not a slammed socket.
    let err = bystander
        .plan(&JobSpec::new(circuit_text(1)))
        .expect_err("no new jobs during drain");
    assert_eq!(err.kind, ErrorKind::ShuttingDown);
    let err = bystander.shutdown().expect_err("already draining");
    assert_eq!(err.kind, ErrorKind::ShuttingDown);

    drop(bystander);
    drop(closer);
    let summary = server.join();
    assert!(summary.status.shutting_down);
}

#[test]
fn unknown_ops_do_not_disturb_concurrent_valid_traffic() {
    let server = TestServer::start(quick_config());
    let mut noisy = server.client();
    let mut polite = server.client();

    for _ in 0..5 {
        let line = noisy.raw(b"{\"op\":\"nope\"}\n").expect("a response");
        assert_error_frame(&line, ErrorKind::BadRequest);
        let plan = polite
            .plan(&JobSpec::new(circuit_text(1)))
            .expect("valid traffic unaffected");
        assert!(matches!(plan.cache.as_str(), "miss" | "hit"));
    }
    // Round-trip symmetry sanity: a request the client would send is
    // decodable by the server-side codec.
    let encoded = copack_serve::encode_request(&Request::Status);
    assert!(copack_serve::decode_request(&encoded).is_ok());

    let summary = server.shutdown_and_join();
    assert_eq!(summary.status.completed, 1, "four of five plans were hits");
    assert_eq!(summary.status.cache_hits, 4);
}
