//! Cache-key separation: distinct instances and distinct configurations
//! must never share a key on the paper's Table 1 circuits, and the key
//! must be insensitive to serialization noise (the complementary
//! invariance properties live in `copack-io`'s cache_key tests).

mod support;

use copack_core::AssignMethod;
use copack_geom::Quadrant;
use copack_io::parse_quadrant;
use copack_serve::{cache_key, JobSpec};
use proptest::prelude::*;
use std::collections::HashMap;

fn table1_quadrants() -> Vec<(String, Quadrant)> {
    (1..=5)
        .map(|n| parse_quadrant(&support::circuit_text(n)).expect("Table 1 circuits parse"))
        .collect()
}

/// Every result-affecting configuration we expose through the protocol.
fn config_grid() -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for method in [
        AssignMethod::Dfa { slack: 1 },
        AssignMethod::Dfa { slack: 2 },
        AssignMethod::Ifa,
        AssignMethod::Random { seed: 42 },
        AssignMethod::Random { seed: 43 },
    ] {
        specs.push(JobSpec {
            method,
            ..JobSpec::new("")
        });
        for (psi, xseed) in [(1u8, 0xC0DEu64), (2, 0xC0DE), (1, 7), (4, 7)] {
            specs.push(JobSpec {
                method,
                exchange: true,
                psi,
                exchange_seed: xseed,
                ..JobSpec::new("")
            });
        }
    }
    specs
}

#[test]
fn no_two_circuit_config_pairs_collide() {
    let quadrants = table1_quadrants();
    let specs = config_grid();
    let mut seen: HashMap<u64, String> = HashMap::new();
    for (name, quadrant) in &quadrants {
        for (i, spec) in specs.iter().enumerate() {
            let key = cache_key(spec, quadrant);
            let label = format!("{name} / config {i}");
            if let Some(previous) = seen.insert(key, label.clone()) {
                panic!("key collision: `{previous}` and `{label}` share {key:016x}");
            }
        }
    }
    // 5 circuits × (5 methods × (1 + 4 exchange variants)) distinct keys.
    assert_eq!(seen.len(), 5 * 5 * 5);
}

#[test]
fn the_same_pair_always_reproduces_its_key() {
    let quadrants = table1_quadrants();
    let specs = config_grid();
    for (_, quadrant) in &quadrants {
        for spec in &specs {
            assert_eq!(cache_key(spec, quadrant), cache_key(spec, quadrant));
        }
    }
}

/// An arbitrary protocol-reachable spec over the Table 1 instances.
fn spec_strategy() -> impl Strategy<Value = (usize, JobSpec)> {
    (
        (0usize..5, 0u8..3, 0u32..=3, any::<u64>()),
        (0u8..2, 1u8..=8, any::<u64>()),
    )
        .prop_map(
            |((circuit, selector, slack, seed), (exchange, psi, xseed))| {
                let method = match selector {
                    0 => AssignMethod::Dfa { slack },
                    1 => AssignMethod::Ifa,
                    _ => AssignMethod::Random { seed },
                };
                (
                    circuit,
                    JobSpec {
                        method,
                        exchange: exchange == 1,
                        psi,
                        exchange_seed: xseed,
                        ..JobSpec::new("")
                    },
                )
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn distinct_work_never_collides_and_identical_work_always_matches(
        a in spec_strategy(),
        b in spec_strategy(),
    ) {
        let (ia, sa) = a;
        let (ib, sb) = b;
        let quadrants = table1_quadrants();
        let ka = cache_key(&sa, &quadrants[ia].1);
        let kb = cache_key(&sb, &quadrants[ib].1);

        // Normalise away fields that cannot affect the result, then
        // decide whether the two submissions describe the same work.
        let canon = |spec: &JobSpec| {
            let mut c = spec.clone();
            c.timeout_ms = None;
            if !c.exchange {
                c.psi = 1;
                c.exchange_seed = 0;
            }
            c
        };
        if ia == ib && canon(&sa) == canon(&sb) {
            prop_assert!(ka == kb, "identical work must share a key");
        } else {
            prop_assert!(ka != kb, "distinct work must not collide");
        }
    }
}
