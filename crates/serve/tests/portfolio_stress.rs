//! Portfolio-shaped load on the daemon: concurrent mixed-width
//! submissions against a deliberately tiny pool must drown in **typed**
//! backpressure — never a panic, a hung connection, or a cached
//! failure — and the portfolio parameters must partition the result
//! cache exactly as documented (width and margin are load-bearing only
//! when `starts > 1`).

mod support;

use copack_serve::{Client, ErrorKind, JobSpec, ServeConfig};
use std::time::Duration;
use support::{circuit_text, wait_for_status, TestServer};

fn portfolio_spec(circuit: usize, starts: u32) -> JobSpec {
    JobSpec {
        exchange: true,
        starts,
        ..JobSpec::new(circuit_text(circuit))
    }
}

#[test]
fn a_burst_of_mixed_width_portfolios_fails_typed_and_leaves_no_poison() {
    // One stalled worker + a one-slot queue: everything past the first
    // two distinct jobs must be rejected while the stall lasts.
    let server = TestServer::start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        worker_stall: Some(Duration::from_millis(500)),
        ..ServeConfig::default()
    });
    let addr = server.addr;
    let submit = |circuit: usize, starts: u32| {
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            client.plan(&portfolio_spec(circuit, starts))
        })
    };

    let mut monitor = server.client();
    let blocker = submit(1, 2);
    wait_for_status(&mut monitor, "the blocker to occupy the worker", |s| {
        s.running == 1
    });
    let filler = submit(2, 2);
    wait_for_status(&mut monitor, "the filler to occupy the queue slot", |s| {
        s.queued == 1
    });

    // The burst: six distinct jobs mixing circuits and portfolio widths,
    // all submitted inside the stall window.
    let burst: Vec<_> = [(1, 4), (2, 4), (3, 2), (3, 4), (1, 8), (2, 8)]
        .into_iter()
        .map(|(circuit, starts)| submit(circuit, starts))
        .collect();
    for handle in burst {
        let err = handle
            .join()
            .expect("client threads never panic")
            .expect_err("a full queue must reject");
        assert_eq!(err.kind, ErrorKind::QueueFull, "{err:?}");
    }

    // The admitted jobs still complete — rejection poisoned nothing.
    blocker
        .join()
        .expect("client thread")
        .expect("the blocker completes");
    filler
        .join()
        .expect("client thread")
        .expect("the filler completes");

    // A previously rejected spec succeeds once the pool drains: the
    // backpressure error was never cached against its key.
    let retried = server
        .client()
        .plan(&portfolio_spec(1, 4))
        .expect("the retry executes");
    assert_eq!(retried.cache, "miss");
    assert!(
        retried.report.contains("portfolio K=4 winner start "),
        "{}",
        retried.report
    );

    let summary = server.shutdown_and_join();
    assert_eq!(summary.status.completed, 3, "blocker, filler, retry");
    assert_eq!(summary.status.rejected, 6, "the whole burst bounced");
}

#[test]
fn the_cache_key_separates_single_start_from_portfolio_jobs() {
    let server = TestServer::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let mut client = server.client();

    let single = client.plan(&portfolio_spec(1, 1)).expect("K=1 plans");
    let wide = client.plan(&portfolio_spec(1, 4)).expect("K=4 plans");
    assert_ne!(single.key, wide.key, "K=1 and K=4 must not share a key");
    assert!(!single.report.contains("portfolio"), "{}", single.report);

    // Same width resubmitted: a hit on the same key, same bytes.
    let again = client.plan(&portfolio_spec(1, 4)).expect("K=4 replans");
    assert_eq!(again.cache, "hit");
    assert_eq!(again.key, wide.key);
    assert_eq!(again.report, wide.report);

    // The margin is load-bearing at K > 1 ...
    let tighter = client
        .plan(&JobSpec {
            prune_margin_bits: 0.05f64.to_bits(),
            ..portfolio_spec(1, 4)
        })
        .expect("tighter margin plans");
    assert_ne!(tighter.key, wide.key);

    // ... and inert at K = 1, where no pruning can happen.
    let single_margin = client
        .plan(&JobSpec {
            prune_margin_bits: 0.05f64.to_bits(),
            ..portfolio_spec(1, 1)
        })
        .expect("K=1 with a margin plans");
    assert_eq!(single_margin.cache, "hit");
    assert_eq!(single_margin.key, single.key);

    server.shutdown_and_join();
}

#[test]
fn a_timed_out_portfolio_is_typed_and_not_cached() {
    let server = TestServer::start(ServeConfig {
        workers: 1,
        // The stall eats the whole budget before execution starts, so
        // the portfolio's cooperative cancel fires deterministically.
        worker_stall: Some(Duration::from_millis(300)),
        ..ServeConfig::default()
    });
    let mut client = server.client();

    let doomed = JobSpec {
        timeout_ms: Some(50),
        ..portfolio_spec(2, 8)
    };
    let err = client
        .plan(&doomed)
        .expect_err("a spent budget cannot finish an 8-start portfolio");
    assert_eq!(err.kind, ErrorKind::Timeout, "{err:?}");

    // The timeout is not part of the key, so the retry targets the same
    // cache entry — and must execute fresh, not replay the failure.
    let retried = client
        .plan(&JobSpec {
            timeout_ms: None,
            ..doomed
        })
        .expect("an unbounded retry completes");
    assert_eq!(retried.cache, "miss");
    assert!(
        retried.report.contains("portfolio K=8 winner start "),
        "{}",
        retried.report
    );

    server.shutdown_and_join();
}
