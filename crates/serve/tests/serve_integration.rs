//! End-to-end pool semantics: cache-hit bit-identity with the local
//! executor, explicit backpressure, duplicate coalescing, and wall-clock
//! timeouts.

mod support;

use copack_core::CancelToken;
use copack_io::parse_quadrant;
use copack_obs::Event;
use copack_serve::{execute_job, ErrorKind, JobSpec, ServeConfig};
use std::time::Duration;
use support::{circuit_text, wait_for_status, TestServer};

#[test]
fn a_repeated_job_is_a_cache_hit_with_bit_identical_bytes() {
    let server = TestServer::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let spec = JobSpec {
        exchange: true,
        psi: 2,
        ..JobSpec::new(circuit_text(1))
    };

    // What the one-shot pipeline produces locally, same executor.
    let (name, quadrant) = parse_quadrant(&spec.circuit).expect("circuit parses");
    let local =
        execute_job(&spec, &name, &quadrant, &CancelToken::new()).expect("local run succeeds");

    let mut client = server.client();
    let first = client.plan(&spec).expect("first submission plans");
    let second = client.plan(&spec).expect("second submission plans");

    assert_eq!(first.cache, "miss");
    assert_eq!(second.cache, "hit");
    assert_eq!(first.key, second.key);

    // Determinism across the service boundary: daemon bytes == local
    // bytes, and the hit replays the miss exactly.
    assert_eq!(first.assignment, local.assignment);
    assert_eq!(second.assignment, first.assignment);
    assert_eq!(first.report, local.report);
    assert_eq!(second.report, first.report);

    let summary = server.shutdown_and_join();
    assert_eq!(summary.status.submitted, 2);
    assert_eq!(summary.status.completed, 1, "the hit ran nothing");
    assert_eq!(summary.status.cache_hits, 1);
}

#[test]
fn a_saturated_queue_rejects_with_a_typed_backpressure_error() {
    // One stalled worker + a one-slot queue: the third distinct job must
    // be rejected, not buffered.
    let server = TestServer::start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        worker_stall: Some(Duration::from_millis(600)),
        ..ServeConfig::default()
    });

    let addr = server.addr;
    let submit = |n: usize| {
        std::thread::spawn(move || {
            let mut client = copack_serve::Client::connect(addr).expect("connect");
            client.plan(&JobSpec::new(circuit_text(n)))
        })
    };

    let mut monitor = server.client();
    let job_a = submit(1);
    wait_for_status(&mut monitor, "job A to occupy the worker", |s| {
        s.running == 1
    });
    let job_b = submit(2);
    wait_for_status(&mut monitor, "job B to occupy the queue slot", |s| {
        s.queued == 1
    });

    // Queue full: an immediate typed rejection.
    let mut client = server.client();
    let err = client
        .plan(&JobSpec::new(circuit_text(3)))
        .expect_err("third distinct job is rejected");
    assert_eq!(err.kind, ErrorKind::QueueFull);

    // The admitted jobs still complete normally.
    let a = job_a.join().expect("no panic").expect("job A completes");
    let b = job_b.join().expect("no panic").expect("job B completes");
    assert_eq!(a.cache, "miss");
    assert_eq!(b.cache, "miss");

    let summary = server.shutdown_and_join();
    assert_eq!(summary.status.rejected, 1);
    assert_eq!(summary.status.completed, 2);
    assert!(summary
        .events
        .iter()
        .any(|e| matches!(e, Event::ServeJob { outcome, .. } if outcome == "rejected")));
}

#[test]
fn concurrent_duplicates_coalesce_onto_one_computation() {
    let server = TestServer::start(ServeConfig {
        workers: 1,
        worker_stall: Some(Duration::from_millis(600)),
        ..ServeConfig::default()
    });
    let spec = JobSpec::new(circuit_text(2));

    let addr = server.addr;
    let first = {
        let spec = spec.clone();
        std::thread::spawn(move || {
            let mut client = copack_serve::Client::connect(addr).expect("connect");
            client.plan(&spec)
        })
    };
    // Only submit the duplicate once the original is demonstrably in
    // flight (the stalled worker holds it for 600 ms).
    let mut monitor = server.client();
    wait_for_status(&mut monitor, "the original to start executing", |s| {
        s.running == 1
    });

    let mut client = server.client();
    let duplicate = client.plan(&spec).expect("duplicate completes");
    let original = first.join().expect("no panic").expect("original completes");

    assert_eq!(original.cache, "miss");
    assert_eq!(duplicate.cache, "coalesced");
    assert_eq!(duplicate.key, original.key);
    assert_eq!(duplicate.assignment, original.assignment);

    let summary = server.shutdown_and_join();
    assert_eq!(summary.status.completed, 1, "one computation served both");
    assert_eq!(summary.status.coalesced, 1);
    assert_eq!(summary.status.cache_hits, 0);
}

#[test]
fn a_job_over_its_wall_clock_budget_times_out_and_can_be_retried() {
    let server = TestServer::start(ServeConfig {
        workers: 1,
        // The stall eats the whole budget before execution starts, so
        // the cooperative token fires deterministically.
        worker_stall: Some(Duration::from_millis(300)),
        ..ServeConfig::default()
    });
    let spec = JobSpec {
        exchange: true,
        timeout_ms: Some(50),
        ..JobSpec::new(circuit_text(1))
    };

    let mut client = server.client();
    let err = client.plan(&spec).expect_err("budget exceeded");
    assert_eq!(err.kind, ErrorKind::Timeout);

    // Timeouts are not cached: the retry gets a fresh miss (and with a
    // sane budget, completes).
    let retry = client
        .plan(&JobSpec {
            timeout_ms: Some(30_000),
            ..spec
        })
        .expect("retry with a real budget completes");
    assert_eq!(retry.cache, "miss");

    let summary = server.shutdown_and_join();
    assert_eq!(summary.status.timeouts, 1);
    assert_eq!(summary.status.completed, 1);
    assert!(summary
        .events
        .iter()
        .any(|e| matches!(e, Event::ServeJob { outcome, .. } if outcome == "timeout")));
}

#[test]
fn the_summary_closes_with_a_pool_event_that_matches_the_counters() {
    let server = TestServer::start(ServeConfig {
        workers: 3,
        queue_capacity: 7,
        ..ServeConfig::default()
    });
    let mut client = server.client();
    for n in [1, 1, 2] {
        client.plan(&JobSpec::new(circuit_text(n))).expect("plans");
    }

    let summary = server.shutdown_and_join();
    let Some(Event::ServePool {
        workers,
        queue_capacity,
        submitted,
        completed,
        cache_hits,
        ..
    }) = summary.events.last()
    else {
        panic!("the last event must be the pool summary");
    };
    assert_eq!(*workers, 3);
    assert_eq!(*queue_capacity, 7);
    assert_eq!(*submitted, 3);
    assert_eq!(*completed, 2);
    assert_eq!(*cache_hits, 1);
    // One ServeJob per plan request precedes it.
    let jobs = summary
        .events
        .iter()
        .filter(|e| matches!(e, Event::ServeJob { .. }))
        .count();
    assert_eq!(jobs, 3);
}
