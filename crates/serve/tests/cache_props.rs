//! Property tests for the tiered result cache: the memory tier must
//! behave exactly like a reference LRU model under any access sequence,
//! the byte bound must hold at every step, and the disk tier must
//! round-trip arbitrary payloads byte-identically across instances.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use copack_serve::{CacheConfig, JobOutput, Lookup, ResultCache};

/// An output whose memory-tier accounting is exactly `bytes`.
fn sized_output(bytes: usize) -> Arc<JobOutput> {
    Arc::new(JobOutput {
        name: String::new(),
        report: "r".repeat(bytes),
        assignment: String::new(),
    })
}

/// Reference LRU over (key, bytes): least recently used at the front,
/// same strict-bound semantics the cache documents (an entry larger
/// than the whole bound is not retained).
#[derive(Default)]
struct ModelLru {
    entries: VecDeque<(u64, usize)>,
    total: usize,
}

impl ModelLru {
    fn touch(&mut self, key: u64) -> bool {
        let Some(at) = self.entries.iter().position(|&(k, _)| k == key) else {
            return false;
        };
        let entry = self.entries.remove(at).expect("position exists");
        self.entries.push_back(entry);
        true
    }

    fn insert(&mut self, key: u64, bytes: usize, limit: usize) {
        self.entries.push_back((key, bytes));
        self.total += bytes;
        if limit > 0 {
            while self.total > limit {
                let (_, evicted) = self
                    .entries
                    .pop_front()
                    .expect("over-limit model is nonempty");
                self.total -= evicted;
            }
        }
    }

    fn keys(&self) -> Vec<u64> {
        self.entries.iter().map(|&(k, _)| k).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// After every operation the cache's resident set, recency order,
    /// and byte accounting match the reference model, and the byte
    /// bound is never exceeded.
    #[test]
    fn the_memory_tier_is_exactly_an_lru_over_payload_bytes(
        limit in 8usize..64,
        ops in prop::collection::vec((0u64..12, 1usize..24), 1..200),
    ) {
        let cache = ResultCache::with_config(&CacheConfig {
            mem_limit_bytes: limit,
            disk_dir: None,
        }).expect("memory-only cache opens");
        let mut model = ModelLru::default();

        for (key, bytes) in ops {
            match cache.lookup(key) {
                Lookup::Hit(output) => {
                    prop_assert!(model.touch(key), "cache hit on key {key} absent from model");
                    // A hit serves the bytes it was inserted with, not
                    // the current op's.
                    prop_assert_eq!(
                        output.report.len(),
                        model.entries.back().expect("just touched").1
                    );
                }
                Lookup::Miss => {
                    prop_assert!(!model.touch(key), "cache miss on key {key} present in model");
                    cache.fulfil(key, Ok(sized_output(bytes)));
                    model.insert(key, bytes, limit);
                }
                other => prop_assert!(false, "serial access never sees {other:?}"),
            }
            prop_assert_eq!(cache.resident_mem_keys_lru(), model.keys());
            let stats = cache.stats();
            prop_assert_eq!(stats.mem_bytes as usize, model.total);
            prop_assert!(
                stats.mem_bytes as usize <= limit,
                "resident bytes {} exceed the bound {limit}",
                stats.mem_bytes
            );
        }
    }

    /// Whatever bytes go in come out: store on one instance, read on a
    /// fresh instance over the same directory (the restart path), and
    /// the payload is byte-identical — including exotic unicode and
    /// embedded newlines, which stress the length-prefixed format.
    #[test]
    fn the_disk_tier_round_trips_arbitrary_payloads_across_instances(
        key in any::<u64>(),
        // `[ -~]` is the full printable-ASCII range; a raw newline and a
        // non-ASCII scalar stress the length-prefixed on-disk format.
        name in "[ -~\u{1F980}]{0,40}",
        report in "[ -~\n\u{1F980}]{0,200}",
        assignment in "[ -~\n\u{1F980}]{0,200}",
    ) {
        static CASE: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "copack-cache-props-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = CacheConfig {
            mem_limit_bytes: 0,
            disk_dir: Some(dir.clone()),
        };

        let output = Arc::new(JobOutput { name, report, assignment });
        let writer = ResultCache::with_config(&config).expect("writer opens");
        prop_assert!(matches!(writer.lookup(key), Lookup::Miss));
        writer.fulfil(key, Ok(Arc::clone(&output)));

        let reader = ResultCache::with_config(&config).expect("reader opens");
        prop_assert_eq!(reader.stats().disk_entries, 1);
        match reader.lookup(key) {
            Lookup::DiskHit(loaded) => prop_assert_eq!(&*loaded, &*output),
            other => prop_assert!(false, "expected a disk hit, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
