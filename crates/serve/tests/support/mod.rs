//! Shared scaffolding for the serve integration tests: an in-process
//! daemon on an ephemeral port plus Table 1 circuit texts.
//!
//! Each integration test binary compiles this module independently and
//! uses a different subset of it.
#![allow(dead_code)]

use copack_serve::{Client, ServeConfig, ServeSummary, Server};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// A daemon running on its own thread, bound to an ephemeral port.
///
/// Dropping an un-joined `TestServer` (a panicking test, an early
/// return) shuts the daemon down best-effort and joins its thread, so
/// failing tests never leak a listening daemon into the rest of the
/// suite.
pub struct TestServer {
    /// The bound address to connect clients to.
    pub addr: SocketAddr,
    handle: Option<std::thread::JoinHandle<std::io::Result<ServeSummary>>>,
}

impl TestServer {
    /// Binds and runs a daemon with the given pool configuration.
    pub fn start(config: ServeConfig) -> Self {
        let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
        let addr = server.local_addr().expect("bound address");
        let handle = std::thread::spawn(move || server.run());
        Self {
            addr,
            handle: Some(handle),
        }
    }

    /// A fresh connection to the daemon.
    pub fn client(&self) -> Client {
        Client::connect(self.addr).expect("connect to test daemon")
    }

    /// Sends `shutdown` on a fresh connection and joins the daemon.
    pub fn shutdown_and_join(self) -> ServeSummary {
        self.client().shutdown().expect("clean shutdown");
        self.join()
    }

    /// Joins the daemon (something else already initiated shutdown).
    pub fn join(mut self) -> ServeSummary {
        self.handle
            .take()
            .expect("the daemon is joined at most once")
            .join()
            .expect("daemon thread must not panic")
            .expect("daemon run must not fail")
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        let Some(handle) = self.handle.take() else {
            return; // Already joined the normal way.
        };
        // Best-effort: the daemon may already be draining or gone, and a
        // Drop during a panic must not panic again.
        if let Ok(mut client) = Client::connect(self.addr) {
            let _ = client.shutdown();
        }
        let _ = handle.join();
    }
}

/// The `.copack` text of Table 1 circuit `n` (1-based).
pub fn circuit_text(n: usize) -> String {
    let circuit = copack_gen::circuit(n);
    let quadrant = circuit.build_quadrant().expect("Table 1 circuits build");
    copack_io::write_quadrant(&circuit.name, &quadrant)
}

/// Polls `predicate` against fresh status snapshots until it holds, or
/// panics after two seconds — used to sequence concurrent submissions
/// deterministically.
pub fn wait_for_status(
    client: &mut Client,
    what: &str,
    predicate: impl Fn(&copack_serve::StatusSnapshot) -> bool,
) {
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        let status = client.status().expect("status while waiting");
        if predicate(&status) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last status: {status:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}
