//! The in-tree predictor: rank statistics for successive halving.
//!
//! No external ML dependency (the workspace is vendored-std-only), and
//! none is needed: successive halving only requires a *ranking* of
//! candidates from cheap observations, and Spearman rank correlation
//! quantifies after the fact how well the early ranking predicted the
//! final one — the number `copack tune --metrics` reports so a user can
//! judge whether the early-stop budget was trustworthy.

/// Average ranks of `values` (1-based; ties share their average rank),
/// in input order. `NaN`-free inputs expected; ties are exact float
/// equality.
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]).then(a.cmp(&b)));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share the average of ranks i+1..=j+1.
        let avg = (i + 1 + j + 1) as f64 / 2.0;
        for &idx in &order[i..=j] {
            out[idx] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank-correlation coefficient between two samples.
///
/// Returns 0 when either sample is constant or shorter than 2 (no
/// ranking information either way).
#[must_use]
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sample length mismatch");
    if a.len() < 2 {
        return 0.0;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    let n = a.len() as f64;
    let mean = (n + 1.0) / 2.0;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (x, y) in ra.iter().zip(&rb) {
        cov += (x - mean) * (y - mean);
        var_a += (x - mean).powi(2);
        var_b += (y - mean).powi(2);
    }
    if var_a == 0.0 || var_b == 0.0 {
        return 0.0;
    }
    cov / (var_a.sqrt() * var_b.sqrt())
}

/// One successive-halving cut: keeps the better-scoring half.
///
/// `scored` pairs candidate ids with their (early) scores — lower is
/// better. Keeps `ceil(n/2)`, at least `min_keep`; ties break toward
/// the **lower candidate id**, which is what makes the cut — and hence
/// the whole tuning run — deterministic across thread counts and
/// reruns. The returned ids are sorted ascending.
#[must_use]
pub fn halve(scored: &[(usize, f64)], min_keep: usize) -> Vec<usize> {
    let mut order: Vec<&(usize, f64)> = scored.iter().collect();
    order.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    let keep = scored.len().div_ceil(2).max(min_keep).min(scored.len());
    let mut ids: Vec<usize> = order[..keep].iter().map(|s| s.0).collect();
    ids.sort_unstable();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spearman_matches_hand_values() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 4.0, 6.0, 8.0, 10.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        let rev: Vec<f64> = b.iter().rev().copied().collect();
        assert!((spearman(&a, &rev) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties_and_degenerate_input() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [5.0, 5.0, 6.0, 7.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(spearman(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
        assert_eq!(spearman(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn ranks_average_over_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 10.0]), vec![1.5, 3.0, 1.5]);
    }

    #[test]
    fn halving_keeps_the_better_half_deterministically() {
        let scored = [(0, 5.0), (1, 1.0), (2, 3.0), (3, 1.0), (4, 9.0)];
        // ceil(5/2) = 3: costs 1.0 (id 1), 1.0 (id 3), 3.0 (id 2).
        assert_eq!(halve(&scored, 1), vec![1, 2, 3]);
        // min_keep can widen the cut.
        assert_eq!(halve(&scored, 4), vec![0, 1, 2, 3]);
        assert_eq!(halve(&scored, 10), vec![0, 1, 2, 3, 4]);
    }
}
