//! One seeded, journaled, replayable trial.

use copack_core::{derive_seed, dfa, exchange_portfolio_traced, ExchangeConfig, PortfolioConfig};
use copack_geom::{Quadrant, StackConfig};
use copack_io::ClassConfig;
use copack_obs::{early_signals, EarlySignals, TraceBuffer};

use crate::TuneError;

/// The measured outcome of one trial run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome {
    /// Best Eq. 3 cost the portfolio reached (its winner's cost).
    pub cost: f64,
    /// Early signals condensed from the trial's full trace.
    pub signals: EarlySignals,
    /// Temperature steps each start actually ran.
    pub steps: usize,
}

/// Runs trial point `point_index` of a space against one quadrant.
///
/// The trial anneals a `K`-start portfolio under the point's schedule,
/// weights, and portfolio knobs, starting from the deterministic DFA
/// order, with the full trace captured for signal extraction.
/// `prefix_steps` truncates the schedule via `Schedule::prefix` — the
/// successive-halving early rounds — and `None` runs it to the end.
///
/// Determinism contract: the trial's exchange seed is
/// `derive_seed(base_seed, point_index)` and everything downstream is
/// already deterministic (seeded annealer, thread-invariant trace
/// merge, single-threaded inner portfolio), so a trial is exactly
/// replayable from `(quadrant, point, base_seed)` alone — regardless of
/// which tuner worker thread ran it, in which order, or how many
/// workers there were.
pub fn run_trial(
    quadrant: &Quadrant,
    stack: &StackConfig,
    point: &ClassConfig,
    base_seed: u64,
    point_index: u32,
    prefix_steps: Option<usize>,
) -> Result<TrialOutcome, TuneError> {
    let mut config = ExchangeConfig::default();
    let mut portfolio = PortfolioConfig::default();
    point.apply(&mut config, &mut portfolio);
    config.seed = derive_seed(base_seed, point_index);
    if let Some(steps) = prefix_steps {
        config.schedule = config.schedule.prefix(steps);
    }
    // Parallelism belongs to the tuner (across trials), never inside a
    // trial: a single-threaded portfolio keeps each trial cheap to
    // schedule and its trace merge trivially ordered.
    portfolio.threads = 1;

    let initial = dfa(quadrant, 1)?;
    let mut trace = TraceBuffer::new();
    let result =
        exchange_portfolio_traced(quadrant, &initial, stack, &config, &portfolio, &mut trace)?;
    let events = trace.events();
    Ok(TrialOutcome {
        cost: result.result.stats.final_cost,
        signals: early_signals(events),
        steps: config.schedule.temperature_steps(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_io::classify_quadrant;

    fn instance() -> (Quadrant, StackConfig) {
        let c = copack_gen::circuit(1);
        (c.build_quadrant().unwrap(), c.stack().unwrap())
    }

    #[test]
    fn trials_are_replayable_from_their_seed() {
        let (q, stack) = instance();
        let point = ClassConfig::default_config();
        let a = run_trial(&q, &stack, &point, 0xC0DE, 3, Some(8)).unwrap();
        let b = run_trial(&q, &stack, &point, 0xC0DE, 3, Some(8)).unwrap();
        assert_eq!(a, b);
        // A different point index derives a different seed; the RNG
        // streams diverge even when small instances reach equal costs.
        let c = run_trial(&q, &stack, &point, 0xC0DE, 4, Some(8)).unwrap();
        assert_ne!(a.signals.acceptance, c.signals.acceptance);
    }

    #[test]
    fn prefix_trial_is_an_exact_prefix_of_the_full_trial() {
        let (q, stack) = instance();
        let point = ClassConfig {
            starts: 1,
            ..ClassConfig::default_config()
        };
        let full = run_trial(&q, &stack, &point, 7, 0, None).unwrap();
        let early = run_trial(&q, &stack, &point, 7, 0, Some(10)).unwrap();
        assert_eq!(early.steps, 10);
        assert!(early.steps < full.steps);
        // The early acceptance trajectory is the full one's head, bit
        // for bit — the honesty property the early-stop hook promises.
        assert_eq!(
            early.signals.acceptance[..],
            full.signals.acceptance[..early.signals.acceptance.len()]
        );
        assert!(early.signals.best_cost >= full.signals.best_cost);
    }

    #[test]
    fn classify_is_consistent_for_the_family() {
        let (q, _) = instance();
        // The class key used for grouping must be stable across calls.
        assert_eq!(classify_quadrant(&q), classify_quadrant(&q));
    }
}
