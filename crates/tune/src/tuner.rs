//! The tuning loop: per-class successive halving over the trial space.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use copack_geom::{Quadrant, StackConfig};
use copack_io::{classify_quadrant, ClassKey, TuneProfile};

use crate::predictor::{halve, spearman};
use crate::space::TrialSpace;
use crate::trial::run_trial;
use crate::TuneError;

/// Tuning-run parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuneOptions {
    /// Base seed every trial seed derives from. The default matches the
    /// CLI's default exchange seed, so trial point 0 reproduces exactly
    /// what an untuned `copack plan --exchange` run would do.
    pub seed: u64,
    /// Tuner worker threads (`0` = available parallelism). The output
    /// profile is byte-identical for every value — pinned by the
    /// `tune-determinism` oracle.
    pub threads: usize,
    /// Successive-halving rounds before the final full-length round.
    pub rounds: usize,
}

impl Default for TuneOptions {
    fn default() -> Self {
        Self {
            seed: 0xC0DE,
            threads: 0,
            rounds: 2,
        }
    }
}

/// What happened for one instance class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassOutcome {
    /// The class key.
    pub key: ClassKey,
    /// Names of the family members in this class.
    pub members: Vec<String>,
    /// Winning trial-point id (0 = the defaults won).
    pub winner: usize,
    /// Winner's summed full-run cost over the members.
    pub winner_cost: f64,
    /// The default point's summed full-run cost — never less than
    /// `winner_cost` by construction.
    pub default_cost: f64,
    /// Spearman rank correlation between the first early round's scores
    /// and the final full-run scores, over the finalists — how
    /// predictive the cheap signals were.
    pub correlation: f64,
    /// Points eliminated by the early rounds (never run full-length).
    pub pruned_points: usize,
}

/// A finished tuning run: the profile plus its per-class audit trail.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneReport {
    /// The profile to serialise with `copack_io::write_tune`.
    pub profile: TuneProfile,
    /// Per-class outcomes, in class-key order.
    pub classes: Vec<ClassOutcome>,
    /// Total trials executed (early + full).
    pub trials: usize,
}

/// One unit of work for the trial pool.
struct Task {
    class: usize,
    point: usize,
    member: usize,
    prefix: Option<usize>,
}

/// Runs `tasks.len()` jobs on `threads` workers and returns results in
/// task order. Each job is independent and deterministic, so the merge
/// (and the first-error choice) is index-ordered and thread-invariant.
fn run_pool<T, F>(count: usize, threads: usize, job: F) -> Result<Vec<T>, TuneError>
where
    T: Send,
    F: Fn(usize) -> Result<T, TuneError> + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    }
    .min(count.max(1));

    let slots: Vec<Mutex<Option<Result<T, TuneError>>>> =
        (0..count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let result = job(i);
                *slots[i].lock().expect("trial slot poisoned") = Some(result);
            });
        }
    });
    let mut out = Vec::with_capacity(count);
    for slot in slots {
        out.push(
            slot.into_inner()
                .expect("trial slot poisoned")
                .expect("every task ran")?,
        );
    }
    Ok(out)
}

/// Tunes `instances` over `space` and distils one config per instance
/// class into a [`TuneProfile`].
///
/// Per class, the tuner races the whole space through
/// `options.rounds` successive-halving rounds on schedule *prefixes*
/// (cheap, honest early signals — see `Schedule::prefix`), halving the
/// candidate set each round, then runs the survivors **plus the default
/// point** to full length. The class winner is the candidate with the
/// lowest summed full-run cost that is **no worse than the default on
/// every member** — so a tuned profile can never regress any family
/// member, not just the family average. Ties break toward the lower
/// point id (the default itself wins exact ties).
///
/// Everything is deterministic: trial seeds derive from
/// `(options.seed, point id)`, pool results merge in task order, and
/// ties break structurally — the emitted profile is byte-identical
/// across `--threads` values and reruns.
pub fn tune(
    instances: &[(String, Quadrant, StackConfig)],
    space: &TrialSpace,
    options: &TuneOptions,
) -> Result<TuneReport, TuneError> {
    if space.is_empty() {
        return Err(TuneError::EmptySpace);
    }
    if instances.is_empty() {
        return Err(TuneError::EmptyFamily);
    }

    // Group family members by class, sorted by key for output stability.
    let mut classes: Vec<(ClassKey, Vec<usize>)> = Vec::new();
    for (i, (_, quadrant, _)) in instances.iter().enumerate() {
        let key = classify_quadrant(quadrant);
        match classes.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(i),
            None => classes.push((key, vec![i])),
        }
    }
    classes.sort_by_key(|entry| entry.0);

    let mut trials_total = 0usize;
    // Per class: surviving candidate ids, plus the first round's scores
    // for the correlation report.
    let mut survivors: Vec<Vec<usize>> = vec![(0..space.len()).collect(); classes.len()];
    let mut first_scores: Vec<Vec<(usize, f64)>> = vec![Vec::new(); classes.len()];

    // Early rounds: fractions 1/2^(rounds), …, 1/4, 1/2 of each point's
    // own schedule length.
    for round in 0..options.rounds {
        let shift = options.rounds - round;
        let mut tasks: Vec<Task> = Vec::new();
        for (ci, (_, members)) in classes.iter().enumerate() {
            if survivors[ci].len() <= 2 {
                continue; // nothing left to prune
            }
            for &point in &survivors[ci] {
                for &member in members {
                    tasks.push(Task {
                        class: ci,
                        point,
                        member,
                        prefix: Some(shift),
                    });
                }
            }
        }
        if tasks.is_empty() {
            break;
        }
        let outcomes = run_pool(tasks.len(), options.threads, |i| {
            let t = &tasks[i];
            let (_, quadrant, stack) = &instances[t.member];
            let point = &space.points[t.point];
            let full = {
                let mut c = copack_core::ExchangeConfig::default();
                let mut p = copack_core::PortfolioConfig::default();
                point.apply(&mut c, &mut p);
                c.schedule.temperature_steps()
            };
            let steps = (full >> t.prefix.unwrap_or(0)).max(2);
            run_trial(
                quadrant,
                stack,
                point,
                options.seed,
                t.point as u32,
                Some(steps),
            )
        })?;
        trials_total += outcomes.len();

        // Score = summed early best cost per (class, point); then halve.
        for (ci, (_, _members)) in classes.iter().enumerate() {
            let mut scored: Vec<(usize, f64)> = Vec::new();
            for (task, outcome) in tasks.iter().zip(&outcomes) {
                if task.class != ci {
                    continue;
                }
                match scored.iter_mut().find(|(p, _)| *p == task.point) {
                    Some((_, s)) => *s += outcome.cost,
                    None => scored.push((task.point, outcome.cost)),
                }
            }
            if scored.is_empty() {
                continue;
            }
            if round == 0 {
                first_scores[ci] = scored.clone();
            }
            survivors[ci] = halve(&scored, 2);
        }
    }

    // Final round: survivors plus the default point, full length.
    let mut tasks: Vec<Task> = Vec::new();
    for (ci, (_, members)) in classes.iter().enumerate() {
        let mut finalists = survivors[ci].clone();
        if !finalists.contains(&0) {
            finalists.push(0);
            finalists.sort_unstable();
        }
        survivors[ci] = finalists.clone();
        for point in finalists {
            for &member in members {
                tasks.push(Task {
                    class: ci,
                    point,
                    member,
                    prefix: None,
                });
            }
        }
    }
    let outcomes = run_pool(tasks.len(), options.threads, |i| {
        let t = &tasks[i];
        let (_, quadrant, stack) = &instances[t.member];
        run_trial(
            quadrant,
            stack,
            &space.points[t.point],
            options.seed,
            t.point as u32,
            None,
        )
    })?;
    trials_total += outcomes.len();

    let mut class_outcomes = Vec::with_capacity(classes.len());
    let mut profile_classes = Vec::with_capacity(classes.len());
    for (ci, (key, members)) in classes.iter().enumerate() {
        // Per-point per-member full costs for this class.
        let mut by_point: Vec<(usize, Vec<f64>)> = Vec::new();
        for (task, outcome) in tasks.iter().zip(&outcomes) {
            if task.class != ci {
                continue;
            }
            match by_point.iter_mut().find(|(p, _)| *p == task.point) {
                Some((_, costs)) => costs.push(outcome.cost),
                None => by_point.push((task.point, vec![outcome.cost])),
            }
        }
        let default_costs = by_point
            .iter()
            .find(|(p, _)| *p == 0)
            .map(|(_, c)| c.clone())
            .expect("default point always runs full-length");
        let default_cost: f64 = default_costs.iter().sum();

        // Eligibility: no member may regress versus the defaults.
        let mut winner = 0usize;
        let mut winner_cost = default_cost;
        for (point, costs) in &by_point {
            let eligible = costs.iter().zip(&default_costs).all(|(c, d)| c <= d);
            let total: f64 = costs.iter().sum();
            if eligible && (total < winner_cost || (total == winner_cost && *point < winner)) {
                winner = *point;
                winner_cost = total;
            }
        }

        // Correlation of the first early round against the final round,
        // over the finalists that appeared in both.
        let finals: Vec<(usize, f64)> = by_point
            .iter()
            .map(|(p, costs)| (*p, costs.iter().sum()))
            .collect();
        let mut early = Vec::new();
        let mut late = Vec::new();
        for (p, s) in &finals {
            if let Some((_, e)) = first_scores[ci].iter().find(|(fp, _)| fp == p) {
                early.push(*e);
                late.push(*s);
            }
        }
        let correlation = spearman(&early, &late);

        class_outcomes.push(ClassOutcome {
            key: *key,
            members: members.iter().map(|&m| instances[m].0.clone()).collect(),
            winner,
            winner_cost,
            default_cost,
            correlation,
            pruned_points: space.len() - by_point.len(),
        });
        profile_classes.push((*key, space.points[winner]));
    }

    Ok(TuneReport {
        profile: TuneProfile {
            seed: options.seed,
            space_fingerprint: space.fingerprint(),
            classes: profile_classes,
        },
        classes: class_outcomes,
        trials: trials_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_io::write_tune;

    fn family(indices: &[usize]) -> Vec<(String, Quadrant, StackConfig)> {
        indices
            .iter()
            .map(|&i| {
                let c = copack_gen::circuit(i);
                (
                    c.name.clone(),
                    c.build_quadrant().unwrap(),
                    c.stack().unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn tuned_profile_never_loses_to_defaults_on_any_member() {
        let instances = family(&[1, 2]);
        let report = tune(&instances, &TrialSpace::quick(), &TuneOptions::default()).unwrap();
        for class in &report.classes {
            assert!(
                class.winner_cost <= class.default_cost,
                "{}: {} > {}",
                class.key,
                class.winner_cost,
                class.default_cost
            );
        }
        assert!(!report.profile.classes.is_empty());
    }

    #[test]
    fn profile_bytes_are_thread_invariant_and_rerunnable() {
        let instances = family(&[1]);
        let space = TrialSpace::quick();
        let single = tune(
            &instances,
            &space,
            &TuneOptions {
                threads: 1,
                ..TuneOptions::default()
            },
        )
        .unwrap();
        let threaded = tune(
            &instances,
            &space,
            &TuneOptions {
                threads: 4,
                ..TuneOptions::default()
            },
        )
        .unwrap();
        assert_eq!(write_tune(&single.profile), write_tune(&threaded.profile));
        let again = tune(
            &instances,
            &space,
            &TuneOptions {
                threads: 4,
                ..TuneOptions::default()
            },
        )
        .unwrap();
        assert_eq!(write_tune(&threaded.profile), write_tune(&again.profile));
    }

    #[test]
    fn empty_inputs_are_rejected() {
        let instances = family(&[1]);
        assert!(matches!(
            tune(
                &instances,
                &TrialSpace { points: vec![] },
                &TuneOptions::default()
            ),
            Err(TuneError::EmptySpace)
        ));
        assert!(matches!(
            tune(&[], &TrialSpace::quick(), &TuneOptions::default()),
            Err(TuneError::EmptyFamily)
        ));
    }
}
