//! The trial space: which configurations the tuner considers.

use copack_core::PortfolioMode;
use copack_io::{fnv1a64, ClassConfig};

/// An ordered set of candidate configurations.
///
/// Point 0 is **always** the built-in default configuration. The tuner
/// carries point 0 into the final full-length round unconditionally, so
/// a tuned profile can never be worse than the defaults on the family
/// it was tuned over — the quality guarantee `bench_tune` gates on.
///
/// The remaining points are one-knob-at-a-time deviations from the
/// default. A coordinate sweep keeps the space small enough to afford
/// and keeps every winner interpretable ("cooling 0.85 beat the
/// default"), which is what the paper-style A-series ablations already
/// established as the useful way to read Eq. 3 weight sensitivity.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialSpace {
    /// The candidate configurations; index is the trial-point id.
    pub points: Vec<ClassConfig>,
}

fn deviations(base: ClassConfig) -> Vec<ClassConfig> {
    let mut points = vec![base];
    let mut push = |f: &dyn Fn(&mut ClassConfig)| {
        let mut p = base;
        f(&mut p);
        points.push(p);
    };
    // SA schedule.
    push(&|p| p.cooling = 0.85);
    push(&|p| p.cooling = 0.95);
    push(&|p| p.moves_per_temp = 1);
    push(&|p| p.moves_per_temp = 4);
    push(&|p| p.initial_temp_factor = 0.15);
    push(&|p| p.initial_temp_factor = 0.6);
    // Eq. 3 weights.
    push(&|p| p.lambda = base.lambda * 0.5);
    push(&|p| p.lambda = base.lambda * 2.0);
    push(&|p| p.rho = base.rho * 0.5);
    push(&|p| p.rho = base.rho * 2.0);
    push(&|p| p.phi = base.phi * 0.5);
    push(&|p| p.phi = base.phi * 2.0);
    // Portfolio shape.
    push(&|p| {
        p.starts = 2;
        p.prune_margin = 0.25;
    });
    push(&|p| {
        p.starts = 8;
        p.prune_margin = 0.25;
    });
    push(&|p| {
        p.starts = 4;
        p.prune_margin = 0.1;
    });
    // Cooperative portfolio modes. Each is paired with a multi-start
    // shape (modes are inert at K = 1), so the deviation the tuner
    // scores is "this cooperation policy on a 4-start portfolio" —
    // directly comparable to the 4-start race point above.
    push(&|p| {
        p.starts = 4;
        p.prune_margin = 0.1;
        p.mode = PortfolioMode::Coop;
    });
    push(&|p| {
        p.starts = 4;
        p.prune_margin = 0.1;
        p.mode = PortfolioMode::Coop;
        p.kick_size = 8;
    });
    push(&|p| {
        p.starts = 4;
        p.mode = PortfolioMode::Temper;
        p.ladder_ratio = 1.25;
    });
    push(&|p| {
        p.starts = 4;
        p.mode = PortfolioMode::Temper;
        p.ladder_ratio = 2.0;
    });
    points
}

impl TrialSpace {
    /// The standard space: the default plus nineteen deviations — one
    /// knob at a time, except the cooperative-mode points, which pair a
    /// mode with the multi-start shape it needs to be live.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            points: deviations(ClassConfig::default_config()),
        }
    }

    /// A tiny space for CI smoke runs and oracles: the default plus
    /// three deviations (faster cooling, fewer moves, two starts).
    #[must_use]
    pub fn quick() -> Self {
        let base = ClassConfig::default_config();
        Self {
            points: vec![
                base,
                ClassConfig {
                    cooling: 0.85,
                    ..base
                },
                ClassConfig {
                    moves_per_temp: 1,
                    ..base
                },
                ClassConfig {
                    starts: 2,
                    prune_margin: 0.25,
                    ..base
                },
            ],
        }
    }

    /// Number of candidate points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the space has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Content fingerprint of the space, recorded in emitted profiles so
    /// a profile declares exactly which candidate set produced it.
    /// Every `f64` enters as its bit pattern — two spaces fingerprint
    /// equally iff they are bit-identical.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut text = String::new();
        for p in &self.points {
            text.push_str(&format!(
                "{:016x},{:016x},{:016x},{},{:016x},{:016x},{:016x},{:016x},{},{:016x},{},{},{:016x};",
                p.cooling.to_bits(),
                p.initial_temp_factor.to_bits(),
                p.final_temp_ratio.to_bits(),
                p.moves_per_temp,
                p.lambda.to_bits(),
                p.rho.to_bits(),
                p.phi.to_bits(),
                p.margin.to_bits(),
                p.starts,
                p.prune_margin.to_bits(),
                p.mode.as_str(),
                p.kick_size,
                p.ladder_ratio.to_bits(),
            ));
        }
        fnv1a64(text.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_zero_is_the_default() {
        for space in [TrialSpace::standard(), TrialSpace::quick()] {
            assert_eq!(space.points[0], ClassConfig::default_config());
        }
    }

    #[test]
    fn points_are_distinct() {
        let space = TrialSpace::standard();
        for (i, a) in space.points.iter().enumerate() {
            for (j, b) in space.points.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "points {i} and {j} coincide");
                }
            }
        }
        assert_eq!(space.len(), 20);
        assert_eq!(TrialSpace::quick().len(), 4);
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let a = TrialSpace::standard();
        assert_eq!(a.fingerprint(), TrialSpace::standard().fingerprint());
        assert_ne!(a.fingerprint(), TrialSpace::quick().fingerprint());
        let mut b = TrialSpace::standard();
        b.points[3].cooling += 1e-9;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
