//! Deterministic telemetry-driven auto-tuning (`copack tune`).
//!
//! The obs layer records acceptance rates, per-start cost curves, and
//! prune decisions; this crate is the first consumer that closes the
//! loop. It sweeps a [`TrialSpace`] — SA schedule parameters, the
//! paper's Eq. 3 weights (λ, ρ, φ, μ), and portfolio knobs (K, prune
//! margin) — over a circuit family, using cheap **early signals** from
//! trace prefixes ([`copack_obs::early_signals`]) to successively halve
//! the candidate set before paying for full-length runs, and distils
//! one winning configuration per instance class into a reusable
//! [`copack_io::TuneProfile`] that `plan`, `replan`, and `serve` load
//! via `--profile`.
//!
//! Three contracts define the subsystem:
//!
//! * **honest early stopping** — an early trial runs a schedule
//!   *prefix* (`Schedule::prefix`), which is bit-exactly the head of
//!   the full run, so the predictor ranks real trajectories, never
//!   perturbed ones;
//! * **determinism** — every trial is replayable from
//!   `(instance, point, seed)`; pool merges are index-ordered and ties
//!   break structurally, so the emitted profile is byte-identical
//!   across `--threads` values and reruns (pinned by the
//!   `tune-determinism` oracle in `copack-verify`);
//! * **never-worse quality** — the default configuration is trial
//!   point 0, always runs full-length, and a candidate only wins if it
//!   beats it on *every* family member of its class, so loading a
//!   profile can never regress a family instance (gated by
//!   `bench_tune`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod predictor;
mod space;
mod trial;
mod tuner;

use std::fmt;

use copack_core::CoreError;

pub use predictor::{halve, spearman};
pub use space::TrialSpace;
pub use trial::{run_trial, TrialOutcome};
pub use tuner::{tune, ClassOutcome, TuneOptions, TuneReport};

/// Failure of a tuning run.
#[derive(Debug)]
pub enum TuneError {
    /// A trial's annealer rejected its inputs.
    Core(CoreError),
    /// The trial space has no points.
    EmptySpace,
    /// The circuit family has no instances.
    EmptyFamily,
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Core(e) => write!(f, "trial failed: {e}"),
            Self::EmptySpace => write!(f, "trial space has no points"),
            Self::EmptyFamily => write!(f, "circuit family has no instances"),
        }
    }
}

impl std::error::Error for TuneError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for TuneError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}
