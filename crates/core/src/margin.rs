//! The net-separation margin penalty `SM` — the optional fourth term of
//! Eq. 3, after Cheng et al.'s PCB margin-maximization objective
//! (PAPERS.md).
//!
//! Two nets on **adjacent fingers** whose balls sit in nearby rows run
//! their bond wires nearly parallel over the whole escape, leaving the
//! least lateral margin between them; nets whose balls are many rows
//! apart diverge quickly and leave the most. The penalty therefore
//! scores every adjacent occupied finger pair `(a, a+1)` as
//!
//! ```text
//! R − |row(a) − row(a+1)|        (R = ball-row count)
//! ```
//!
//! so same-row neighbours cost `R` and maximally-separated neighbours
//! cost `1`; minimizing the sum maximizes aggregate separation margin.
//! The score is a sum of small integers, accumulated in a `u64`, so the
//! incremental [`MarginTracker`] and the from-scratch
//! [`margin_penalty`] agree **exactly** — no float drift — which is
//! what lets the O(1)-per-move kernel stay bit-identical to the
//! reference implementation when the term is enabled.

use copack_geom::{Assignment, FingerIdx, Quadrant};

/// The total separation-margin penalty of `assignment` on `quadrant`,
/// computed from scratch.
///
/// Empty slots break adjacency (neither pair containing the gap
/// scores); a placed net unknown to the quadrant is treated as an empty
/// slot (the exchange kernel never produces one — it validates the
/// assignment first).
#[must_use]
pub fn margin_penalty(quadrant: &Quadrant, assignment: &Assignment) -> u64 {
    let rows = quadrant.row_count() as u32;
    let slot_row = slot_rows(quadrant, assignment);
    total_of(&slot_row, rows)
}

/// O(1)-per-move tracker of the separation-margin penalty under
/// adjacent slot swaps — the margin analogue of
/// [`crate::OmegaTracker`].
#[derive(Debug, Clone)]
pub struct MarginTracker {
    /// Ball-row index (1-based) of the net in each slot, `None` for
    /// empty slots.
    slot_row: Vec<Option<u32>>,
    /// Ball-row count `R` of the quadrant.
    rows: u32,
    /// Current total penalty.
    total: u64,
}

impl MarginTracker {
    /// Builds a tracker over the current assignment.
    #[must_use]
    pub fn new(quadrant: &Quadrant, assignment: &Assignment) -> Self {
        let rows = quadrant.row_count() as u32;
        let slot_row = slot_rows(quadrant, assignment);
        let total = total_of(&slot_row, rows);
        Self {
            slot_row,
            rows,
            total,
        }
    }

    /// The current total penalty.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Updates for a swap of slots `pos` and `pos + 1`.
    ///
    /// Only the two flanking pairs `(pos−1, pos)` and `(pos+1, pos+2)`
    /// change — the swapped pair's own score is symmetric in its
    /// operands. The update is self-inverse: applying it twice with the
    /// same `pos` restores the previous state, which is how the kernel
    /// reverts rejected moves.
    ///
    /// # Panics
    ///
    /// Panics if `pos + 1` is out of range.
    pub fn apply_adjacent_swap(&mut self, pos: FingerIdx) {
        let i = pos.zero_based();
        let j = i + 1;
        assert!(j < self.slot_row.len(), "swap out of range");
        self.total -= self.pair(i.wrapping_sub(1), i) + self.pair(j, j + 1);
        self.slot_row.swap(i, j);
        self.total += self.pair(i.wrapping_sub(1), i) + self.pair(j, j + 1);
    }

    /// Score of the pair `(a, b)`: zero when either slot is empty or
    /// out of range (including the `a = 0 − 1` underflow sentinel).
    fn pair(&self, a: usize, b: usize) -> u64 {
        match (
            self.slot_row.get(a).copied().flatten(),
            self.slot_row.get(b).copied().flatten(),
        ) {
            (Some(ra), Some(rb)) => u64::from(self.rows - ra.abs_diff(rb)),
            _ => 0,
        }
    }
}

/// Ball-row index per slot, `None` for empty or unknown.
fn slot_rows(quadrant: &Quadrant, assignment: &Assignment) -> Vec<Option<u32>> {
    let mut slot_row = vec![None; assignment.finger_count()];
    for (finger, net) in assignment.iter() {
        if let Some(ball) = quadrant.ball_of(net) {
            slot_row[finger.zero_based()] = Some(ball.row.get());
        }
    }
    slot_row
}

fn total_of(slot_row: &[Option<u32>], rows: u32) -> u64 {
    slot_row
        .windows(2)
        .map(|w| match (w[0], w[1]) {
            (Some(ra), Some(rb)) => u64::from(rows - ra.abs_diff(rb)),
            _ => 0,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_geom::NetId;

    fn quadrant() -> Quadrant {
        Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .build()
            .unwrap()
    }

    fn dense(order: &[u32]) -> Assignment {
        Assignment::from_order(order.iter().map(|&n| NetId::new(n)))
    }

    #[test]
    fn same_row_neighbours_score_row_count() {
        let q = quadrant();
        // 10 and 2 are both row-1 nets: pair scores R = 3.
        let a = dense(&[10, 2, 4, 7, 0, 1, 3, 5, 8, 11, 6, 9]);
        let sm = margin_penalty(&q, &a);
        // Full dense order: 11 adjacent pairs, each ≥ 1.
        assert!(sm >= 11);
        // Alternating rows beats runs of equal rows.
        let spread = dense(&[10, 1, 11, 2, 3, 6, 4, 5, 9, 7, 8, 0]);
        assert!(margin_penalty(&q, &spread) < sm);
    }

    #[test]
    fn empty_slots_break_adjacency() {
        let q = quadrant();
        let mut a = Assignment::empty(14);
        // Two nets with a gap between them: no scoring pair at all.
        a.place(NetId::new(10), FingerIdx::new(1)).unwrap();
        a.place(NetId::new(2), FingerIdx::new(3)).unwrap();
        assert_eq!(margin_penalty(&q, &a), 0);
        // Close the gap: both row 1, R = 3.
        let mut b = Assignment::empty(14);
        b.place(NetId::new(10), FingerIdx::new(1)).unwrap();
        b.place(NetId::new(2), FingerIdx::new(2)).unwrap();
        assert_eq!(margin_penalty(&q, &b), 3);
    }

    #[test]
    fn tracker_matches_scratch_under_random_swaps() {
        let q = quadrant();
        let mut a = dense(&[10, 2, 4, 7, 0, 1, 3, 5, 8, 11, 6, 9]);
        let mut tracker = MarginTracker::new(&q, &a);
        // A deterministic pseudo-random walk of adjacent swaps,
        // including immediate reverts (self-inverse check).
        let mut state = 0x9E3779B97F4A7C15u64;
        for step in 0..500 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = (state >> 33) as usize % (a.finger_count() - 1);
            let pos = FingerIdx::from_zero_based(i);
            a.swap(pos, FingerIdx::from_zero_based(i + 1)).unwrap();
            tracker.apply_adjacent_swap(pos);
            assert_eq!(
                tracker.total(),
                margin_penalty(&q, &a),
                "divergence at step {step}"
            );
            if step % 3 == 0 {
                // Revert immediately: the tracker must be self-inverse.
                a.swap(pos, FingerIdx::from_zero_based(i + 1)).unwrap();
                tracker.apply_adjacent_swap(pos);
                assert_eq!(tracker.total(), margin_penalty(&q, &a));
            }
        }
    }

    #[test]
    fn tracker_handles_sparse_assignments() {
        let q = quadrant();
        // 12 nets on 14 fingers: two holes move around under swaps.
        let mut a = Assignment::empty(14);
        for (i, n) in [10u32, 2, 4, 7, 0, 1, 3, 5, 8, 11, 6, 9].iter().enumerate() {
            a.place(
                NetId::new(*n),
                FingerIdx::from_zero_based(i + (i >= 6) as usize),
            )
            .unwrap();
        }
        let mut tracker = MarginTracker::new(&q, &a);
        assert_eq!(tracker.total(), margin_penalty(&q, &a));
        for i in 0..13 {
            let pos = FingerIdx::from_zero_based(i);
            a.swap(pos, FingerIdx::from_zero_based(i + 1)).unwrap();
            tracker.apply_adjacent_swap(pos);
            assert_eq!(tracker.total(), margin_penalty(&q, &a), "slot {i}");
        }
    }
}
