//! Simulated-annealing scaffolding (schedule + acceptance rule).

use serde::{Deserialize, Serialize};

/// Acceptance rule for uphill (worse) moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Acceptance {
    /// Classic Metropolis: accept a worse move with probability
    /// `exp(−ΔC/T)` (i.e. when `rand < exp(−ΔC/T)`). The default.
    #[default]
    Metropolis,
    /// The rule exactly as printed in the paper's Fig. 14 line 12:
    /// accept when `rand > exp(−ΔC/T)`. This inverts Metropolis — worse
    /// moves are accepted *less* often at high temperature — and is kept
    /// only for the A1 ablation (see `DESIGN.md`).
    AsWritten,
    /// Pure hill climbing: uphill moves are never accepted. The ablation
    /// baseline that shows whether SA's uphill moves buy anything.
    Greedy,
}

impl Acceptance {
    /// Whether a move with positive cost delta is accepted, given a uniform
    /// draw `u ∈ [0, 1)`.
    #[must_use]
    pub fn accepts(self, delta: f64, temperature: f64, u: f64) -> bool {
        let p = (-delta / temperature.max(f64::MIN_POSITIVE)).exp();
        match self {
            Self::Metropolis => u < p,
            Self::AsWritten => u > p,
            Self::Greedy => false,
        }
    }

    /// Probability that a move with positive cost delta is accepted over a
    /// uniform draw — the closed form the trace-based Metropolis test
    /// compares empirical acceptance rates against.
    #[must_use]
    pub fn probability(self, delta: f64, temperature: f64) -> f64 {
        let p = (-delta / temperature.max(f64::MIN_POSITIVE)).exp();
        match self {
            Self::Metropolis => p.min(1.0),
            Self::AsWritten => 1.0 - p.min(1.0),
            Self::Greedy => 0.0,
        }
    }
}

/// Geometric cooling schedule (the paper's Fig. 14: start temperature,
/// final temperature, `Cooling(Temperature)` per outer iteration).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Start temperature as a fraction of the initial cost (auto-scaled so
    /// the weights' magnitudes do not need hand-tuning).
    pub initial_temp_factor: f64,
    /// Stop when the temperature falls below this fraction of the start.
    pub final_temp_ratio: f64,
    /// Geometric cooling factor per temperature step (0 < c < 1).
    pub cooling: f64,
    /// Proposed moves per temperature step, as a multiple of the finger
    /// count.
    pub moves_per_temp_per_finger: usize,
}

impl Schedule {
    /// Validates the schedule parameters.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.initial_temp_factor > 0.0
            && self.initial_temp_factor.is_finite()
            && (0.0..1.0).contains(&self.final_temp_ratio)
            && self.final_temp_ratio > 0.0
            && (0.0..1.0).contains(&self.cooling)
            && self.cooling > 0.0
            && self.moves_per_temp_per_finger > 0
    }

    /// Number of temperature steps the schedule will run.
    #[must_use]
    pub fn temperature_steps(&self) -> usize {
        // cooling^k < final_ratio  ⇒  k > ln(final)/ln(cooling)
        (self.final_temp_ratio.ln() / self.cooling.ln()).ceil() as usize
    }

    /// The schedule truncated to its first `steps` temperature steps —
    /// the auto-tuner's early-stop hook.
    ///
    /// Everything that shapes the move stream (initial temperature,
    /// cooling, moves per step, and therefore the per-move RNG draws) is
    /// unchanged; only the stop threshold moves. An exchange run under
    /// the prefix schedule is therefore an **exact prefix** of the full
    /// run: same moves proposed, same moves accepted, same best-so-far
    /// trajectory over the shared steps (property-tested in
    /// `copack-tune`). That is what makes early signals honest — they
    /// observe the real run, not a perturbed one.
    ///
    /// The threshold lands half a cooling step past step `steps`
    /// (`cooling^(steps − ½)`), so float rounding in the temperature
    /// recurrence can never shift the stop by a step. `steps` is clamped
    /// to `1..=temperature_steps()`.
    #[must_use]
    pub fn prefix(&self, steps: usize) -> Self {
        let full = self.temperature_steps();
        let steps = steps.clamp(1, full.max(1));
        if steps >= full {
            return *self;
        }
        Self {
            final_temp_ratio: self.cooling.powf(steps as f64 - 0.5),
            ..*self
        }
    }
}

impl Default for Schedule {
    fn default() -> Self {
        Self {
            initial_temp_factor: 0.3,
            final_temp_ratio: 1e-3,
            cooling: 0.92,
            moves_per_temp_per_finger: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metropolis_accepts_more_when_hot() {
        let rule = Acceptance::Metropolis;
        // delta = 1: p(hot, T=10) ≈ 0.905, p(cold, T=0.1) ≈ 4.5e-5.
        assert!(rule.accepts(1.0, 10.0, 0.5));
        assert!(!rule.accepts(1.0, 0.1, 0.5));
    }

    #[test]
    fn as_written_is_the_inversion() {
        // Same draw, same delta/temperature: exactly one of the two rules
        // accepts (measure-zero ties aside).
        for (delta, t, u) in [(1.0, 10.0, 0.5), (1.0, 0.1, 0.5), (3.0, 2.0, 0.2)] {
            let m = Acceptance::Metropolis.accepts(delta, t, u);
            let w = Acceptance::AsWritten.accepts(delta, t, u);
            assert_ne!(m, w);
        }
    }

    #[test]
    fn zero_temperature_never_accepts_uphill_metropolis() {
        assert!(!Acceptance::Metropolis.accepts(1.0, 0.0, 0.0001));
    }

    #[test]
    fn greedy_never_accepts_uphill() {
        for (delta, t, u) in [(0.1, 100.0, 0.0), (5.0, 1e6, 0.999)] {
            assert!(!Acceptance::Greedy.accepts(delta, t, u));
        }
    }

    #[test]
    fn default_schedule_is_valid_and_finite() {
        let s = Schedule::default();
        assert!(s.is_valid());
        let steps = s.temperature_steps();
        assert!((40..400).contains(&steps), "{steps}");
    }

    #[test]
    fn prefix_runs_exactly_the_requested_steps() {
        let s = Schedule::default();
        let full = s.temperature_steps();
        for steps in [1, 2, full / 2, full - 1] {
            let p = s.prefix(steps);
            assert!(p.is_valid(), "{p:?}");
            assert_eq!(p.temperature_steps(), steps, "prefix({steps})");
            // Only the stop threshold may differ.
            assert_eq!(p.cooling, s.cooling);
            assert_eq!(p.initial_temp_factor, s.initial_temp_factor);
            assert_eq!(p.moves_per_temp_per_finger, s.moves_per_temp_per_finger);
        }
        // At or past the full length the schedule is returned unchanged.
        assert_eq!(s.prefix(full), s);
        assert_eq!(s.prefix(full + 10), s);
        assert_eq!(s.prefix(0).temperature_steps(), 1);
    }

    #[test]
    fn invalid_schedules_are_caught() {
        let base = Schedule::default();
        for bad in [
            Schedule {
                initial_temp_factor: 0.0,
                ..base
            },
            Schedule {
                final_temp_ratio: 0.0,
                ..base
            },
            Schedule {
                cooling: 1.0,
                ..base
            },
            Schedule {
                moves_per_temp_per_finger: 0,
                ..base
            },
        ] {
            assert!(!bad.is_valid(), "{bad:?}");
        }
    }
}
