//! Instance deltas — the ECO edit vocabulary of `copack replan`.
//!
//! A real co-design flow iterates: a handful of nets are added, removed
//! or retyped and the plan must be refreshed. Re-running every quadrant
//! from scratch wastes almost all of that work, so the replan path
//! describes the change as data: a [`QuadrantDelta`] is an ordered list
//! of [`Edit`]s against one quadrant, and an [`InstanceDelta`] groups
//! them per named quadrant so untouched quadrants can be classified
//! clean and served from cache.
//!
//! The contract that makes deltas trustworthy is **round-trip
//! exactness**: for any two quadrants `a` and `b`,
//! `apply_delta(a, &diff_quadrant(a, b)) == b` — bit for bit, including
//! geometry, the explicit-vs-default finger count, and every per-net
//! kind/tier override. `diff_quadrant(a, a)` is always the empty delta,
//! which is what lets replan prove "nothing changed" and return the
//! previous plan verbatim. Both properties are tested here and
//! property-tested over generated instance pairs in `tests/delta.rs`.

use std::collections::BTreeMap;

use copack_geom::{NetId, NetKind, Quadrant, QuadrantGeometry, TierId};

use crate::CoreError;

/// One edit against a quadrant. Edits apply in order; later edits see
/// the effect of earlier ones.
#[derive(Debug, Clone, PartialEq)]
pub enum Edit {
    /// Replace the physical parameters.
    Geometry(QuadrantGeometry),
    /// Pin the finger count explicitly (without this edit, the count
    /// follows the format's default: one finger per net after all
    /// edits, unless the base quadrant already pinned it).
    Fingers(usize),
    /// Replace ball row `y` (1-based, bottom-up) wholesale; `y` one
    /// past the current last row appends a new row.
    Row {
        /// 1-based row index.
        y: u32,
        /// The row's nets, left to right.
        nets: Vec<NetId>,
    },
    /// Keep only the first `n` ball rows.
    Truncate(u32),
    /// Insert one net into an existing row.
    Add {
        /// The new net.
        net: NetId,
        /// 1-based row to insert into.
        row: u32,
        /// 0-based insertion position within the row.
        at: u32,
    },
    /// Remove one net from whichever row holds it (the row itself is
    /// dropped if it empties).
    Remove(NetId),
    /// Change a net's electrical kind.
    Retype {
        /// The net to retype.
        net: NetId,
        /// Its new kind.
        kind: NetKind,
    },
    /// Move a net's die-side pad to a stacking tier.
    Tier {
        /// The net to move.
        net: NetId,
        /// Its new tier.
        tier: TierId,
    },
}

/// An ordered edit list against one quadrant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuadrantDelta {
    /// The edits, applied first to last.
    pub edits: Vec<Edit>,
}

impl QuadrantDelta {
    /// Whether this delta changes nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Whether applying this delta to `base` leaves it unchanged —
    /// either no edits at all, or edits that cancel out (an ECO drafted,
    /// backed out, and still resubmitted). Replan paths use this to
    /// return the previous plan verbatim instead of repairing and
    /// re-annealing a quadrant that did not actually change.
    ///
    /// # Errors
    ///
    /// Propagates [`apply_delta`]'s errors for edits that cannot be
    /// interpreted against `base`.
    pub fn is_noop_for(&self, base: &Quadrant) -> Result<bool, CoreError> {
        if self.is_empty() {
            return Ok(true);
        }
        Ok(apply_delta(base, self)? == *base)
    }
}

/// Per-quadrant deltas of one planning instance, keyed by quadrant
/// name. Quadrants absent from the list are untouched by definition.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InstanceDelta {
    /// `(quadrant name, delta)` pairs.
    pub quadrants: Vec<(String, QuadrantDelta)>,
}

impl InstanceDelta {
    /// Whether no quadrant is edited at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.quadrants.iter().all(|(_, d)| d.is_empty())
    }

    /// The delta for `name`, if one is listed.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&QuadrantDelta> {
        self.quadrants
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d)
    }

    /// Names of the quadrants this delta actually touches — the dirty
    /// set the replanner must recompute; everything else is reusable.
    pub fn dirty(&self) -> impl Iterator<Item = &str> {
        self.quadrants
            .iter()
            .filter(|(_, d)| !d.is_empty())
            .map(|(n, _)| n.as_str())
    }

    /// Whether `name`'s plan can be reused verbatim.
    #[must_use]
    pub fn is_clean(&self, name: &str) -> bool {
        // `Option::is_none_or` postdates the MSRV.
        self.get(name).map_or(true, QuadrantDelta::is_empty)
    }
}

/// Computes the minimal-vocabulary delta turning `a` into `b`:
/// `apply_delta(a, &diff_quadrant(a, b)) == b` exactly, and
/// `diff_quadrant(a, a)` is empty.
///
/// Structural changes come out as whole-row rewrites (plus a truncate
/// when rows disappear); kind/tier changes as per-net edits relative to
/// what a surviving net inherits from `a` (new nets inherit the
/// defaults: signal, base tier). A `Fingers` edit appears only when the
/// inherited finger-count rule would land on the wrong value.
#[must_use]
pub fn diff_quadrant(a: &Quadrant, b: &Quadrant) -> QuadrantDelta {
    let mut edits = Vec::new();
    if a.geometry() != b.geometry() {
        edits.push(Edit::Geometry(*b.geometry()));
    }
    for (y, nets) in b.rows_bottom_up() {
        let differs = y.zero_based() >= a.row_count() || a.row(y) != nets;
        if differs {
            edits.push(Edit::Row {
                y: y.get(),
                nets: nets.to_vec(),
            });
        }
    }
    if b.row_count() < a.row_count() {
        edits.push(Edit::Truncate(b.row_count() as u32));
    }
    for net in b.nets() {
        let (kind0, tier0) = match a.net(net.id) {
            Some(old) => (old.kind, old.tier),
            None => (NetKind::Signal, TierId::BASE),
        };
        if net.kind != kind0 {
            edits.push(Edit::Retype {
                net: net.id,
                kind: net.kind,
            });
        }
        if net.tier != tier0 {
            edits.push(Edit::Tier {
                net: net.id,
                tier: net.tier,
            });
        }
    }
    // The finger count `apply_delta` would land on without help: `a`'s
    // pinned count if it has one, else one per (post-edit) net.
    let inherited = if a.finger_count() != a.net_count() {
        a.finger_count()
    } else {
        b.net_count()
    };
    if inherited != b.finger_count() {
        edits.push(Edit::Fingers(b.finger_count()));
    }
    QuadrantDelta { edits }
}

/// A non-empty delta that provably changes nothing: the edits turning
/// `a` into `b` followed by the edits turning `b` back into `a`. This is
/// the test/bench vocabulary for the "empty-but-resubmitted" replan
/// case — a delta whose edit list is non-trivial but whose net effect
/// is zero, which [`QuadrantDelta::is_noop_for`] must detect so the
/// replanner can skip repair entirely. Returns the empty delta when
/// `a == b` (there is nothing to cancel).
#[must_use]
pub fn cancelling_delta(a: &Quadrant, b: &Quadrant) -> QuadrantDelta {
    let mut edits = diff_quadrant(a, b).edits;
    edits.extend(diff_quadrant(b, a).edits);
    QuadrantDelta { edits }
}

/// Applies `delta` to `base`, rebuilding the quadrant through the
/// normal builder so every model invariant is re-validated.
///
/// Surviving nets keep `base`'s kind/tier unless an edit changes them;
/// kind/tier edits for nets absent after the structural edits are
/// ignored (the edit may legitimately target a net its own `Remove`
/// dropped). The finger count follows `base`'s pinned count if it had
/// one (else one per net), unless a [`Edit::Fingers`] pins it anew.
///
/// # Errors
///
/// * [`CoreError::BadDelta`] for edits that cannot be interpreted
///   (row-index gaps, inserts past a row's end, removing an absent
///   net).
/// * [`CoreError::Geom`] when the edited model is invalid (duplicate
///   nets, empty instance, too few fingers, bad geometry).
pub fn apply_delta(base: &Quadrant, delta: &QuadrantDelta) -> Result<Quadrant, CoreError> {
    let mut rows: Vec<Vec<NetId>> = base.rows_bottom_up().map(|(_, r)| r.to_vec()).collect();
    let mut kinds: BTreeMap<NetId, NetKind> = BTreeMap::new();
    let mut tiers: BTreeMap<NetId, TierId> = BTreeMap::new();
    for net in base.nets() {
        if net.kind != NetKind::Signal {
            kinds.insert(net.id, net.kind);
        }
        if net.tier != TierId::BASE {
            tiers.insert(net.id, net.tier);
        }
    }
    let mut geometry = *base.geometry();
    let mut fingers: Option<usize> = if base.finger_count() != base.net_count() {
        Some(base.finger_count())
    } else {
        None
    };

    for edit in &delta.edits {
        match edit {
            Edit::Geometry(g) => geometry = *g,
            Edit::Fingers(f) => fingers = Some(*f),
            Edit::Row { y, nets } => {
                let i = *y as usize;
                if i == 0 {
                    return Err(CoreError::BadDelta {
                        reason: "row indices are 1-based",
                    });
                }
                if i <= rows.len() {
                    rows[i - 1] = nets.clone();
                } else if i == rows.len() + 1 {
                    rows.push(nets.clone());
                } else {
                    return Err(CoreError::BadDelta {
                        reason: "row edit skips past the last row",
                    });
                }
            }
            Edit::Truncate(n) => rows.truncate(*n as usize),
            Edit::Add { net, row, at } => {
                let i = *row as usize;
                if i == 0 || i > rows.len() {
                    return Err(CoreError::BadDelta {
                        reason: "add targets a missing row",
                    });
                }
                let r = &mut rows[i - 1];
                if *at as usize > r.len() {
                    return Err(CoreError::BadDelta {
                        reason: "add position is past the row's end",
                    });
                }
                r.insert(*at as usize, *net);
            }
            Edit::Remove(net) => {
                let mut found = false;
                for r in &mut rows {
                    if let Some(i) = r.iter().position(|n| n == net) {
                        r.remove(i);
                        found = true;
                        break;
                    }
                }
                if !found {
                    return Err(CoreError::BadDelta {
                        reason: "removed net is not in the quadrant",
                    });
                }
                rows.retain(|r| !r.is_empty());
            }
            Edit::Retype { net, kind } => {
                if *kind == NetKind::Signal {
                    kinds.remove(net);
                } else {
                    kinds.insert(*net, *kind);
                }
            }
            Edit::Tier { net, tier } => {
                if *tier == TierId::BASE {
                    tiers.remove(net);
                } else {
                    tiers.insert(*net, *tier);
                }
            }
        }
    }

    let present: std::collections::BTreeSet<NetId> = rows.iter().flatten().copied().collect();
    let mut builder = Quadrant::builder().geometry(geometry);
    for row in rows {
        builder = builder.row(row);
    }
    if let Some(f) = fingers {
        builder = builder.fingers(f);
    }
    for (net, kind) in kinds {
        if present.contains(&net) {
            builder = builder.net_kind(net, kind);
        }
    }
    for (net, tier) in tiers {
        if present.contains(&net) {
            builder = builder.net_tier(net, tier);
        }
    }
    builder.build().map_err(CoreError::Geom)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Quadrant {
        Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .net_kind(10u32, NetKind::Power)
            .net_tier(3u32, TierId::new(2))
            .build()
            .unwrap()
    }

    #[test]
    fn diff_of_identical_quadrants_is_empty() {
        let a = base();
        let d = diff_quadrant(&a, &a);
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(apply_delta(&a, &d).unwrap(), a);
    }

    #[test]
    fn cancelling_edits_are_noop_but_not_empty() {
        let a = base();
        // A realistic backed-out ECO: add a net, retype one, then revert
        // both — expressed through the round-trip composition.
        let b = Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8, 12])
            .row([11u32, 6, 9])
            .net_kind(10u32, NetKind::Ground)
            .net_tier(3u32, TierId::new(2))
            .build()
            .unwrap();
        let d = cancelling_delta(&a, &b);
        assert!(!d.is_empty(), "{d:?}");
        assert!(d.is_noop_for(&a).unwrap());
        assert_eq!(apply_delta(&a, &d).unwrap(), a);
        // The same edit list against the *other* endpoint is not a noop.
        assert!(!diff_quadrant(&a, &b).is_noop_for(&a).unwrap());
        // And identical endpoints cancel to the empty delta.
        assert!(cancelling_delta(&a, &a).is_empty());
    }

    #[test]
    fn empty_delta_is_noop_without_applying() {
        let a = base();
        assert!(QuadrantDelta::default().is_noop_for(&a).unwrap());
    }

    #[test]
    fn diff_apply_round_trips_structural_edits() {
        let a = base();
        // Add a net, drop one, retype one, move one to a tier, change
        // the finger count and the geometry — every edit class at once.
        let b = Quadrant::builder()
            .row([10u32, 2, 4, 7])
            .row([1u32, 3, 5, 8, 12])
            .row([11u32, 6, 9])
            .net_kind(10u32, NetKind::Power)
            .net_kind(12u32, NetKind::Ground)
            .net_tier(3u32, TierId::new(2))
            .net_tier(6u32, TierId::new(3))
            .fingers(14)
            .geometry(QuadrantGeometry {
                ball_pitch: 2.0,
                ..QuadrantGeometry::default()
            })
            .build()
            .unwrap();
        let d = diff_quadrant(&a, &b);
        assert!(!d.is_empty());
        assert_eq!(apply_delta(&a, &d).unwrap(), b);
        // And the reverse direction round-trips too.
        let back = diff_quadrant(&b, &a);
        assert_eq!(apply_delta(&b, &back).unwrap(), a);
    }

    #[test]
    fn diff_handles_row_count_changes() {
        let a = base();
        let shrunk = Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .net_tier(3u32, TierId::new(2))
            .build()
            .unwrap();
        let d = diff_quadrant(&a, &shrunk);
        assert_eq!(apply_delta(&a, &d).unwrap(), shrunk);
        let grown = Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .row([20u32, 21])
            .net_kind(10u32, NetKind::Power)
            .net_tier(3u32, TierId::new(2))
            .build()
            .unwrap();
        let d = diff_quadrant(&a, &grown);
        assert_eq!(apply_delta(&a, &d).unwrap(), grown);
    }

    #[test]
    fn incremental_edits_apply_in_order() {
        let a = base();
        let d = QuadrantDelta {
            edits: vec![
                Edit::Add {
                    net: NetId::new(42),
                    row: 2,
                    at: 0,
                },
                Edit::Remove(NetId::new(0)),
                Edit::Retype {
                    net: NetId::new(42),
                    kind: NetKind::Power,
                },
            ],
        };
        let b = apply_delta(&a, &d).unwrap();
        assert_eq!(b.net_count(), a.net_count()); // one added, one removed
        assert_eq!(b.row(2u32)[0], NetId::new(42));
        assert!(b.net(NetId::new(0)).is_none());
        assert_eq!(b.net(NetId::new(42)).unwrap().kind, NetKind::Power);
        // Default finger rule: one per net after the edits.
        assert_eq!(b.finger_count(), b.net_count());
    }

    #[test]
    fn removing_the_last_net_of_a_row_drops_the_row() {
        let q = Quadrant::builder()
            .row([1u32, 2])
            .row([3u32])
            .row([4u32, 5])
            .build()
            .unwrap();
        let d = QuadrantDelta {
            edits: vec![Edit::Remove(NetId::new(3))],
        };
        let b = apply_delta(&q, &d).unwrap();
        assert_eq!(b.row_count(), 2);
        assert_eq!(b.row(2u32), &[NetId::new(4), NetId::new(5)]);
    }

    #[test]
    fn retype_edits_for_dropped_nets_are_ignored() {
        let a = base();
        let d = QuadrantDelta {
            edits: vec![
                Edit::Remove(NetId::new(0)),
                Edit::Retype {
                    net: NetId::new(0),
                    kind: NetKind::Power,
                },
            ],
        };
        let b = apply_delta(&a, &d).unwrap();
        assert!(b.net(NetId::new(0)).is_none());
    }

    #[test]
    fn bad_edits_are_typed_errors() {
        let a = base();
        for (edits, needle) in [
            (
                vec![Edit::Row {
                    y: 9,
                    nets: vec![NetId::new(50)],
                }],
                "skips",
            ),
            (
                vec![Edit::Add {
                    net: NetId::new(50),
                    row: 7,
                    at: 0,
                }],
                "missing row",
            ),
            (
                vec![Edit::Add {
                    net: NetId::new(50),
                    row: 1,
                    at: 99,
                }],
                "past the row's end",
            ),
            (vec![Edit::Remove(NetId::new(77))], "not in the quadrant"),
        ] {
            let err = apply_delta(&a, &QuadrantDelta { edits }).unwrap_err();
            assert!(
                matches!(err, CoreError::BadDelta { reason } if reason.contains(needle)),
                "{err}"
            );
        }
        // Duplicate nets surface as the builder's model error.
        let dup = QuadrantDelta {
            edits: vec![Edit::Add {
                net: NetId::new(9),
                row: 1,
                at: 0,
            }],
        };
        assert!(matches!(
            apply_delta(&a, &dup).unwrap_err(),
            CoreError::Geom(_)
        ));
    }

    #[test]
    fn explicit_finger_counts_are_inherited() {
        let a = Quadrant::builder()
            .row([1u32, 2, 3])
            .fingers(5)
            .build()
            .unwrap();
        // No edits: the pinned count carries over.
        let b = apply_delta(&a, &QuadrantDelta::default()).unwrap();
        assert_eq!(b.finger_count(), 5);
        // diff against a default-count target must emit a Fingers edit.
        let c = Quadrant::builder().row([1u32, 2, 3]).build().unwrap();
        let d = diff_quadrant(&a, &c);
        assert_eq!(apply_delta(&a, &d).unwrap(), c);
    }

    #[test]
    fn instance_delta_classifies_dirty_quadrants() {
        let a = base();
        let mut b_rows = vec![
            vec![10u32, 2, 4, 7, 0],
            vec![1u32, 3, 5, 8],
            vec![11u32, 6, 9, 13],
        ];
        b_rows[2].push(14);
        let b = {
            let mut builder = Quadrant::builder();
            for r in &b_rows {
                builder = builder.row(r.clone());
            }
            builder
                .net_kind(10u32, NetKind::Power)
                .net_tier(3u32, TierId::new(2))
                .build()
                .unwrap()
        };
        let delta = InstanceDelta {
            quadrants: vec![
                ("q1".to_owned(), diff_quadrant(&a, &a)),
                ("q2".to_owned(), diff_quadrant(&a, &b)),
            ],
        };
        assert!(!delta.is_empty());
        assert_eq!(delta.dirty().collect::<Vec<_>>(), vec!["q2"]);
        assert!(delta.is_clean("q1"));
        assert!(delta.is_clean("unlisted"));
        assert!(!delta.is_clean("q2"));
        assert!(delta.get("q2").is_some());
        assert!(InstanceDelta::default().is_empty());
    }
}
