//! Whole-package co-design: plan all four quadrants and evaluate them
//! together.
//!
//! The paper plans each triangular quadrant independently (its §2.1) and
//! evaluates symmetric test circuits; [`plan_package`] is the general
//! driver: it runs the two-step flow per side, evaluates the IR-drop from
//! the **actual** four pad rings (not a replicated one), and reports the
//! shared cut-line congestion across quadrant boundaries.

use copack_geom::{Assignment, NetKind, Package, Quadrant, QuadrantSide};
use copack_obs::{Event, NoopRecorder, Recorder, TraceBuffer};
use copack_power::{solve_sor_warm_traced, GridSpec, PadRing};
use copack_route::{analyze, cutline_congestion, CutlineReport, RoutingReport};

use crate::{assign, exchange_traced, Codesign, CoreError, ExchangeResult};

/// The outcome of planning a whole package.
#[derive(Debug, Clone, PartialEq)]
pub struct PackageReport {
    /// Final per-side assignments, in [`QuadrantSide::ALL`] order.
    pub assignments: [Assignment; 4],
    /// Per-side routing reports after the exchange step.
    pub routing: [RoutingReport; 4],
    /// Full-package IR-drop before the exchange (V), if power nets exist.
    pub ir_before: Option<f64>,
    /// Full-package IR-drop after the exchange (V).
    pub ir_after: Option<f64>,
    /// Shared congestion along the four diagonal cut-lines.
    pub cutlines: CutlineReport,
}

impl PackageReport {
    /// The worst per-side max density.
    #[must_use]
    pub fn max_density(&self) -> u32 {
        self.routing
            .iter()
            .map(|r| r.max_density)
            .max()
            .unwrap_or(0)
    }
}

/// Full-package IR-drop (volts) from per-side assignments: every side's
/// power pads are mapped to their true perimeter positions and the grid is
/// solved once. Returns `None` when the package has no power nets.
///
/// # Errors
///
/// Propagates model/solver errors.
pub fn evaluate_package_ir(
    package: &Package,
    assignments: &[Assignment; 4],
    grid: &GridSpec,
) -> Result<Option<f64>, CoreError> {
    evaluate_package_ir_traced(package, assignments, grid, &mut NoopRecorder)
}

/// [`evaluate_package_ir`] with telemetry: the grid solve streams its
/// per-sweep residuals into `recorder`.
///
/// # Errors
///
/// As [`evaluate_package_ir`].
pub fn evaluate_package_ir_traced(
    package: &Package,
    assignments: &[Assignment; 4],
    grid: &GridSpec,
    recorder: &mut dyn Recorder,
) -> Result<Option<f64>, CoreError> {
    let pads = package.pads_of_kind(assignments, NetKind::Power)?;
    if pads.is_empty() {
        return Ok(None);
    }
    let ring = PadRing::from_ts(pads.iter().map(|(_, slot)| slot.t))?;
    Ok(Some(
        solve_sor_warm_traced(grid, &ring, None, recorder)?.max_drop(),
    ))
}

/// Anneals and analyses one side; the unit of work the package planner
/// fans out across threads. The recorder receives the side's exchange
/// events plus one `RoutingEvaluated` for the post-exchange analysis.
fn plan_side(
    side: QuadrantSide,
    quadrant: &Quadrant,
    initial: &Assignment,
    config: &Codesign,
    recorder: &mut dyn Recorder,
) -> Result<(Assignment, RoutingReport), CoreError> {
    let mut side_config = config.exchange.clone();
    // The derived seed depends only on the side, so the outcome is the
    // same whether the sides run serially or concurrently.
    side_config.seed = config.exchange.seed.wrapping_add(side.index() as u64 + 1);
    let ExchangeResult { assignment, .. } =
        exchange_traced(quadrant, initial, &config.stack, &side_config, recorder)?;
    let report = analyze(quadrant, &assignment, config.density_model)?;
    if recorder.enabled() {
        recorder.record(&Event::RoutingEvaluated {
            max_density: report.max_density,
            total_wirelength: report.total_wirelength,
        });
    }
    Ok((assignment, report))
}

/// Resolves a `threads` setting: `0` means the machine's available
/// parallelism.
pub(crate) fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    }
}

/// Plans every quadrant of `package` with the two-step flow and evaluates
/// the package as a whole.
///
/// Each side gets a distinct annealing seed derived from
/// `config.exchange.seed` so symmetric packages do not anneal in lockstep.
/// The four sides are independent, so they are annealed concurrently on up
/// to [`Codesign::threads`] OS threads (`0` = available parallelism,
/// `1` = serial); because the per-side seeds depend only on the side, the
/// report is **bit-identical for every thread count**.
///
/// # Errors
///
/// Propagates errors from any side's assignment or exchange, or from the
/// package-level evaluation.
pub fn plan_package(package: &Package, config: &Codesign) -> Result<PackageReport, CoreError> {
    plan_package_traced(package, config, &mut NoopRecorder)
}

/// [`plan_package`] with telemetry.
///
/// Each worker thread records its side into a private
/// [`TraceBuffer`] (recorders are `&mut`-threaded, never shared); the
/// buffers are then replayed into `recorder` in [`QuadrantSide::ALL`]
/// order, bracketed by `SideBegin`/`SideEnd` markers, regardless of
/// which thread finished first. The merged trace is therefore identical
/// for every thread count except for the wall-clock `seconds` field of
/// `SideEnd` — the CI determinism check strips exactly that field.
///
/// # Errors
///
/// As [`plan_package`].
pub fn plan_package_traced(
    package: &Package,
    config: &Codesign,
    recorder: &mut dyn Recorder,
) -> Result<PackageReport, CoreError> {
    let rec_on = recorder.enabled();
    let rec_rejected = rec_on && recorder.wants_rejected();
    let side_buffer = || {
        if rec_rejected {
            TraceBuffer::with_rejected()
        } else {
            TraceBuffer::new()
        }
    };
    let mut initials: Vec<Assignment> = Vec::with_capacity(4);
    for (_, quadrant) in package.quadrants() {
        initials.push(assign(quadrant, config.method)?);
    }
    let initials: [Assignment; 4] = initials.try_into().expect("four quadrants");
    let ir_before = evaluate_package_ir_traced(package, &initials, &config.grid, recorder)?;

    let sides: Vec<(QuadrantSide, &Quadrant)> = package.quadrants().collect();
    let workers = effective_threads(config.threads).min(sides.len()).max(1);
    let mut planned: Vec<Option<Result<(Assignment, RoutingReport), CoreError>>> =
        (0..sides.len()).map(|_| None).collect();
    // One `(trace, wall seconds)` slot per side, filled by whichever
    // worker plans it, merged below in side order.
    let mut traces: Vec<Option<(TraceBuffer, f64)>> = (0..sides.len()).map(|_| None).collect();
    let plan_one = |side: QuadrantSide,
                    quadrant: &Quadrant,
                    initial: &Assignment,
                    trace_slot: &mut Option<(TraceBuffer, f64)>|
     -> Result<(Assignment, RoutingReport), CoreError> {
        if rec_on {
            let mut buf = side_buffer();
            let start = std::time::Instant::now();
            let planned = plan_side(side, quadrant, initial, config, &mut buf);
            *trace_slot = Some((buf, start.elapsed().as_secs_f64()));
            planned
        } else {
            plan_side(side, quadrant, initial, config, &mut NoopRecorder)
        }
    };
    if workers == 1 {
        for (slot, (side, quadrant)) in sides.iter().enumerate() {
            planned[slot] = Some(plan_one(
                *side,
                quadrant,
                &initials[slot],
                &mut traces[slot],
            ));
        }
    } else {
        // Contiguous chunks keep the output slots disjoint per worker, so
        // each scoped thread owns its slice of the result vector.
        let chunk = sides.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for (((work, init), out), trace_out) in sides
                .chunks(chunk)
                .zip(initials.chunks(chunk))
                .zip(planned.chunks_mut(chunk))
                .zip(traces.chunks_mut(chunk))
            {
                let plan_one = &plan_one;
                scope.spawn(move || {
                    for ((((side, quadrant), initial), slot), trace_slot) in
                        work.iter().zip(init).zip(out.iter_mut()).zip(trace_out)
                    {
                        *slot = Some(plan_one(*side, quadrant, initial, trace_slot));
                    }
                });
            }
        });
    }
    if rec_on {
        for (slot, trace) in traces.into_iter().enumerate() {
            let (buf, seconds) = trace.expect("every side traced");
            recorder.record(&Event::SideBegin { side: slot as u8 });
            for event in buf.events() {
                recorder.record(event);
            }
            recorder.record(&Event::SideEnd {
                side: slot as u8,
                seconds,
            });
        }
    }
    let mut finals: Vec<Assignment> = Vec::with_capacity(4);
    let mut routing: Vec<RoutingReport> = Vec::with_capacity(4);
    for result in planned {
        let (assignment, report) = result.expect("every side planned")?;
        finals.push(assignment);
        routing.push(report);
    }
    let finals: [Assignment; 4] = finals.try_into().expect("four quadrants");
    let ir_after = evaluate_package_ir_traced(package, &finals, &config.grid, recorder)?;
    let cutlines = cutline_congestion(package, &finals, config.density_model)?;

    let _ = QuadrantSide::ALL; // order contract documented above
    Ok(PackageReport {
        assignments: finals,
        routing: routing.try_into().expect("four quadrants"),
        ir_before,
        ir_after,
        cutlines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExchangeConfig, Schedule};
    use copack_geom::{NetKind, Quadrant};
    use copack_route::is_monotonic;

    fn package() -> Package {
        let q = Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .net_kind(10u32, NetKind::Power)
            .net_kind(5u32, NetKind::Power)
            .net_kind(9u32, NetKind::Power)
            .net_kind(0u32, NetKind::Ground)
            .build()
            .unwrap();
        Package::uniform(q)
    }

    fn fast() -> Codesign {
        Codesign {
            grid: GridSpec::default_chip(16),
            exchange: ExchangeConfig {
                // Base seed chosen so the per-side derived seeds visibly
                // desynchronise on this tiny fixture under the workspace
                // RNG stream (see `distinct_seeds_desynchronise_the_sides`).
                seed: 42,
                schedule: Schedule {
                    moves_per_temp_per_finger: 1,
                    final_temp_ratio: 1e-2,
                    cooling: 0.85,
                    ..Schedule::default()
                },
                ..ExchangeConfig::default()
            },
            ..Codesign::default()
        }
    }

    #[test]
    fn plans_all_four_sides_legally() {
        let p = package();
        let report = plan_package(&p, &fast()).unwrap();
        for (side, quadrant) in p.quadrants() {
            assert!(is_monotonic(quadrant, &report.assignments[side.index()]));
        }
        assert!(report.max_density() > 0);
        assert!(report.ir_before.is_some());
        assert!(report.ir_after.is_some());
    }

    #[test]
    fn package_ir_does_not_regress() {
        let p = package();
        let report = plan_package(&p, &fast()).unwrap();
        let (before, after) = (report.ir_before.unwrap(), report.ir_after.unwrap());
        assert!(after <= before * 1.05, "{before} -> {after}");
    }

    #[test]
    fn distinct_seeds_desynchronise_the_sides() {
        // Identical quadrants, but per-side seeds: at least two sides end
        // with different final orders.
        let p = package();
        let report = plan_package(&p, &fast()).unwrap();
        let orders: std::collections::HashSet<String> =
            report.assignments.iter().map(ToString::to_string).collect();
        assert!(orders.len() > 1, "all sides annealed identically");
    }

    #[test]
    fn thread_count_never_changes_the_plan() {
        // The per-side seeds depend only on the side, so the serial path
        // and any parallel schedule must produce bit-identical reports.
        let p = package();
        let serial = plan_package(
            &p,
            &Codesign {
                threads: 1,
                ..fast()
            },
        )
        .unwrap();
        for threads in [0usize, 2, 3, 4, 16] {
            let parallel = plan_package(&p, &Codesign { threads, ..fast() }).unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn package_ir_matches_replicated_evaluation_for_symmetric_plans() {
        // If all sides share one assignment, the package evaluation must
        // equal the single-quadrant `evaluate_ir` replication.
        let p = package();
        let (_, q) = p.quadrants().next().unwrap();
        let a = crate::dfa(q, 1).unwrap();
        let grid = GridSpec::default_chip(16);
        let assignments = [a.clone(), a.clone(), a.clone(), a.clone()];
        let package_ir = evaluate_package_ir(&p, &assignments, &grid)
            .unwrap()
            .unwrap();
        let replicated = crate::evaluate_ir(q, &a, &grid).unwrap().unwrap();
        assert!((package_ir - replicated).abs() < 1e-12);
    }

    #[test]
    fn powerless_package_reports_none() {
        let q = Quadrant::builder().row([1u32, 2]).build().unwrap();
        let p = Package::uniform(q.clone());
        let a = Assignment::from_order([1u32, 2]);
        let assignments = [a.clone(), a.clone(), a.clone(), a];
        let grid = GridSpec::default_chip(12);
        assert_eq!(evaluate_package_ir(&p, &assignments, &grid).unwrap(), None);
    }
}
