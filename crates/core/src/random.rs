//! The random monotonic baseline the paper compares against.

use copack_geom::{Assignment, NetId, Quadrant};
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::CoreError;

/// Generates a uniformly random finger order that respects the monotonic
/// rule — the paper's baseline: "the random method denotes that the
/// assignment order conforms the monotonic rule and other factors are
/// ignored" (§4).
///
/// The sampler draws uniformly over all legal orders: it shuffles a
/// multiset of row labels (one per net) and fills each row's label slots
/// with that row's nets in ball order. Every legal interleaving of the rows
/// is produced with equal probability.
///
/// Deterministic for a given `seed`.
///
/// # Errors
///
/// Currently infallible for a valid [`Quadrant`], but returns
/// [`CoreError`] for interface consistency with the other assignment
/// methods.
pub fn random_assignment(quadrant: &Quadrant, seed: u64) -> Result<Assignment, CoreError> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // One label per net: which row it comes from.
    let mut labels: Vec<u32> = Vec::with_capacity(quadrant.net_count());
    for (row, nets) in quadrant.rows_bottom_up() {
        labels.extend(std::iter::repeat(row.get()).take(nets.len()));
    }
    labels.shuffle(&mut rng);

    // Fill each row's labelled slots in ball order.
    let mut cursors = vec![0usize; quadrant.row_count() + 1];
    let mut order: Vec<NetId> = Vec::with_capacity(labels.len());
    for label in labels {
        let row = quadrant.row(label);
        let c = &mut cursors[label as usize];
        order.push(row[*c]);
        *c += 1;
    }
    Ok(Assignment::from_order(order))
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_route::is_monotonic;

    fn fig5() -> Quadrant {
        Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .build()
            .unwrap()
    }

    #[test]
    fn random_orders_are_always_monotonic() {
        let q = fig5();
        for seed in 0..200 {
            let a = random_assignment(&q, seed).unwrap();
            assert!(is_monotonic(&q, &a), "seed {seed}");
            assert_eq!(a.net_count(), 12);
        }
    }

    #[test]
    fn same_seed_reproduces() {
        let q = fig5();
        let a = random_assignment(&q, 7).unwrap();
        let b = random_assignment(&q, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_vary() {
        let q = fig5();
        let distinct: std::collections::HashSet<String> = (0..20)
            .map(|s| random_assignment(&q, s).unwrap().to_string())
            .collect();
        assert!(
            distinct.len() > 10,
            "only {} distinct orders",
            distinct.len()
        );
    }

    #[test]
    fn every_net_appears_exactly_once() {
        let q = fig5();
        let a = random_assignment(&q, 3).unwrap();
        let mut nets: Vec<u32> = a.order().iter().map(|n| n.raw()).collect();
        nets.sort_unstable();
        assert_eq!(nets, vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
    }

    #[test]
    fn single_row_quadrant_has_only_one_order() {
        let q = Quadrant::builder().row([5u32, 6, 7]).build().unwrap();
        for seed in 0..10 {
            let a = random_assignment(&q, seed).unwrap();
            assert_eq!(a.to_string(), "5,6,7");
        }
    }

    #[test]
    fn interleavings_are_roughly_uniform() {
        // Two rows of one net each: exactly two legal orders; a uniform
        // sampler should produce both in ~half of the draws.
        let q = Quadrant::builder().row([1u32]).row([2u32]).build().unwrap();
        let mut first = 0;
        let n = 400;
        for seed in 0..n {
            let a = random_assignment(&q, seed).unwrap();
            if a.to_string() == "1,2" {
                first += 1;
            }
        }
        assert!((120..280).contains(&first), "{first}/{n} draws");
    }
}
