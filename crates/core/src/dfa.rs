//! Density-Interval-Based Finger/Pad Assignment (DFA, paper Fig. 11).

use copack_geom::{Assignment, FingerIdx, Quadrant};

use crate::CoreError;

/// Runs DFA: rows are processed from the highest line down; for each row a
/// *density interval* `DI` spreads the row's nets evenly over the finger
/// slots still unassigned, so that the wires of all lower rows can flow
/// through the gaps.
///
/// The density interval (calibrated against the paper's Fig. 12 worked
/// example; see `DESIGN.md`) is
///
/// ```text
/// DI_y = (R_y − m_y) / (V_top + slack)
/// ```
///
/// with `R_y` the nets not yet assigned (including row `y`'s own `m_y`
/// nets) — so the numerator is the nets that will still *cross* the highest
/// line after this row — and `V_top` the via-site count of the highest line
/// (top-row balls + 1), whose `V_top + slack` segments are where all those
/// crossings land under monotonic routing. `slack ≥ 1` is the paper's `n`
/// parameter: 1 when the congestion along the quadrant's diagonal cut-lines
/// is ignored, ≥ 2 to reserve room there. Each ball `x` then claims the
/// `(⌊x·DI⌋ + 1)`-th unassigned slot (clamped to the last available).
///
/// For the Fig. 12 instance this gives `DI = 1.8, 1.0, 0` for the three
/// rows — the paper states the first explicitly ("DI = (12−3)/(4+1) = 1.8")
/// and the other two follow from its placements.
///
/// Complexity `O(n log n)` in the net count (a Fenwick-tree free-slot
/// select per placement), effectively the paper's `O(n)` claim.
///
/// # Errors
///
/// Returns [`CoreError::BadConfig`] if `slack` is zero.
///
/// # Example
///
/// The paper's Fig. 12 worked example, reproduced exactly:
///
/// ```
/// use copack_core::dfa;
/// use copack_geom::Quadrant;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let q = Quadrant::builder()
///     .row([10u32, 2, 4, 7, 0])
///     .row([1u32, 3, 5, 8])
///     .row([11u32, 6, 9])
///     .build()?;
/// assert_eq!(dfa(&q, 1)?.to_string(), "10,11,1,2,6,3,4,9,5,7,8,0");
/// # Ok(())
/// # }
/// ```
pub fn dfa(quadrant: &Quadrant, slack: u32) -> Result<Assignment, CoreError> {
    if slack == 0 {
        return Err(CoreError::BadConfig { parameter: "slack" });
    }
    let alpha = quadrant.finger_count();
    let mut assignment = Assignment::empty(alpha);
    let mut free = FreeSlots::new(alpha);
    let mut remaining = quadrant.net_count();
    let top_sites = quadrant.row(quadrant.top_row()).len() as f64 + 1.0;

    for (_, row) in quadrant.rows_top_down() {
        let m = row.len();
        let di = (remaining - m) as f64 / (top_sites + f64::from(slack));
        for (i, &net) in row.iter().enumerate() {
            let x = i + 1;
            let en = (x as f64 * di).floor() as usize;
            // The (EN+1)-th unassigned slot, clamped so that the rest of
            // this row still fits to its right (keeps the row's nets in
            // ball order, i.e. monotonic-legal). The bound is constant
            // within a row, so clamped ranks stay non-decreasing.
            let target_rank = en.min(free.remaining() - (m - i));
            let slot = free.take_nth(target_rank);
            assignment
                .place(net, FingerIdx::from_zero_based(slot))
                .expect("slot was free");
        }
        remaining -= m;
    }
    Ok(assignment)
}

/// A Fenwick-tree set of free slot indices with `O(log n)` "take the
/// k-th free slot" — this is what makes DFA effectively linear(ithmic),
/// matching the paper's `O(n)` claim (a naive scan would be quadratic).
struct FreeSlots {
    /// 1-based Fenwick tree over slot occupancy (1 = free).
    tree: Vec<usize>,
    len: usize,
    remaining: usize,
}

impl FreeSlots {
    fn new(len: usize) -> Self {
        let mut tree = vec![0usize; len + 1];
        for i in 1..=len {
            tree[i] += 1;
            let j = i + (i & i.wrapping_neg());
            if j <= len {
                let add = tree[i];
                tree[j] += add;
            }
        }
        Self {
            tree,
            len,
            remaining: len,
        }
    }

    fn remaining(&self) -> usize {
        self.remaining
    }

    /// Removes and returns the 0-based index of the `rank`-th free slot.
    fn take_nth(&mut self, rank: usize) -> usize {
        debug_assert!(rank < self.remaining, "rank out of range");
        // Binary lifting: find the smallest prefix holding rank + 1 frees.
        let mut pos = 0usize;
        let mut want = rank + 1;
        let mut step = self.len.next_power_of_two();
        while step > 0 {
            let next = pos + step;
            if next <= self.len && self.tree[next] < want {
                want -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        let slot = pos; // 0-based: prefix `pos` holds rank frees, slot pos+1 is it
                        // Mark occupied.
        let mut i = slot + 1;
        while i <= self.len {
            self.tree[i] -= 1;
            i += i & i.wrapping_neg();
        }
        self.remaining -= 1;
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_route::is_monotonic;

    fn fig5() -> Quadrant {
        Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .build()
            .unwrap()
    }

    #[test]
    fn reproduces_the_papers_worked_example() {
        // Fig. 12: "The final order of the nets is 10,11,1,2,6,3,4,9,5,7,8,0".
        let a = dfa(&fig5(), 1).unwrap();
        assert_eq!(a.to_string(), "10,11,1,2,6,3,4,9,5,7,8,0");
    }

    #[test]
    fn worked_example_intermediate_placements_match() {
        // Fig. 12 narrates: net 11 → F2, net 6 → F5 ("the (3+1)th
        // unassigned space"), net 9 → F8.
        let a = dfa(&fig5(), 1).unwrap();
        assert_eq!(a.position_of(11.into()).unwrap().get(), 2);
        assert_eq!(a.position_of(6.into()).unwrap().get(), 5);
        assert_eq!(a.position_of(9.into()).unwrap().get(), 8);
    }

    #[test]
    fn output_is_monotonic_legal_for_all_slacks() {
        let q = fig5();
        for slack in 1..=4 {
            let a = dfa(&q, slack).unwrap();
            assert!(is_monotonic(&q, &a), "slack {slack}");
            assert_eq!(a.net_count(), 12);
        }
    }

    #[test]
    fn zero_slack_is_rejected() {
        assert!(matches!(
            dfa(&fig5(), 0),
            Err(CoreError::BadConfig { parameter: "slack" })
        ));
    }

    #[test]
    fn single_row_spreads_or_packs_depending_on_fingers() {
        // With exactly as many fingers as nets, a single row is dense.
        let q = Quadrant::builder().row([1u32, 2, 3]).build().unwrap();
        assert_eq!(dfa(&q, 1).unwrap().to_string(), "1,2,3");
        // With spare fingers the row spreads out (DI = 0 here because
        // remaining − m = 0; spreading shows once lower rows exist).
        let q = Quadrant::builder()
            .row([1u32, 2, 3])
            .fingers(6)
            .build()
            .unwrap();
        let a = dfa(&q, 1).unwrap();
        assert_eq!(a.net_count(), 3);
        assert_eq!(a.finger_count(), 6);
    }

    #[test]
    fn dfa_matches_or_beats_ifa_on_the_fig5_instance() {
        use copack_route::{density_map, DensityModel};
        // Figure-style geometry (fingers span the ball grid), under which
        // the paper reports DFA = 2 and IFA = 2 for this instance.
        let geometry = copack_geom::QuadrantGeometry {
            ball_pitch: 1.0,
            finger_pitch: 0.5,
            finger_width: 0.3,
            finger_height: 0.4,
            via_diameter: 0.1,
            ball_diameter: 0.2,
        };
        let q = Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .geometry(geometry)
            .build()
            .unwrap();
        let d_dfa = density_map(&q, &dfa(&q, 1).unwrap(), DensityModel::Geometric)
            .unwrap()
            .max_density();
        let d_ifa = density_map(&q, &crate::ifa(&q).unwrap(), DensityModel::Geometric)
            .unwrap()
            .max_density();
        assert!(d_dfa <= d_ifa);
    }

    #[test]
    fn deep_grids_stay_legal() {
        // 6 rows of growing width — a deep BGA where IFA degrades
        // (paper Fig. 13's motivation) but DFA must stay legal.
        let mut b = Quadrant::builder();
        let mut id = 0u32;
        let mut rows: Vec<Vec<u32>> = Vec::new();
        for w in (1..=6).rev() {
            let row: Vec<u32> = (0..w + 2)
                .map(|_| {
                    id += 1;
                    id
                })
                .collect();
            rows.push(row);
        }
        for r in &rows {
            b = b.row(r.iter().copied());
        }
        let q = b.build().unwrap();
        for slack in [1, 2, 3] {
            let a = dfa(&q, slack).unwrap();
            assert!(is_monotonic(&q, &a), "slack {slack}");
        }
    }

    #[test]
    fn higher_slack_reserves_room_at_the_edges() {
        // Larger slack shrinks DI, pulling nets leftward (more of the
        // rightmost fingers stay for later rows / cut-line room).
        let q = fig5();
        let a1 = dfa(&q, 1).unwrap();
        let a3 = dfa(&q, 3).unwrap();
        let pos1 = a1.position_of(9.into()).unwrap().get();
        let pos3 = a3.position_of(9.into()).unwrap().get();
        assert!(pos3 <= pos1);
    }
}
