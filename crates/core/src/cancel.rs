//! Cooperative cancellation for long-running runs.
//!
//! The annealing kernel is the workspace's only unbounded-ish loop: a
//! production schedule proposes millions of moves, and a resident service
//! (`copack-serve`) must be able to abandon a job that exceeds its
//! wall-clock budget without killing the worker thread. A [`CancelToken`]
//! carries that request: the owner either flips the shared flag
//! ([`CancelToken::cancel`]) or builds the token with a deadline, and the
//! kernel polls [`CancelToken::is_cancelled`] at temperature-step
//! boundaries (plus every few hundred proposals inside a step, so a huge
//! step cannot stall the abort).
//!
//! Polling a default token is a single relaxed atomic load — the
//! uncancellable path stays effectively free, and cancellation never
//! perturbs the RNG stream, so a run that completes under a token is
//! bit-identical to one without.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable cancellation handle (clones observe the same flag).
///
/// Created cancelled-never by [`CancelToken::default`]; add a wall-clock
/// budget with [`CancelToken::with_deadline`] / [`deadline_in`], or flip
/// it manually from any thread with [`cancel`].
///
/// [`deadline_in`]: CancelToken::deadline_in
/// [`cancel`]: CancelToken::cancel
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`cancel`](Self::cancel) is called.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally reports cancelled once `deadline` passes.
    #[must_use]
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// A token whose deadline is `timeout` from now.
    #[must_use]
    pub fn deadline_in(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// Requests cancellation; every clone of the token observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been cancelled or its deadline has passed.
    ///
    /// Without a deadline this is one relaxed atomic load; with one it
    /// additionally reads the monotonic clock.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_token_never_cancels() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
    }

    #[test]
    fn manual_cancel_is_seen_by_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        t.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn past_deadline_reports_cancelled() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let far = CancelToken::deadline_in(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }
}
