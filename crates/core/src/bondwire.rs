//! Physical bonding-wire length model for stacking ICs.
//!
//! The ω metric (see [`crate::omega`]) is the paper's *optimisation*
//! surrogate for bonding wires; this module provides the corresponding
//! *physical* length model so the surrogate can be validated: each tier's
//! pads are spread uniformly along that tier's (shrunken) die edge in
//! finger order, and a wire from finger `F_a` to a pad on tier `d` pays the
//! horizontal offset plus the tier's vertical drop and edge set-back.

use copack_geom::{Assignment, NetId, Quadrant, StackConfig, TierId};

use crate::CoreError;

/// Bonding-wire length of every net, in finger order.
///
/// The pad of the `r`-th tier-`d` net (counting tier-`d` nets left to right
/// by finger position) sits at
/// `x = span_d · ((r − ½)/k_d − ½)` on tier `d`'s edge, where `span_d` is
/// the base finger span minus twice the tier's shrink, and `k_d` the
/// tier-`d` net count. The wire length is then
/// `√(Δx² + reach_d²)` with `reach_d² = (gap + shrink_d)² + drop_d²`.
///
/// # Errors
///
/// * [`CoreError::Geom`] if a placed net is unknown.
/// * [`CoreError::BadConfig`] if a net's tier exceeds the stack.
pub fn bondwire_lengths(
    quadrant: &Quadrant,
    assignment: &Assignment,
    stack: &StackConfig,
) -> Result<Vec<(NetId, f64)>, CoreError> {
    let alpha = assignment.finger_count() as f64;
    let base_span = alpha * quadrant.geometry().finger_pitch;
    let gap = quadrant.geometry().finger_height;

    // Tier-d nets in finger order.
    let mut by_tier: Vec<Vec<(NetId, f64)>> = vec![Vec::new(); stack.tiers as usize];
    for (finger, net) in assignment.iter() {
        let tier = quadrant
            .net(net)
            .ok_or(copack_geom::GeomError::UnknownNet { net })?
            .tier;
        if stack.check_tier(tier).is_err() {
            return Err(CoreError::BadConfig { parameter: "tier" });
        }
        let fx = quadrant.finger_center(finger).x;
        by_tier[(tier.get() - 1) as usize].push((net, fx));
    }

    let mut lengths = Vec::with_capacity(assignment.net_count());
    for (d0, nets) in by_tier.iter().enumerate() {
        let tier = TierId::new(d0 as u8 + 1);
        let k = nets.len() as f64;
        let span = (base_span - 2.0 * stack.shrink_of(tier)).max(base_span * 0.1);
        let reach = {
            let setback = gap + stack.shrink_of(tier);
            let drop = stack.drop_of(tier);
            setback.hypot(drop)
        };
        for (r, &(net, fx)) in nets.iter().enumerate() {
            let pad_x = span * ((r as f64 + 0.5) / k - 0.5);
            let len = (fx - pad_x).hypot(reach);
            lengths.push((net, len));
        }
    }
    lengths.sort_by_key(|&(net, _)| {
        assignment
            .position_of(net)
            .expect("net came from the assignment")
    });
    Ok(lengths)
}

/// Total bonding-wire length of the assignment.
///
/// # Errors
///
/// Propagates [`bondwire_lengths`] errors.
pub fn total_bondwire(
    quadrant: &Quadrant,
    assignment: &Assignment,
    stack: &StackConfig,
) -> Result<f64, CoreError> {
    Ok(bondwire_lengths(quadrant, assignment, stack)?
        .iter()
        .map(|&(_, l)| l)
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-tier quadrant mirroring the paper's Fig. 4: 12 nets, 6 per tier.
    fn fig4(tiers_blocked: bool) -> (Quadrant, Assignment) {
        let mut b = Quadrant::builder().row(1u32..=12);
        for n in 1u32..=12 {
            let tier = if tiers_blocked {
                // (A): pairs of fingers share a tier → long wires.
                TierId::new(if (n - 1) / 2 % 2 == 0 { 2 } else { 1 })
            } else {
                // (B): tiers alternate finger by finger → short wires.
                TierId::new(((n - 1) % 2) as u8 + 1)
            };
            b = b.net_tier(n, tier);
        }
        let q = b.build().unwrap();
        let a = Assignment::from_order(1u32..=12);
        (q, a)
    }

    #[test]
    fn every_net_gets_a_positive_length() {
        let (q, a) = fig4(false);
        let stack = StackConfig::stacked(2).unwrap();
        let lens = bondwire_lengths(&q, &a, &stack).unwrap();
        assert_eq!(lens.len(), 12);
        for &(_, l) in &lens {
            assert!(l > 0.0);
        }
    }

    #[test]
    fn interleaved_tiers_are_shorter_than_blocked() {
        // The paper's Fig. 4 claim: (B)'s interleaving beats (A)'s blocks.
        let stack = StackConfig::stacked(2).unwrap();
        let (qa, aa) = fig4(true);
        let (qb, ab) = fig4(false);
        let blocked = total_bondwire(&qa, &aa, &stack).unwrap();
        let interleaved = total_bondwire(&qb, &ab, &stack).unwrap();
        assert!(
            interleaved < blocked,
            "interleaved {interleaved} !< blocked {blocked}"
        );
    }

    #[test]
    fn omega_orders_agree_with_physical_lengths() {
        // ω = 0 (interleaved) must correspond to the shorter wires; this is
        // the validation of the surrogate.
        let stack = StackConfig::stacked(2).unwrap();
        let (qa, aa) = fig4(true);
        let (qb, ab) = fig4(false);
        let om_a = crate::omega_of_assignment(&qa, &aa, 2).unwrap();
        let om_b = crate::omega_of_assignment(&qb, &ab, 2).unwrap();
        assert!(om_b < om_a);
        let len_a = total_bondwire(&qa, &aa, &stack).unwrap();
        let len_b = total_bondwire(&qb, &ab, &stack).unwrap();
        assert!(len_b < len_a);
    }

    #[test]
    fn higher_tiers_pay_more_reach() {
        // Same order, more tiers stacked: wires to tier 3 are longer than
        // the same horizontal offsets to tier 1.
        let mut b = Quadrant::builder().row([1u32, 2]);
        b = b
            .net_tier(1u32, TierId::new(1))
            .net_tier(2u32, TierId::new(3));
        let q = b.build().unwrap();
        let a = Assignment::from_order([1u32, 2]);
        let stack = StackConfig::stacked(3).unwrap();
        let lens = bondwire_lengths(&q, &a, &stack).unwrap();
        let l1 = lens.iter().find(|&&(n, _)| n.raw() == 1).unwrap().1;
        let l3 = lens.iter().find(|&&(n, _)| n.raw() == 2).unwrap().1;
        assert!(l3 > l1);
    }

    #[test]
    fn planar_stack_reduces_to_pad_offset_geometry() {
        let q = Quadrant::builder().row([1u32, 2, 3]).build().unwrap();
        let a = Assignment::from_order([1u32, 2, 3]);
        let lens = bondwire_lengths(&q, &a, &StackConfig::planar()).unwrap();
        // Symmetric layout: outer wires equal, middle shortest.
        assert!((lens[0].1 - lens[2].1).abs() < 1e-9);
        assert!(lens[1].1 <= lens[0].1);
    }

    #[test]
    fn tier_outside_stack_is_rejected() {
        let q = Quadrant::builder()
            .row([1u32])
            .net_tier(1u32, TierId::new(4))
            .build()
            .unwrap();
        let a = Assignment::from_order([1u32]);
        assert!(matches!(
            total_bondwire(&q, &a, &StackConfig::stacked(2).unwrap()),
            Err(CoreError::BadConfig { .. })
        ));
    }
}
