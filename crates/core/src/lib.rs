//! Congestion-driven finger/pad assignment and IR-drop-aware exchange:
//! the primary contribution of *"Package routability- and IR-drop-aware
//! finger/pad assignment in chip-package co-design"* (Lu, Chen, Liu, Shih;
//! DATE 2009, extended in INTEGRATION 2012).
//!
//! The paper plans the net order on a BGA quadrant's finger row in two
//! steps:
//!
//! 1. **Congestion-driven assignment** — produce a monotonic-legal net
//!    order with low package wire density:
//!    * [`random_assignment`] — the baseline: a uniformly random order that
//!      merely respects the monotonic rule;
//!    * [`ifa`] — Intuitive-insertion-based Finger/pad Assignment (Fig. 9),
//!      `O(n²)`;
//!    * [`dfa`] — Density-interval-based Finger/pad Assignment (Fig. 11),
//!      `O(n)`, the stronger method for deep ball grids.
//! 2. **Finger/pad exchange** ([`exchange`], Fig. 14) — simulated annealing
//!    over adjacent swaps under the monotonicity-preserving range
//!    constraint, minimising the paper's Eq. 3:
//!    `Cost = λ·Δ_IR + ρ·ID + φ·ω`, where
//!    * `Δ_IR` is the fast power-pad spacing proxy
//!      ([`copack_power::PadSpacingProxy`]),
//!    * `ID` is the increased-density penalty over the top-line sections
//!      (Eq. 2, [`increased_density`]),
//!    * `ω` is the stacking bonding-wire balance metric ([`omega`]).
//!
//! [`Codesign`] wires both steps together with the full IR-drop solve of
//! [`copack_power`] for reporting, reproducing the paper's experimental
//! flow end to end.
//!
//! # Example
//!
//! ```
//! use copack_core::{dfa, ifa, random_assignment};
//! use copack_geom::Quadrant;
//! use copack_route::{analyze, DensityModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let q = Quadrant::builder()
//!     .row([10u32, 2, 4, 7, 0])
//!     .row([1u32, 3, 5, 8])
//!     .row([11u32, 6, 9])
//!     .build()?;
//!
//! // The paper's worked examples, reproduced exactly:
//! let i = ifa(&q)?;
//! assert_eq!(i.to_string(), "10,1,11,2,3,6,4,5,9,7,8,0"); // §3.1.1
//! let d = dfa(&q, 1)?;
//! assert_eq!(d.to_string(), "10,11,1,2,6,3,4,9,5,7,8,0"); // Fig. 12
//!
//! // Any method's output is monotonic-legal, hence routable:
//! let r = random_assignment(&q, 42)?;
//! assert!(analyze(&q, &r, DensityModel::Geometric).is_ok());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anneal;
mod bondwire;
mod cancel;
mod config;
mod delta;
mod dfa;
mod error;
mod exchange;
mod ifa;
mod margin;
mod omega;
mod package_plan;
mod pipeline;
mod portfolio;
mod random;
mod sections;
mod tracker;
mod warm;

pub use anneal::{Acceptance, Schedule};
pub use bondwire::{bondwire_lengths, total_bondwire};
pub use cancel::CancelToken;
pub use config::{AssignMethod, CostWeights, ExchangeConfig, IrObjective};
pub use delta::{apply_delta, cancelling_delta, diff_quadrant, Edit, InstanceDelta, QuadrantDelta};
pub use dfa::dfa;
pub use error::CoreError;
pub use exchange::{
    exchange, exchange_cancellable, exchange_reference, exchange_reference_traced, exchange_traced,
    ExchangeResult, ExchangeStats,
};
pub use ifa::ifa;
pub use margin::{margin_penalty, MarginTracker};
pub use omega::{omega, omega_of_assignment};
pub use package_plan::{
    evaluate_package_ir, evaluate_package_ir_traced, plan_package, plan_package_traced,
    PackageReport,
};
pub use pipeline::{
    assign, evaluate_ir, evaluate_ir_map, evaluate_ir_map_traced, evaluate_supply_noise, Codesign,
    CodesignReport, SupplyNoise,
};
pub use portfolio::{
    derive_seed, exchange_portfolio, exchange_portfolio_cancellable, exchange_portfolio_traced,
    replay_journal, tempering_swap_accepts, tempering_swap_draw, tempering_swap_probability,
    PortfolioConfig, PortfolioMode, PortfolioResult, StartReport,
};
pub use random::random_assignment;
pub use sections::{increased_density, SectionBaseline};
pub use tracker::{DeltaIrTracker, OmegaTracker, SectionTracker};
pub use warm::{exchange_warm, exchange_warm_from_journal, repair_assignment, warm_schedule};
