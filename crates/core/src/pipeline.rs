//! The end-to-end co-design pipeline: congestion-driven assignment followed
//! by the IR-drop-aware exchange, evaluated like the paper's §4.

use copack_geom::{Assignment, NetKind, Quadrant, StackConfig};
use copack_obs::{Event, NoopRecorder, Recorder};
use copack_power::{
    improvement_percent, solve_sor, solve_sor_warm_traced, GridSpec, IrMap, PadRing,
};
use copack_route::{analyze, DensityModel, RoutingReport};
use serde::{Deserialize, Serialize};

use crate::{
    dfa, exchange_traced, ifa, omega_of_assignment, random_assignment, total_bondwire,
    AssignMethod, CoreError, ExchangeConfig, ExchangeResult, ExchangeStats,
};

/// Runs the chosen congestion-driven assignment method.
///
/// # Errors
///
/// Propagates the method's errors (e.g. [`CoreError::BadConfig`] for a
/// zero DFA slack).
pub fn assign(quadrant: &Quadrant, method: AssignMethod) -> Result<Assignment, CoreError> {
    match method {
        AssignMethod::Random { seed } => random_assignment(quadrant, seed),
        AssignMethod::Ifa => ifa(quadrant),
        AssignMethod::Dfa { slack } => dfa(quadrant, slack),
    }
}

/// Full-chip IR-drop (volts) of an assignment, assuming the package's four
/// quadrants all use this quadrant and order (the symmetric configuration
/// of the paper's test circuits). Power pads map onto the die perimeter and
/// the grid is solved with the full finite-difference model.
///
/// Returns `None` when the quadrant has no power nets (nothing clamps the
/// grid).
///
/// # Errors
///
/// Propagates [`CoreError::Power`] from the solver.
pub fn evaluate_ir(
    quadrant: &Quadrant,
    assignment: &Assignment,
    grid: &GridSpec,
) -> Result<Option<f64>, CoreError> {
    Ok(evaluate_ir_map(quadrant, assignment, grid, None)?.map(|map| map.max_drop()))
}

/// [`evaluate_ir`] returning the whole voltage map, with an optional
/// warm-start guess for the solver.
///
/// The annealer's `FullSolve` objective uses this to chain solves: each
/// accepted move's solution seeds the next solve
/// ([`copack_power::solve_sor_warm`]), which converges in a fraction of the
/// sweeps when only one pad moved. Pass `None` for a cold solve — then the
/// result is exactly [`solve_sor`]'s.
///
/// # Errors
///
/// As [`evaluate_ir`].
pub fn evaluate_ir_map(
    quadrant: &Quadrant,
    assignment: &Assignment,
    grid: &GridSpec,
    warm: Option<&[f64]>,
) -> Result<Option<IrMap>, CoreError> {
    evaluate_ir_map_traced(quadrant, assignment, grid, warm, &mut NoopRecorder)
}

/// [`evaluate_ir_map`] with telemetry: the SOR solve streams per-sweep
/// residuals into `recorder` (see
/// [`copack_power::solve_sor_warm_traced`]).
///
/// # Errors
///
/// As [`evaluate_ir`].
pub fn evaluate_ir_map_traced(
    quadrant: &Quadrant,
    assignment: &Assignment,
    grid: &GridSpec,
    warm: Option<&[f64]>,
    recorder: &mut dyn Recorder,
) -> Result<Option<IrMap>, CoreError> {
    let alpha = assignment.finger_count() as f64;
    let mut ts = Vec::new();
    for net in quadrant.nets_of_kind(NetKind::Power) {
        let pos = assignment
            .position_of(net)
            .ok_or(copack_route::RouteError::Unplaced { net })?;
        let frac = (pos.get() as f64 - 0.5) / alpha;
        for side in 0..4u32 {
            ts.push((f64::from(side) + frac) / 4.0);
        }
    }
    if ts.is_empty() {
        return Ok(None);
    }
    let ring = PadRing::from_ts(ts)?;
    Ok(Some(solve_sor_warm_traced(grid, &ring, warm, recorder)?))
}

/// Worst-case supply noise of a full Vdd + ground rail pair.
///
/// The paper evaluates the Vdd rail only; real sign-off adds the ground
/// network's symmetric *bounce*, and the core's usable swing shrinks by
/// both. The worst total is taken per node (the same gate sees its local
/// drop and its local bounce).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SupplyNoise {
    /// Worst Vdd-rail drop (V), from the power pads.
    pub vdd_drop: f64,
    /// Worst ground-rail bounce (V), from the ground pads.
    pub ground_bounce: f64,
    /// Worst per-node sum of drop and bounce (V).
    pub worst_total: f64,
}

/// Solves both supply rails: the Vdd grid fed by the power pads and the
/// (electrically symmetric) ground grid fed by the ground pads, and
/// combines them per node.
///
/// Returns `None` when either rail has no pads.
///
/// # Errors
///
/// Propagates [`CoreError::Power`] from the solver.
pub fn evaluate_supply_noise(
    quadrant: &Quadrant,
    assignment: &Assignment,
    grid: &GridSpec,
) -> Result<Option<SupplyNoise>, CoreError> {
    let alpha = assignment.finger_count() as f64;
    let ring_of = |kind: NetKind| -> Result<Option<PadRing>, CoreError> {
        let mut ts = Vec::new();
        for net in quadrant.nets_of_kind(kind) {
            let pos = assignment
                .position_of(net)
                .ok_or(copack_route::RouteError::Unplaced { net })?;
            let frac = (pos.get() as f64 - 0.5) / alpha;
            for side in 0..4u32 {
                ts.push((f64::from(side) + frac) / 4.0);
            }
        }
        if ts.is_empty() {
            return Ok(None);
        }
        Ok(Some(PadRing::from_ts(ts)?))
    };
    let (Some(power), Some(ground)) = (ring_of(NetKind::Power)?, ring_of(NetKind::Ground)?) else {
        return Ok(None);
    };
    let vdd_map = solve_sor(grid, &power)?;
    let gnd_map = solve_sor(grid, &ground)?;
    let mut worst_total: f64 = 0.0;
    for j in 0..grid.ny {
        for i in 0..grid.nx {
            worst_total = worst_total.max(vdd_map.drop_at(i, j) + gnd_map.drop_at(i, j));
        }
    }
    Ok(Some(SupplyNoise {
        vdd_drop: vdd_map.max_drop(),
        ground_bounce: gnd_map.max_drop(),
        worst_total,
    }))
}

/// Configuration of the full two-step co-design flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Codesign {
    /// Step 1: the congestion-driven assignment method.
    pub method: AssignMethod,
    /// Step 2: the exchange configuration.
    pub exchange: ExchangeConfig,
    /// Stack configuration (ψ = 1 for 2-D).
    pub stack: StackConfig,
    /// Power-grid model for the reported IR-drop numbers.
    pub grid: GridSpec,
    /// Density model for the routing reports.
    pub density_model: DensityModel,
    /// Worker threads for whole-package planning
    /// ([`crate::plan_package`] anneals the four quadrants concurrently).
    /// `0` means "use the machine's available parallelism"; `1` forces the
    /// serial path. Results are bit-identical for every thread count: each
    /// side's annealing seed depends only on the side, never on the
    /// schedule.
    pub threads: usize,
}

impl Default for Codesign {
    fn default() -> Self {
        Self {
            method: AssignMethod::dfa_default(),
            exchange: ExchangeConfig::default(),
            stack: StackConfig::planar(),
            grid: GridSpec::default_chip(48),
            density_model: DensityModel::Geometric,
            threads: 0,
        }
    }
}

impl Codesign {
    /// Runs assignment + exchange on one quadrant and evaluates everything
    /// the paper reports.
    ///
    /// # Errors
    ///
    /// Propagates errors from any stage; see [`exchange`] for the
    /// exchange-step conditions.
    pub fn run(&self, quadrant: &Quadrant) -> Result<CodesignReport, CoreError> {
        self.run_traced(quadrant, &mut NoopRecorder)
    }

    /// [`run`](Self::run) with telemetry: the exchange step streams its
    /// SA events, the IR evaluations their solver residuals, and each
    /// routing analysis one [`Event::RoutingEvaluated`] into `recorder`.
    /// With a disabled recorder this *is* `run` (the plain entry point
    /// delegates here) and results are bit-identical.
    ///
    /// # Errors
    ///
    /// As [`run`](Self::run).
    pub fn run_traced(
        &self,
        quadrant: &Quadrant,
        recorder: &mut dyn Recorder,
    ) -> Result<CodesignReport, CoreError> {
        fn record_routing(recorder: &mut dyn Recorder, r: &RoutingReport) {
            recorder.record(&Event::RoutingEvaluated {
                max_density: r.max_density,
                total_wirelength: r.total_wirelength,
            });
        }
        let rec_on = recorder.enabled();
        let initial = assign(quadrant, self.method)?;
        let routing_before = analyze(quadrant, &initial, self.density_model)?;
        if rec_on {
            record_routing(recorder, &routing_before);
        }
        let ir_before = evaluate_ir_map_traced(quadrant, &initial, &self.grid, None, recorder)?
            .map(|map| map.max_drop());
        let psi = self.stack.tiers;
        let omega_before = omega_of_assignment(quadrant, &initial, psi)?;
        let bondwire_before = total_bondwire(quadrant, &initial, &self.stack)?;

        let ExchangeResult { assignment, stats } =
            exchange_traced(quadrant, &initial, &self.stack, &self.exchange, recorder)?;

        let routing_after = analyze(quadrant, &assignment, self.density_model)?;
        if rec_on {
            record_routing(recorder, &routing_after);
        }
        let ir_after = evaluate_ir_map_traced(quadrant, &assignment, &self.grid, None, recorder)?
            .map(|map| map.max_drop());
        let omega_after = omega_of_assignment(quadrant, &assignment, psi)?;
        let bondwire_after = total_bondwire(quadrant, &assignment, &self.stack)?;

        let ir_improvement_percent = match (ir_before, ir_after) {
            (Some(b), Some(a)) => Some(improvement_percent(b, a)),
            _ => None,
        };
        // The paper's "Improved bonding wire (%)": the reduction in zero-bit
        // count, normalised by the total zero-bit capacity of the grouping
        // (groups x (psi-1)), which is what lands its Table 3 numbers in
        // the 10-20% band.
        let omega_improvement_percent = if psi > 1 {
            let groups = initial.finger_count().div_ceil(psi as usize) as f64;
            let capacity = groups * f64::from(psi - 1);
            Some((omega_before as f64 - omega_after as f64) / capacity * 100.0)
        } else {
            None
        };

        Ok(CodesignReport {
            initial,
            final_assignment: assignment,
            routing_before,
            routing_after,
            ir_before,
            ir_after,
            ir_improvement_percent,
            omega_before,
            omega_after,
            omega_improvement_percent,
            bondwire_before,
            bondwire_after,
            exchange: stats,
        })
    }
}

/// Everything the paper's Tables 2/3 report for one quadrant.
#[derive(Debug, Clone, PartialEq)]
pub struct CodesignReport {
    /// Order after the congestion-driven assignment.
    pub initial: Assignment,
    /// Order after the exchange step.
    pub final_assignment: Assignment,
    /// Routing analysis of the initial order.
    pub routing_before: RoutingReport,
    /// Routing analysis of the final order.
    pub routing_after: RoutingReport,
    /// Full-model IR-drop before exchange (V), if power nets exist.
    pub ir_before: Option<f64>,
    /// Full-model IR-drop after exchange (V).
    pub ir_after: Option<f64>,
    /// The paper's "Improved IR-drop (%)".
    pub ir_improvement_percent: Option<f64>,
    /// ω before exchange.
    pub omega_before: u64,
    /// ω after exchange.
    pub omega_after: u64,
    /// The paper's "Improved bonding wire (%)" (from ω, as in Table 3).
    pub omega_improvement_percent: Option<f64>,
    /// Physical bonding-wire length before (µm).
    pub bondwire_before: f64,
    /// Physical bonding-wire length after (µm).
    pub bondwire_after: f64,
    /// Annealer statistics.
    pub exchange: ExchangeStats,
}

impl CodesignReport {
    /// Physical bonding-wire improvement in percent.
    #[must_use]
    pub fn bondwire_improvement_percent(&self) -> f64 {
        improvement_percent(self.bondwire_before, self.bondwire_after)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_geom::{NetKind, TierId};

    fn quadrant() -> Quadrant {
        Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .net_kind(10u32, NetKind::Power)
            .net_kind(5u32, NetKind::Power)
            .net_kind(9u32, NetKind::Power)
            .net_kind(0u32, NetKind::Ground)
            .build()
            .unwrap()
    }

    fn fast() -> Codesign {
        Codesign {
            exchange: ExchangeConfig {
                schedule: crate::Schedule {
                    moves_per_temp_per_finger: 2,
                    final_temp_ratio: 1e-2,
                    ..crate::Schedule::default()
                },
                ..ExchangeConfig::default()
            },
            grid: GridSpec::default_chip(16),
            ..Codesign::default()
        }
    }

    #[test]
    fn assign_dispatches_all_methods() {
        let q = quadrant();
        assert_eq!(
            assign(&q, AssignMethod::Ifa).unwrap().to_string(),
            "10,1,11,2,3,6,4,5,9,7,8,0"
        );
        assert_eq!(
            assign(&q, AssignMethod::Dfa { slack: 1 })
                .unwrap()
                .to_string(),
            "10,11,1,2,6,3,4,9,5,7,8,0"
        );
        assert_eq!(
            assign(&q, AssignMethod::Random { seed: 1 })
                .unwrap()
                .net_count(),
            12
        );
    }

    #[test]
    fn evaluate_ir_reports_drop_for_powered_quadrants() {
        let q = quadrant();
        let a = assign(&q, AssignMethod::dfa_default()).unwrap();
        let ir = evaluate_ir(&q, &a, &GridSpec::default_chip(16)).unwrap();
        let drop = ir.expect("quadrant has power nets");
        assert!(drop > 0.0 && drop < 1.0);
    }

    #[test]
    fn evaluate_ir_is_none_without_power_nets() {
        let q = Quadrant::builder().row([1u32, 2]).build().unwrap();
        let a = Assignment::from_order([1u32, 2]);
        assert_eq!(
            evaluate_ir(&q, &a, &GridSpec::default_chip(16)).unwrap(),
            None
        );
    }

    #[test]
    fn full_pipeline_produces_consistent_report() {
        let q = quadrant();
        let report = fast().run(&q).unwrap();
        assert_eq!(report.initial.net_count(), 12);
        assert_eq!(report.final_assignment.net_count(), 12);
        assert!(report.ir_before.is_some());
        assert!(report.ir_improvement_percent.is_some());
        // Exchange never loses cost.
        assert!(report.exchange.final_cost <= report.exchange.initial_cost + 1e-9);
        // Planar design: omega is zero on both sides.
        assert_eq!(report.omega_before, 0);
        assert_eq!(report.omega_after, 0);
        assert_eq!(report.omega_improvement_percent, None);
    }

    #[test]
    fn exchange_step_does_not_hurt_ir() {
        // The proxy and the full model agree directionally: after the
        // exchange, the solved IR-drop must not be (meaningfully) worse.
        let q = quadrant();
        let report = fast().run(&q).unwrap();
        let before = report.ir_before.unwrap();
        let after = report.ir_after.unwrap();
        assert!(after <= before * 1.02, "IR got worse: {before} → {after}");
    }

    #[test]
    fn supply_noise_combines_both_rails() {
        let q = quadrant(); // has power and ground nets
        let a = assign(&q, AssignMethod::dfa_default()).unwrap();
        let grid = GridSpec::default_chip(16);
        let noise = evaluate_supply_noise(&q, &a, &grid)
            .unwrap()
            .expect("both rails padded");
        assert!(noise.vdd_drop > 0.0);
        assert!(noise.ground_bounce > 0.0);
        // The worst total is at least each rail's worst and at most their sum.
        assert!(noise.worst_total >= noise.vdd_drop.max(noise.ground_bounce));
        assert!(noise.worst_total <= noise.vdd_drop + noise.ground_bounce + 1e-12);
    }

    #[test]
    fn supply_noise_requires_both_rails() {
        let q = Quadrant::builder()
            .row([1u32, 2])
            .net_kind(1u32, NetKind::Power)
            .build()
            .unwrap();
        let a = Assignment::from_order([1u32, 2]);
        let grid = GridSpec::default_chip(12);
        assert_eq!(evaluate_supply_noise(&q, &a, &grid).unwrap(), None);
    }

    #[test]
    fn stacked_pipeline_reports_omega_improvement() {
        let mut b = Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .net_kind(10u32, NetKind::Power)
            .net_kind(5u32, NetKind::Power);
        for n in [10u32, 2, 4, 1, 3, 11] {
            b = b.net_tier(n, TierId::new(2));
        }
        let q = b.build().unwrap();
        let mut cfg = fast();
        cfg.stack = StackConfig::stacked(2).unwrap();
        // Let the bonding-wire term dominate so omega reliably improves on
        // this tiny instance.
        cfg.exchange.weights = crate::CostWeights {
            lambda: 0.0,
            rho: 0.5,
            phi: 1.0,
            margin: 0.0,
        };
        let report = cfg.run(&q).unwrap();
        assert!(report.omega_after <= report.omega_before);
        assert!(report.bondwire_before > 0.0 && report.bondwire_after > 0.0);
    }
}
