//! Intuitive-Insertion-Based Finger/Pad Assignment (IFA, paper Fig. 9).

use copack_geom::{Assignment, NetId, Quadrant};

use crate::CoreError;

/// Runs IFA: rows are processed from the highest line down; the top row is
/// laid out directly, and every lower row's nets are *inserted* into the
/// growing order so the monotonic rule can never be violated.
///
/// Insertion rule (from the paper's worked example — its pseudocode has an
/// off-by-one typo, see `DESIGN.md`): the net of ball `x` on row `y`
/// (`1 < x < m`) is inserted immediately **before** the net of ball `x` on
/// row `y + 1`; ball 1 goes to the front and ball `m` to the back. When row
/// `y + 1` has fewer than `x` balls, the net is inserted after the last
/// anchor instead.
///
/// Complexity `O(n²)` in the net count (each insertion is linear).
///
/// # Errors
///
/// Currently infallible for a valid [`Quadrant`]; the `Result` mirrors the
/// other assignment methods.
///
/// # Example
///
/// The paper's §3.1.1 example, reproduced exactly:
///
/// ```
/// use copack_core::ifa;
/// use copack_geom::Quadrant;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let q = Quadrant::builder()
///     .row([10u32, 2, 4, 7, 0])
///     .row([1u32, 3, 5, 8])
///     .row([11u32, 6, 9])
///     .build()?;
/// assert_eq!(ifa(&q)?.to_string(), "10,1,11,2,3,6,4,5,9,7,8,0");
/// # Ok(())
/// # }
/// ```
pub fn ifa(quadrant: &Quadrant) -> Result<Assignment, CoreError> {
    let mut order: Vec<NetId> = Vec::with_capacity(quadrant.net_count());
    let mut rows = quadrant.rows_top_down();

    // Highest line: nets map directly onto the first finger slots.
    let (_, top) = rows.next().expect("a quadrant has at least one row");
    order.extend_from_slice(top);

    let mut above: &[NetId] = top;
    for (_, row) in rows {
        let m = row.len();
        for (i, &net) in row.iter().enumerate() {
            let x = i + 1;
            if x == 1 {
                order.insert(0, net);
            } else if x == m {
                order.push(net);
            } else if x <= above.len() {
                let anchor = above[x - 1];
                let at = position_of(&order, anchor);
                order.insert(at, net);
            } else {
                // Row above is shorter than x: insert after its last net.
                let anchor = *above.last().expect("rows are non-empty");
                let at = position_of(&order, anchor) + 1 + (x - above.len() - 1);
                order.insert(at.min(order.len()), net);
            }
        }
        above = row;
    }
    Ok(Assignment::from_order(order))
}

fn position_of(order: &[NetId], net: NetId) -> usize {
    order
        .iter()
        .position(|&n| n == net)
        .expect("anchor was inserted in an earlier pass")
}

#[cfg(test)]
mod tests {
    use super::*;
    use copack_route::is_monotonic;

    fn fig5() -> Quadrant {
        Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .build()
            .unwrap()
    }

    #[test]
    fn reproduces_the_papers_worked_example() {
        // §3.1.1: "The final finger order is 10,1,11,2,3,6,4,5,9,7,8,0."
        let a = ifa(&fig5()).unwrap();
        assert_eq!(a.to_string(), "10,1,11,2,3,6,4,5,9,7,8,0");
    }

    #[test]
    fn output_is_monotonic_legal() {
        let q = fig5();
        let a = ifa(&q).unwrap();
        assert!(is_monotonic(&q, &a));
    }

    #[test]
    fn single_row_is_identity() {
        let q = Quadrant::builder().row([4u32, 5, 6]).build().unwrap();
        assert_eq!(ifa(&q).unwrap().to_string(), "4,5,6");
    }

    #[test]
    fn two_equal_rows_interleave() {
        let q = Quadrant::builder()
            .row([1u32, 2, 3])
            .row([4u32, 5, 6])
            .build()
            .unwrap();
        let a = ifa(&q).unwrap();
        // Row 2 (top) is 4,5,6; row 1 inserts 1 at front, 2 before 5
        // (ball 2 of the row above), 3 at the end.
        assert_eq!(a.to_string(), "1,4,2,5,6,3");
        assert!(is_monotonic(&q, &a));
    }

    #[test]
    fn lower_row_wider_than_upper_is_handled() {
        let q = Quadrant::builder()
            .row([1u32, 2, 3, 4, 5])
            .row([6u32])
            .build()
            .unwrap();
        let a = ifa(&q).unwrap();
        assert!(is_monotonic(&q, &a));
        assert_eq!(a.net_count(), 6);
    }

    #[test]
    fn upper_row_wider_than_lower_is_handled() {
        let q = Quadrant::builder()
            .row([9u32])
            .row([1u32, 2, 3, 4, 5])
            .build()
            .unwrap();
        let a = ifa(&q).unwrap();
        assert!(is_monotonic(&q, &a));
    }

    #[test]
    fn ifa_beats_typical_random_orders_on_density() {
        use crate::random_assignment;
        use copack_route::{density_map, DensityModel};
        let q = fig5();
        let a = ifa(&q).unwrap();
        let d_ifa = density_map(&q, &a, DensityModel::Geometric)
            .unwrap()
            .max_density();
        let mut worse = 0;
        for seed in 0..20 {
            let r = random_assignment(&q, seed).unwrap();
            let d_r = density_map(&q, &r, DensityModel::Geometric)
                .unwrap()
                .max_density();
            if d_r >= d_ifa {
                worse += 1;
            }
        }
        assert!(worse >= 15, "ifa only beat {worse}/20 random orders");
    }
}
