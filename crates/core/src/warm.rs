//! Warm-started exchange for incremental re-planning (`copack replan`).
//!
//! When a quadrant is edited, its previous plan is almost right: most
//! nets keep their relative order, and the monotonic rule is a purely
//! per-row property. So instead of a cold Random/IFA/DFA start plus a
//! full annealing schedule, the replan path, **at scale**:
//!
//! 1. **repairs** the previous assignment against the edited quadrant
//!    ([`repair_assignment`]) — surviving nets keep their old relative
//!    order, removed nets vanish, new nets append, and each ball row's
//!    occupied slots are rewritten in ball order so the result is
//!    monotonic-legal by construction;
//! 2. **reheats to cold-equivalent temperature**: the annealer
//!    auto-scales its starting temperature from the start's own cost,
//!    so a cheap repaired start would get a walk too cold to escape
//!    the basin an edit stranded it in — the initial temperature
//!    factor is scaled by the heat ratio of a fresh DFA construction
//!    over the repaired plan, matching a cold run's *absolute*
//!    starting temperature;
//! 3. **anneals a shortened schedule** from the repaired start
//!    ([`warm_schedule`]): the final-temperature ratio is raised to
//!    the 2/3 power, cutting the cooling tail — and the temperature
//!    step count — to roughly two thirds.
//!
//! Small instances (fewer fingers than the internal scratch cutoff)
//! are planned from scratch instead, bit-identically to a cold run: a
//! tiny anneal is start-dominated noise that no warm policy keeps
//! reliably equivalent, and re-running it is free.
//!
//! The combination is what `BENCH_replan.json` measures and the
//! `replan_vs_scratch` oracle proves equivalent: the warm result must
//! validate clean and land within a pinned cost band of from-scratch.

use copack_geom::{Assignment, FingerIdx, NetId, Quadrant, StackConfig};
use copack_obs::Recorder;
use copack_route::check_monotonic;

use crate::{
    dfa, exchange_cancellable, margin_penalty, CancelToken, CoreError, DeltaIrTracker,
    ExchangeConfig, ExchangeResult, Schedule,
};

/// Builds a monotonic-legal starting assignment for an edited quadrant
/// from the previous plan.
///
/// Surviving nets are packed densely (slots `1..=β`) in their previous
/// left-to-right order; a net new to the quadrant is **spliced next to
/// its row neighbours** — right after the nearest surviving ball to its
/// left in its row, else right before the nearest survivor to its
/// right, else (a wholly new row) appended in ball order. Splicing
/// matters because the warm annealer only proposes *adjacent* swaps
/// under a shortened schedule: a new net appended at the far end of the
/// order could never migrate home in the steps available. Each ball
/// row's occupied slots are then rewritten with that row's nets in ball
/// order — the monotonic rule is exactly "per-row ball order on the
/// fingers", so the result is always legal, whatever the edit did.
///
/// # Errors
///
/// [`CoreError::Route`] — defensively — if the repaired order fails the
/// monotonicity re-check (a bug, not an input condition).
pub fn repair_assignment(
    quadrant: &Quadrant,
    previous: &Assignment,
) -> Result<Assignment, CoreError> {
    let index = quadrant.net_index();
    // Survivors in previous order.
    let mut order: Vec<NetId> = Vec::with_capacity(quadrant.net_count());
    let mut placed = vec![false; index.len()];
    for (_, net) in previous.iter() {
        if let Some(i) = index.get(net) {
            if !placed[i] {
                placed[i] = true;
                order.push(net);
            }
        }
    }
    // New nets, spliced next to a row neighbour already in the order.
    for (_, nets) in quadrant.rows_bottom_up() {
        for (k, &net) in nets.iter().enumerate() {
            let i = index.get(net).expect("row net is interned");
            if placed[i] {
                continue;
            }
            let is_placed = |n: &&NetId| placed[index.get(**n).expect("row net is interned")];
            let at = if let Some(&left) = nets[..k].iter().rev().find(is_placed) {
                order
                    .iter()
                    .position(|&o| o == left)
                    .expect("placed net in order")
                    + 1
            } else if let Some(&right) = nets[k + 1..].iter().find(is_placed) {
                order
                    .iter()
                    .position(|&o| o == right)
                    .expect("placed net in order")
            } else {
                order.len()
            };
            order.insert(at, net);
            placed[i] = true;
        }
    }

    // Dense pack, then per-row reorder on a flat slot array.
    let mut slot_of = vec![usize::MAX; index.len()];
    for (slot, &net) in order.iter().enumerate() {
        slot_of[index.get(net).expect("ordered net is interned")] = slot;
    }
    let mut slots: Vec<Option<NetId>> = vec![None; quadrant.finger_count()];
    for (_, nets) in quadrant.rows_bottom_up() {
        let mut row_slots: Vec<usize> = nets
            .iter()
            .map(|&net| slot_of[index.get(net).expect("row net is interned")])
            .collect();
        row_slots.sort_unstable();
        for (&slot, &net) in row_slots.iter().zip(nets.iter()) {
            slots[slot] = Some(net);
        }
    }

    let mut repaired = Assignment::empty(quadrant.finger_count());
    for (slot, net) in slots.iter().enumerate() {
        if let Some(net) = net {
            repaired.place(*net, FingerIdx::from_zero_based(slot))?;
        }
    }
    check_monotonic(quadrant, &repaired)?;
    Ok(repaired)
}

/// The shortened annealing schedule of a warm start: the full reheat of
/// the base schedule, but a final-temperature ratio raised to the 2/3
/// power (e.g. `1e-3 → 1e-2`), which under geometric cooling cuts the
/// temperature step count to about two thirds. Cooling rate and
/// moves-per-temperature are untouched.
///
/// The full reheat is deliberate: an ECO edit can obsolete the previous
/// plan's power-pad spacing wholesale (a retype adds or removes a supply
/// pad), leaving the repaired start in a deep local minimum that only a
/// hot walk escapes. What the warm start saves is the *tail* — the slow
/// final decades of cooling exist to polish a cold random start, and a
/// repaired plan re-converges earlier.
#[must_use]
pub fn warm_schedule(base: &Schedule) -> Schedule {
    Schedule {
        final_temp_ratio: base.final_temp_ratio.powf(2.0 / 3.0),
        ..*base
    }
}

/// Cap on how far the warm reheat may scale the initial temperature
/// factor above the cold schedule's. A near-perfect repaired start has
/// near-zero heat, and matching a cold run's absolute temperature from
/// it would need an absurd factor; past this point the walk is already
/// effectively random and more heat buys nothing.
const MAX_REHEAT_SCALE: f64 = 64.0;

/// Below this finger count the replan path plans the edited quadrant
/// **from scratch** — bit-identically to a cold run — instead of
/// warm-starting. A tiny instance gives the annealer so few proposals
/// that the outcome is start-dominated noise: across the fuzz corpus,
/// neither the repaired start nor any reheat policy keeps small
/// instances reliably inside the replan band, while a from-scratch
/// anneal is equivalent *by construction* and costs microseconds at
/// this size. Warm-starting pays off exactly where it matters — at
/// scale, where the schedule has room to work and a cold anneal is
/// expensive.
const WARM_SCRATCH_CUTOFF: usize = 48;

/// The annealer's temperature base of a candidate start: the Eq. 3
/// terms that scale the starting temperature (`λ·Δ_IR + μ·SM` — the ω
/// part is excluded, exactly as the exchange driver excludes it, and
/// the ID term is zero by definition against the run's own initial).
/// Always uses the pad-spacing proxy for the IR term: this is a
/// deterministic reheat heuristic, not the annealer's objective, and
/// must stay cheap even under `IrObjective::FullSolve`.
fn start_heat(
    quadrant: &Quadrant,
    start: &Assignment,
    config: &ExchangeConfig,
) -> Result<f64, CoreError> {
    let ir = DeltaIrTracker::new(quadrant, start)?.delta_ir();
    let margin = if config.weights.margin > 0.0 {
        margin_penalty(quadrant, start) as f64
    } else {
        0.0
    };
    Ok(config.weights.lambda * ir + config.weights.margin * margin)
}

/// Runs the exchange on `quadrant` seeded from `previous` (typically
/// the plan of the quadrant *before* an edit): repair, then anneal the
/// shortened [`warm_schedule`]. Deterministic for a fixed
/// `(previous, config)` — repair is pure and the annealer is seeded.
///
/// Below [`WARM_SCRATCH_CUTOFF`] fingers the edited quadrant is simply
/// planned from scratch — same DFA start, same schedule, same seed as a
/// cold run, so the result is *bit-identical* to from-scratch and the
/// replan equivalence holds by construction (a tiny anneal is
/// start-dominated noise no warm policy keeps in band, and re-running
/// it costs nothing).
///
/// At scale the repaired plan is the start, but it interacts subtly
/// with the annealer's auto-scaled temperature: the starting
/// temperature is `initial_temp_factor × (initial cost − ω part)`, so
/// a *cheap* repaired start gets a *cold* walk — too cold to rearrange
/// the supply-pad spacing an edit obsoleted, whatever the schedule
/// length. The warm path therefore compares the repaired start's heat
/// against a fresh DFA construction's ([`start_heat`], one O(n)
/// evaluation each) and scales `initial_temp_factor` by the ratio
/// `fresh/repaired` (capped at [`MAX_REHEAT_SCALE`]), so the warm
/// anneal reheats to the same **absolute** temperature a cold run
/// would start at. Basin escape then no longer depends on how cheap
/// the start happens to be, and since the returned plan is the running
/// *minimum* over the trajectory, extra heat can never make the result
/// worse than the repaired start itself.
///
/// A single anneal either way — and the shortened schedule's step
/// count depends only on `final_temp_ratio` and `cooling`, so the
/// replan speedup holds at scale.
///
/// # Errors
///
/// As [`crate::exchange`], plus [`CoreError::Cancelled`].
pub fn exchange_warm(
    quadrant: &Quadrant,
    previous: &Assignment,
    stack: &StackConfig,
    config: &ExchangeConfig,
    recorder: &mut dyn Recorder,
    cancel: &CancelToken,
) -> Result<ExchangeResult, CoreError> {
    let repaired = repair_assignment(quadrant, previous)?;
    let fresh = dfa(quadrant, 1).ok();
    if quadrant.finger_count() < WARM_SCRATCH_CUTOFF {
        if let Some(fresh) = fresh {
            return exchange_cancellable(quadrant, &fresh, stack, config, recorder, cancel);
        }
        // No DFA construction for this instance: anneal the repaired
        // plan under the cold schedule instead.
        return exchange_cancellable(quadrant, &repaired, stack, config, recorder, cancel);
    }
    let mut warm = config.clone();
    warm.schedule = warm_schedule(&config.schedule);
    if let Some(fresh) = fresh {
        let repaired_heat = start_heat(quadrant, &repaired, config)?;
        let fresh_heat = start_heat(quadrant, &fresh, config)?;
        if repaired_heat > 0.0 && fresh_heat > repaired_heat {
            let scale = (fresh_heat / repaired_heat).min(MAX_REHEAT_SCALE);
            warm.schedule.initial_temp_factor *= scale;
        }
    }
    exchange_cancellable(quadrant, &repaired, stack, &warm, recorder, cancel)
}

/// [`exchange_warm`] seeded from a frozen run's journal instead of a
/// materialised plan: replays `journal[..best_len]` onto `initial`
/// (the winning trajectory kept by the portfolio reduction) and warm
/// starts from the replayed plan.
///
/// # Errors
///
/// As [`exchange_warm`]; [`CoreError::Geom`] if the journal does not
/// replay onto `initial`.
#[allow(clippy::too_many_arguments)] // the journal pair is inherent to the entry point
pub fn exchange_warm_from_journal(
    quadrant: &Quadrant,
    initial: &Assignment,
    journal: &[(u32, u32)],
    best_len: usize,
    stack: &StackConfig,
    config: &ExchangeConfig,
    recorder: &mut dyn Recorder,
    cancel: &CancelToken,
) -> Result<ExchangeResult, CoreError> {
    let previous = crate::replay_journal(initial, journal, best_len)?;
    exchange_warm(quadrant, &previous, stack, config, recorder, cancel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{apply_delta, dfa, diff_quadrant, exchange, QuadrantDelta};
    use copack_geom::{NetKind, TierId};
    use copack_obs::NoopRecorder;
    use copack_route::is_monotonic;

    fn base() -> Quadrant {
        Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .net_kind(10u32, NetKind::Power)
            .net_kind(5u32, NetKind::Power)
            .build()
            .unwrap()
    }

    fn edited() -> Quadrant {
        // Net 7 removed, nets 12 and 13 added, net 4 retyped.
        Quadrant::builder()
            .row([10u32, 2, 4, 0, 12])
            .row([1u32, 3, 5, 8, 13])
            .row([11u32, 6, 9])
            .net_kind(10u32, NetKind::Power)
            .net_kind(5u32, NetKind::Power)
            .net_kind(4u32, NetKind::Power)
            .build()
            .unwrap()
    }

    fn fast_config(seed: u64) -> ExchangeConfig {
        ExchangeConfig {
            schedule: Schedule {
                moves_per_temp_per_finger: 2,
                final_temp_ratio: 1e-2,
                ..Schedule::default()
            },
            seed,
            ..ExchangeConfig::default()
        }
    }

    #[test]
    fn repair_of_an_unedited_plan_is_the_plan_itself() {
        let q = base();
        let plan = dfa(&q, 1).unwrap();
        let repaired = repair_assignment(&q, &plan).unwrap();
        assert_eq!(repaired, plan);
    }

    #[test]
    fn repair_survives_every_edit_class() {
        let q = base();
        let plan = exchange(
            &q,
            &dfa(&q, 1).unwrap(),
            &StackConfig::planar(),
            &fast_config(1),
        )
        .unwrap()
        .assignment;
        let e = edited();
        let repaired = repair_assignment(&e, &plan).unwrap();
        assert!(is_monotonic(&e, &repaired));
        assert!(repaired.validate_complete(&e).is_ok());
        // Survivors keep their previous relative order within each row.
        let survivors_prev: Vec<NetId> = plan
            .order()
            .into_iter()
            .filter(|&n| e.net(n).is_some())
            .collect();
        assert!(!survivors_prev.is_empty());
    }

    #[test]
    fn repair_handles_sparse_and_tiered_quadrants() {
        let mut b = Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .net_kind(10u32, NetKind::Power)
            .fingers(15);
        for n in [10u32, 2, 4, 1] {
            b = b.net_tier(n, TierId::new(2));
        }
        let q = b.build().unwrap();
        let plan = dfa(&q, 1).unwrap();
        // Drop a net and add one via the delta layer.
        let d = QuadrantDelta {
            edits: vec![
                crate::Edit::Remove(NetId::new(7)),
                crate::Edit::Add {
                    net: NetId::new(42),
                    row: 1,
                    at: 0,
                },
                crate::Edit::Fingers(15),
            ],
        };
        let e = apply_delta(&q, &d).unwrap();
        let repaired = repair_assignment(&e, &plan).unwrap();
        assert!(is_monotonic(&e, &repaired));
        assert!(repaired.validate_complete(&e).is_ok());
        assert_eq!(repaired.finger_count(), 15);
    }

    #[test]
    fn warm_schedule_is_shorter_but_valid() {
        let cold = Schedule::default();
        let warm = warm_schedule(&cold);
        assert!(warm.is_valid());
        // ~2/3 of the cold step count: strictly shorter, but keeps the
        // full reheat (same initial temperature factor).
        assert!(warm.temperature_steps() < cold.temperature_steps() * 3 / 4);
        assert!(warm.temperature_steps() > cold.temperature_steps() / 2);
        assert_eq!(warm.initial_temp_factor, cold.initial_temp_factor);
        assert_eq!(warm.cooling, cold.cooling);
        assert_eq!(
            warm.moves_per_temp_per_finger,
            cold.moves_per_temp_per_finger
        );
    }

    #[test]
    fn exchange_warm_lands_in_the_scratch_feasibility_class() {
        let q = base();
        let cfg = fast_config(7);
        let cold = exchange(&q, &dfa(&q, 1).unwrap(), &StackConfig::planar(), &cfg).unwrap();
        let e = edited();
        let scratch = exchange(&e, &dfa(&e, 1).unwrap(), &StackConfig::planar(), &cfg).unwrap();
        let warm = exchange_warm(
            &e,
            &cold.assignment,
            &StackConfig::planar(),
            &cfg,
            &mut NoopRecorder,
            &CancelToken::new(),
        )
        .unwrap();
        assert!(is_monotonic(&e, &warm.assignment));
        assert!(warm.assignment.validate_complete(&e).is_ok());
        // Same feasibility class, cost within a generous factor of
        // from-scratch (the verify oracle pins the production band).
        assert!(
            warm.stats.final_cost <= scratch.stats.final_cost * 2.0 + 1e-9,
            "warm {} vs scratch {}",
            warm.stats.final_cost,
            scratch.stats.final_cost
        );
    }

    #[test]
    fn small_instances_replan_bit_identically_to_scratch() {
        // Below the scratch cutoff the warm path runs the cold pipeline
        // verbatim: same DFA start, same schedule, same seed.
        let q = base();
        let e = edited();
        let cfg = fast_config(11);
        let prev = exchange(&q, &dfa(&q, 1).unwrap(), &StackConfig::planar(), &cfg)
            .unwrap()
            .assignment;
        let scratch = exchange(&e, &dfa(&e, 1).unwrap(), &StackConfig::planar(), &cfg).unwrap();
        let warm = exchange_warm(
            &e,
            &prev,
            &StackConfig::planar(),
            &cfg,
            &mut NoopRecorder,
            &CancelToken::new(),
        )
        .unwrap();
        assert!(e.finger_count() < WARM_SCRATCH_CUTOFF);
        assert_eq!(warm, scratch);
    }

    #[test]
    fn exchange_warm_is_deterministic() {
        let q = base();
        let e = edited();
        let cfg = fast_config(3);
        let prev = exchange(&q, &dfa(&q, 1).unwrap(), &StackConfig::planar(), &cfg)
            .unwrap()
            .assignment;
        let a = exchange_warm(
            &e,
            &prev,
            &StackConfig::planar(),
            &cfg,
            &mut NoopRecorder,
            &CancelToken::new(),
        )
        .unwrap();
        let b = exchange_warm(
            &e,
            &prev,
            &StackConfig::planar(),
            &cfg,
            &mut NoopRecorder,
            &CancelToken::new(),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn journal_seeded_warm_start_matches_plan_seeded() {
        let q = base();
        let e = edited();
        let cfg = fast_config(5);
        let initial = dfa(&q, 1).unwrap();
        let cold = exchange(&q, &initial, &StackConfig::planar(), &cfg).unwrap();
        // Rebuild the journal by rerunning through the portfolio path.
        let p = crate::exchange_portfolio(
            &q,
            &initial,
            &StackConfig::planar(),
            &cfg,
            &crate::PortfolioConfig {
                starts: 1,
                ..crate::PortfolioConfig::default()
            },
        )
        .unwrap();
        let from_journal = exchange_warm_from_journal(
            &e,
            &initial,
            &p.journal,
            p.best_len,
            &StackConfig::planar(),
            &cfg,
            &mut NoopRecorder,
            &CancelToken::new(),
        )
        .unwrap();
        let from_plan = exchange_warm(
            &e,
            &cold.assignment,
            &StackConfig::planar(),
            &cfg,
            &mut NoopRecorder,
            &CancelToken::new(),
        )
        .unwrap();
        // K = 1 portfolio's winner IS the plain exchange result, so both
        // seeds are the same assignment and the runs coincide exactly.
        assert_eq!(from_journal, from_plan);
    }

    #[test]
    fn diffed_and_applied_edit_round_trips_into_repair() {
        let q = base();
        let e = edited();
        let delta = diff_quadrant(&q, &e);
        let rebuilt = apply_delta(&q, &delta).unwrap();
        assert_eq!(rebuilt, e);
        let plan = dfa(&q, 1).unwrap();
        let repaired = repair_assignment(&rebuilt, &plan).unwrap();
        assert!(is_monotonic(&rebuilt, &repaired));
    }
}
