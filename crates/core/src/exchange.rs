//! The finger/pad exchange step (paper Fig. 14): simulated annealing over
//! adjacent swaps under the monotonicity-preserving range constraint.

use copack_geom::{Assignment, FingerIdx, NetId, NetKind, Quadrant, StackConfig};
use copack_power::PadSpacingProxy;
use copack_route::{check_monotonic, exchange_range};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{
    evaluate_ir, omega_of_assignment, CoreError, ExchangeConfig, IrObjective, OmegaTracker,
    SectionTracker,
};

/// Outcome of the exchange step.
#[derive(Debug, Clone, PartialEq)]
pub struct ExchangeResult {
    /// The improved assignment.
    pub assignment: Assignment,
    /// Run statistics.
    pub stats: ExchangeStats,
}

/// Statistics of one annealing run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExchangeStats {
    /// Cost of the initial order (Eq. 3).
    pub initial_cost: f64,
    /// Cost of the final order.
    pub final_cost: f64,
    /// Moves proposed (including range-constraint rejections).
    pub proposed: usize,
    /// Moves accepted.
    pub accepted: usize,
    /// Accepted moves that made the cost worse (uphill).
    pub uphill_accepted: usize,
    /// Moves rejected by the range constraint before costing.
    pub constraint_rejected: usize,
    /// Temperature steps performed.
    pub temperature_steps: usize,
}

/// Runs the power-supply-noise-driven exchange (Fig. 14) on an initial
/// order.
///
/// * 2-D designs (ψ = 1): only **power** pads are picked for swapping
///   (Fig. 14 line 7); `ID` (Eq. 2) and `Δ_IR` drive the cost, ω is
///   identically zero.
/// * Stacking designs (ψ ≥ 2): any pad may move (line 5) and ω joins the
///   cost.
///
/// Every proposed swap must keep both involved nets inside their exchange
/// ranges (strictly between their same-row neighbours), so the result is
/// always monotonic-legal and hence routable.
///
/// # Errors
///
/// * [`CoreError::BadConfig`] for invalid weights or schedule.
/// * [`CoreError::NoMovablePads`] for a 2-D design without power nets.
/// * [`CoreError::Route`] if `initial` is incomplete or illegal.
pub fn exchange(
    quadrant: &Quadrant,
    initial: &Assignment,
    stack: &StackConfig,
    config: &ExchangeConfig,
) -> Result<ExchangeResult, CoreError> {
    if !config.weights.is_valid() {
        return Err(CoreError::BadConfig {
            parameter: "weights",
        });
    }
    if !config.schedule.is_valid() {
        return Err(CoreError::BadConfig {
            parameter: "schedule",
        });
    }
    check_monotonic(quadrant, initial)?;
    initial.validate_complete(quadrant)?;

    let psi = stack.tiers;
    let movable: Vec<NetId> = if psi == 1 {
        quadrant.nets_of_kind(NetKind::Power).collect()
    } else {
        quadrant.nets().map(|n| n.id).collect()
    };
    if movable.is_empty() {
        return Err(CoreError::NoMovablePads);
    }

    let alpha = initial.finger_count();
    // Incremental trackers: an adjacent swap moves one net across at most
    // one section delimiter and touches at most two omega groups, so the
    // ID and omega terms update in O(1) instead of O(beta) per move (see
    // `tracker.rs`; equivalence to the from-scratch definitions is
    // property-tested there). Omega falls back to recomputation for
    // sparse assignments, which the tracker does not model.
    let mut sections = SectionTracker::new(quadrant, initial)?;
    let dense = initial.net_count() == alpha;
    let mut omega_tracker = if psi > 1 && dense {
        Some(OmegaTracker::new(quadrant, initial, psi)?)
    } else {
        None
    };
    let cost_of = |a: &Assignment,
                   sections: &SectionTracker,
                   omega_tracker: &Option<OmegaTracker>|
     -> Result<f64, CoreError> {
        let mut cost = 0.0;
        if config.weights.lambda > 0.0 {
            match &config.ir_objective {
                IrObjective::Proxy => {
                    let ts: Vec<f64> = quadrant
                        .nets_of_kind(NetKind::Power)
                        .filter_map(|n| a.position_of(n))
                        .map(|f| (f.get() as f64 - 0.5) / alpha as f64)
                        .collect();
                    if !ts.is_empty() {
                        cost += config.weights.lambda * PadSpacingProxy::new(&ts)?.delta_ir();
                    }
                }
                IrObjective::FullSolve { grid } => {
                    if let Some(drop) = evaluate_ir(quadrant, a, grid)? {
                        cost += config.weights.lambda * drop;
                    }
                }
            }
        }
        if config.weights.rho > 0.0 {
            cost += config.weights.rho * f64::from(sections.increased_density());
        }
        if config.weights.phi > 0.0 && psi > 1 {
            let omega = match omega_tracker {
                Some(tracker) => tracker.omega(),
                None => omega_of_assignment(quadrant, a, psi)?,
            };
            cost += config.weights.phi * omega as f64;
        }
        Ok(cost)
    };

    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let mut current = initial.clone();
    let initial_cost = cost_of(&current, &sections, &omega_tracker)?;
    let mut current_cost = initial_cost;

    // Temperature scale: tied to the IR/ID part of the cost only. The
    // omega term's magnitude grows with the finger count and would
    // otherwise over-heat stacking runs relative to 2-D ones.
    let omega_part = match (&omega_tracker, psi > 1 && config.weights.phi > 0.0) {
        (Some(tracker), true) => config.weights.phi * tracker.omega() as f64,
        (None, true) => config.weights.phi * omega_of_assignment(quadrant, initial, psi)? as f64,
        _ => 0.0,
    };
    let temp_base = (initial_cost - omega_part).max(0.0);
    let mut temperature = config.schedule.initial_temp_factor * (temp_base + 1.0);
    let final_temp = temperature * config.schedule.final_temp_ratio;
    let moves_per_temp = config.schedule.moves_per_temp_per_finger * alpha;

    let mut stats = ExchangeStats {
        initial_cost,
        final_cost: initial_cost,
        proposed: 0,
        accepted: 0,
        uphill_accepted: 0,
        constraint_rejected: 0,
        temperature_steps: 0,
    };

    // The annealer walks uphill by design; keep the best state seen so the
    // result can never be worse than the input.
    let mut best = current.clone();
    let mut best_cost = current_cost;

    while temperature > final_temp {
        for _ in 0..moves_per_temp {
            stats.proposed += 1;
            let net = movable[rng.gen_range(0..movable.len())];
            let pos = current.position_of(net).expect("complete assignment");
            let right = rng.gen_bool(0.5);
            let target = if right {
                if pos.get() as usize >= alpha {
                    stats.constraint_rejected += 1;
                    continue;
                }
                FingerIdx::new(pos.get() + 1)
            } else {
                if pos.get() == 1 {
                    stats.constraint_rejected += 1;
                    continue;
                }
                FingerIdx::new(pos.get() - 1)
            };

            // Range constraint: the moved net must stay inside its span,
            // and the displaced neighbour (if any) inside its own.
            let (lo, hi) = exchange_range(quadrant, &current, net)?;
            if target < lo || target > hi {
                stats.constraint_rejected += 1;
                continue;
            }
            if let Some(neighbour) = current.net_at(target) {
                let (nlo, nhi) = exchange_range(quadrant, &current, neighbour)?;
                if pos < nlo || pos > nhi {
                    stats.constraint_rejected += 1;
                    continue;
                }
            }

            // Apply the swap to the trackers (self-inverse on revert).
            let left_slot = if pos < target { pos } else { target };
            let left_net = current.net_at(left_slot);
            let right_net = current.net_at(FingerIdx::new(left_slot.get() + 1));
            if let (Some(l), Some(r)) = (left_net, right_net) {
                sections.apply_adjacent_swap(l, r);
            }
            if let Some(tracker) = &mut omega_tracker {
                tracker.apply_adjacent_swap(left_slot);
            }
            current.swap(pos, target)?;
            let new_cost = cost_of(&current, &sections, &omega_tracker)?;
            let delta = new_cost - current_cost;
            let accept = if delta <= 0.0 {
                true
            } else {
                config
                    .acceptance
                    .accepts(delta, temperature, rng.gen::<f64>())
            };
            if accept {
                stats.accepted += 1;
                if delta > 0.0 {
                    stats.uphill_accepted += 1;
                }
                current_cost = new_cost;
                if current_cost < best_cost {
                    best_cost = current_cost;
                    best = current.clone();
                }
            } else {
                current.swap(pos, target)?; // revert
                if let (Some(l), Some(r)) = (left_net, right_net) {
                    sections.apply_adjacent_swap(r, l);
                }
                if let Some(tracker) = &mut omega_tracker {
                    tracker.apply_adjacent_swap(left_slot);
                }
            }
        }
        temperature *= config.schedule.cooling;
        stats.temperature_steps += 1;
    }

    debug_assert!(check_monotonic(quadrant, &best).is_ok());
    stats.final_cost = best_cost;
    Ok(ExchangeResult {
        assignment: best,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dfa, CostWeights};
    use copack_geom::{NetKind, Quadrant, TierId};
    use copack_route::is_monotonic;

    /// Fig. 5 instance with power nets sprinkled in.
    fn quadrant_2d() -> Quadrant {
        Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .net_kind(10u32, NetKind::Power)
            .net_kind(5u32, NetKind::Power)
            .net_kind(9u32, NetKind::Power)
            .net_kind(0u32, NetKind::Ground)
            .build()
            .unwrap()
    }

    /// Two-tier version of the same instance.
    fn quadrant_stacked() -> Quadrant {
        let mut b = Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .net_kind(10u32, NetKind::Power)
            .net_kind(5u32, NetKind::Power);
        for n in [10u32, 2, 4, 1, 3, 11] {
            b = b.net_tier(n, TierId::new(2));
        }
        b.build().unwrap()
    }

    fn fast_config(seed: u64) -> ExchangeConfig {
        ExchangeConfig {
            schedule: crate::Schedule {
                moves_per_temp_per_finger: 2,
                final_temp_ratio: 1e-2,
                ..crate::Schedule::default()
            },
            seed,
            ..ExchangeConfig::default()
        }
    }

    #[test]
    fn exchange_never_breaks_monotonicity() {
        let q = quadrant_2d();
        let initial = dfa(&q, 1).unwrap();
        for seed in 0..5 {
            let r = exchange(&q, &initial, &StackConfig::planar(), &fast_config(seed)).unwrap();
            assert!(is_monotonic(&q, &r.assignment), "seed {seed}");
            assert!(r.assignment.validate_complete(&q).is_ok());
        }
    }

    #[test]
    fn exchange_does_not_increase_cost() {
        let q = quadrant_2d();
        let initial = dfa(&q, 1).unwrap();
        let r = exchange(&q, &initial, &StackConfig::planar(), &fast_config(1)).unwrap();
        assert!(r.stats.final_cost <= r.stats.initial_cost + 1e-9);
    }

    #[test]
    fn two_d_exchange_moves_only_power_pads() {
        let q = quadrant_2d();
        let initial = dfa(&q, 1).unwrap();
        let r = exchange(&q, &initial, &StackConfig::planar(), &fast_config(2)).unwrap();
        // Signal/ground nets may be displaced by a power pad swapping with
        // them, but their *relative* order must be intact.
        let signals_before: Vec<_> = initial
            .order()
            .into_iter()
            .filter(|&n| q.net(n).unwrap().kind != NetKind::Power)
            .collect();
        let signals_after: Vec<_> = r
            .assignment
            .order()
            .into_iter()
            .filter(|&n| q.net(n).unwrap().kind != NetKind::Power)
            .collect();
        assert_eq!(signals_before, signals_after);
    }

    #[test]
    fn exchange_improves_power_pad_spreading() {
        let q = quadrant_2d();
        let initial = dfa(&q, 1).unwrap();
        let proxy_of = |a: &Assignment| {
            let ts: Vec<f64> = q
                .nets_of_kind(NetKind::Power)
                .map(|n| (a.position_of(n).unwrap().get() as f64 - 0.5) / 12.0)
                .collect();
            PadSpacingProxy::new(&ts).unwrap().delta_ir()
        };
        let r = exchange(&q, &initial, &StackConfig::planar(), &fast_config(3)).unwrap();
        assert!(proxy_of(&r.assignment) <= proxy_of(&initial) + 1e-12);
    }

    #[test]
    fn stacked_exchange_reduces_omega() {
        let q = quadrant_stacked();
        let initial = dfa(&q, 1).unwrap();
        let stack = StackConfig::stacked(2).unwrap();
        let om_before = omega_of_assignment(&q, &initial, 2).unwrap();
        // Make the bonding-wire term the dominant objective so the test
        // exercises the omega mechanics rather than the weight balance.
        let mut cfg = fast_config(4);
        cfg.weights = CostWeights {
            lambda: 0.0,
            rho: 0.5,
            phi: 1.0,
        };
        let r = exchange(&q, &initial, &stack, &cfg).unwrap();
        let om_after = omega_of_assignment(&q, &r.assignment, 2).unwrap();
        assert!(om_after <= om_before, "{om_after} !<= {om_before}");
        assert!(is_monotonic(&q, &r.assignment));
    }

    #[test]
    fn same_seed_is_deterministic() {
        let q = quadrant_2d();
        let initial = dfa(&q, 1).unwrap();
        let a = exchange(&q, &initial, &StackConfig::planar(), &fast_config(9)).unwrap();
        let b = exchange(&q, &initial, &StackConfig::planar(), &fast_config(9)).unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn no_power_pads_in_2d_is_an_error() {
        let q = Quadrant::builder().row([1u32, 2]).build().unwrap();
        let initial = Assignment::from_order([1u32, 2]);
        assert!(matches!(
            exchange(&q, &initial, &StackConfig::planar(), &fast_config(0)),
            Err(CoreError::NoMovablePads)
        ));
    }

    #[test]
    fn bad_configs_are_rejected() {
        let q = quadrant_2d();
        let initial = dfa(&q, 1).unwrap();
        let mut bad = fast_config(0);
        bad.weights = CostWeights {
            lambda: -1.0,
            ..CostWeights::default()
        };
        assert!(matches!(
            exchange(&q, &initial, &StackConfig::planar(), &bad),
            Err(CoreError::BadConfig { .. })
        ));
        let mut bad = fast_config(0);
        bad.schedule.cooling = 2.0;
        assert!(exchange(&q, &initial, &StackConfig::planar(), &bad).is_err());
    }

    #[test]
    fn illegal_initial_order_is_rejected() {
        let q = quadrant_2d();
        let bad = Assignment::from_order([10u32, 11, 1, 2, 9, 3, 4, 6, 5, 7, 8, 0]);
        assert!(exchange(&q, &bad, &StackConfig::planar(), &fast_config(0)).is_err());
    }

    #[test]
    fn result_is_never_worse_than_the_input_even_with_bad_rules() {
        // The annealer returns the best state seen, so even the paper's
        // inverted acceptance rule cannot hand back a degraded order.
        use crate::Acceptance;
        let q = quadrant_2d();
        let initial = dfa(&q, 1).unwrap();
        for acceptance in [Acceptance::Metropolis, Acceptance::AsWritten, Acceptance::Greedy] {
            let mut cfg = fast_config(11);
            cfg.acceptance = acceptance;
            let r = exchange(&q, &initial, &StackConfig::planar(), &cfg).unwrap();
            assert!(
                r.stats.final_cost <= r.stats.initial_cost + 1e-9,
                "{acceptance:?}: {} > {}",
                r.stats.final_cost,
                r.stats.initial_cost
            );
        }
    }

    #[test]
    fn sparse_assignments_exchange_via_the_fallback_path() {
        // More fingers than nets: the omega tracker declines and the
        // exchange falls back to recomputation; legality must still hold.
        let mut b = Quadrant::builder()
            .row([10u32, 2, 4, 7, 0])
            .row([1u32, 3, 5, 8])
            .row([11u32, 6, 9])
            .net_kind(10u32, NetKind::Power)
            .net_kind(5u32, NetKind::Power)
            .fingers(15);
        for n in [10u32, 2, 4, 1, 3, 11] {
            b = b.net_tier(n, TierId::new(2));
        }
        let q = b.build().unwrap();
        let initial = dfa(&q, 1).unwrap();
        assert_eq!(initial.finger_count(), 15);
        let stack = StackConfig::stacked(2).unwrap();
        let r = exchange(&q, &initial, &stack, &fast_config(8)).unwrap();
        assert!(is_monotonic(&q, &r.assignment));
        assert!(r.assignment.validate_complete(&q).is_ok());
        assert!(r.stats.final_cost <= r.stats.initial_cost + 1e-9);
    }

    #[test]
    fn full_solve_objective_runs_and_stays_legal() {
        use crate::IrObjective;
        use copack_power::GridSpec;
        let q = quadrant_2d();
        let initial = dfa(&q, 1).unwrap();
        let mut cfg = fast_config(6);
        cfg.schedule.final_temp_ratio = 0.5; // a handful of temperature steps
        cfg.ir_objective = IrObjective::FullSolve {
            grid: GridSpec::default_chip(8),
        };
        let r = exchange(&q, &initial, &StackConfig::planar(), &cfg).unwrap();
        assert!(is_monotonic(&q, &r.assignment));
        assert!(r.stats.final_cost <= r.stats.initial_cost + 1e-9);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let q = quadrant_2d();
        let initial = dfa(&q, 1).unwrap();
        let r = exchange(&q, &initial, &StackConfig::planar(), &fast_config(5)).unwrap();
        let s = r.stats;
        assert!(s.accepted <= s.proposed);
        assert!(s.uphill_accepted <= s.accepted);
        assert!(s.constraint_rejected <= s.proposed);
        assert!(s.temperature_steps > 0);
    }
}
